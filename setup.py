"""Setup shim for environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables legacy
``pip install -e .`` where PEP 660 editable installs are unavailable.
"""

from setuptools import setup

setup()
