#!/usr/bin/env python3
"""Reproduce the datasheet verification of Figures 8 and 9.

Compares model currents for 1 Gb DDR2 and 1 Gb DDR3 parts against the
reconstructed five-vendor datasheet spread, across IDD measure, data rate
and I/O width — the paper's §IV.A validation.

Run:  python examples/datasheet_verification.py
"""

from repro.analysis import verification_report, verify_ddr2, verify_ddr3


def summarize(rows, title):
    print(verification_report(rows, title=title))
    hits = sum(row.within_spread(0.25) for row in rows)
    ratios = [row.ratio_to_mean for row in rows]
    print(f"\n  points inside the (widened) vendor spread: "
          f"{hits}/{len(rows)}")
    print(f"  model/datasheet-mean ratio: "
          f"min {min(ratios):.2f}, max {max(ratios):.2f}")
    print()


def main() -> None:
    print("The paper: 'As expected the data sheet values show a quite "
          "large spread... The figures show good agreement between data "
          "sheet current values and the model.'\n")
    summarize(verify_ddr2(), "Figure 8 - 1G DDR2 model vs datasheets (mA)")
    summarize(verify_ddr3(), "Figure 9 - 1G DDR3 model vs datasheets (mA)")


if __name__ == "__main__":
    main()
