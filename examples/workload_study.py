#!/usr/bin/env python3
"""Trace-based workload study: locality, utilization and power modes.

Goes beyond the paper's steady-state patterns: generates timing-legal
command traces with the open-page scheduler and shows

1. how row-buffer locality moves the energy per bit (the system-side
   angle of the §V schemes: "spatial locality ... [is] important in all
   power reduction proposals"),
2. what memory-controller power-down scheduling (Hur & Lin, the paper's
   reference [11]) buys at different utilizations, and
3. what adaptive refresh (Emma et al., reference [12]) saves in standby.

Run:  python examples/workload_study.py
"""

from repro import DramPowerModel
from repro.analysis import format_table
from repro.core.trace import evaluate_trace
from repro.devices import ddr3_2g_55nm
from repro.schemes import (
    adaptive_refresh_savings,
    power_down_savings,
    power_state_table,
)
from repro.workloads import random_trace, streaming_trace


def main() -> None:
    device = ddr3_2g_55nm()
    model = DramPowerModel(device)

    print(f"Device: {device.name}\n")

    rows = []
    workloads = [("streaming", streaming_trace(device, 3000))]
    for hit_rate in (0.9, 0.5, 0.1):
        workloads.append((
            f"random, hit {hit_rate:.0%}",
            random_trace(device, 3000, row_hit_rate=hit_rate),
        ))
    for name, trace in workloads:
        result = evaluate_trace(model, trace)
        rows.append([
            name,
            round(result.row_hit_rate, 2),
            round(result.data_bits / result.duration / 1e9, 1),
            round(result.average_power * 1e3, 1),
            round(result.energy_per_bit * 1e12, 1),
        ])
    print(format_table(
        ["workload", "row-hit rate", "Gb/s", "mW", "pJ/bit"],
        rows, title="Row-buffer locality vs energy (3000 accesses)",
    ))
    print("\nLosing locality multiplies the energy per bit: every row")
    print("miss re-pays the page activation (§V's motivation).\n")

    rows = []
    for utilization in (0.05, 0.2, 0.5, 0.8):
        saving = power_down_savings(model, utilization)
        rows.append([f"{utilization:.0%}", f"{saving:.1%}"])
    print(format_table(
        ["bandwidth utilization", "power saving"],
        rows, title="Power-down scheduling (Hur & Lin style, 90% of "
                     "idle in IDD2P)",
    ))
    print()

    states = power_state_table(model)
    print(format_table(
        ["state", "mW"],
        [[name, round(value * 1e3, 1)] for name, value in states.items()],
        title="Standby and low-power states",
    ))
    saving = adaptive_refresh_savings(model, rate_factor=0.25)
    print(f"\nAdaptive refresh at 1/4 rate (Emma et al. style) saves "
          f"{saving:.1%} of self-refresh power.")


if __name__ == "__main__":
    main()
