#!/usr/bin/env python3
"""Directed optimization: explore a design space under area constraints.

The paper positions the model as a tool "to direct optimization work"
and insists proposals be judged by their die-size impact (§V).  This
example enumerates a small design space on the 55 nm DDR3 — page size,
sub-wordline length, internal voltage, sense-amp stripe width — ranks the
feasible points by energy per bit, and then projects the winning design
to an off-roadmap future node (§IV.C's "extrapolation to future DRAM
generations").

Run:  python examples/design_space_exploration.py
"""

from repro import DramPowerModel
from repro.analysis import (
    best_design,
    design_space_report,
    explore_design_space,
    format_table,
)
from repro.core.idd import idd7_mixed
from repro.devices import ddr3_2g_55nm
from repro.technology import build_projected_device, projected_entry


def main() -> None:
    device = ddr3_2g_55nm()
    baseline = idd7_mixed(DramPowerModel(device))
    print(f"Baseline {device.name}: "
          f"{baseline.energy_per_bit_pj:.1f} pJ/bit\n")

    points = explore_design_space(device)
    print(design_space_report(points, limit=10))
    best = best_design(device)
    saving = 1 - best.energy_per_bit / baseline.energy_per_bit
    print(f"\nBest feasible point: {best.label} "
          f"({saving:.1%} energy saving)\n")

    # Project the same class of device to off-roadmap nodes: the paper's
    # extrapolation claim, beyond the named generations.
    rows = []
    for node in (60, 50, 40, 28, 19, 14):
        entry = projected_entry(node)
        projected = build_projected_device(node)
        result = idd7_mixed(DramPowerModel(projected))
        rows.append([node, entry.interface, entry.vdd,
                     round(result.energy_per_bit_pj, 2)])
    print(format_table(
        ["node nm", "interface", "Vdd", "pJ/bit"],
        rows, title="Projection to off-roadmap nodes",
    ))
    print("\nBelow ~16 nm the projected voltages hit their floor and the")
    print("energy curve flattens - the paper's §IV.C conclusion that")
    print("further gains must come from design measures, not scaling.")


if __name__ == "__main__":
    main()
