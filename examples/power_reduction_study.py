#!/usr/bin/env python3
"""Reproduce the Section V comparison of DRAM power-reduction schemes.

Evaluates the published proposals the paper discusses — selective bitline
activation and single-subarray access (Udipi et al.), segmented data
lines (Jeong et al.), low-voltage operation (Moon et al.), TSV stacking
(Kang et al.), threaded modules (Ware & Hampel), mini-rank (Zheng et
al.) — plus the paper's own 8:1 CSL-ratio architecture, on the 2 Gb DDR3
55 nm device, and also shows the Figure 10 sensitivity Pareto that
motivates them.

Run:  python examples/power_reduction_study.py
"""

from repro.analysis import format_table, sensitivity
from repro.devices import ddr3_2g_55nm
from repro.schemes import ALL_SCHEMES, compare_schemes, scheme_report


def main() -> None:
    device = ddr3_2g_55nm()

    print(format_table(
        ["parameter", "impact of +/-20%"],
        [[result.name, f"{result.impact:+.1%}"]
         for result in sensitivity(device)],
        title=f"Figure 10 - power sensitivity of {device.name}",
    ))
    print("\n(The external supply voltage is excluded: power is directly "
          "proportional to it.)\n")

    results = compare_schemes(device)
    print(scheme_report(results,
                        title=f"Section V - schemes on {device.name}"))
    print()
    for scheme in ALL_SCHEMES:
        print(f"- {scheme.name}: {scheme.reference}")
        print(f"    {scheme.description}")
    print()
    print("Note the §V trade-off: the biggest savers narrow the page")
    print("activation, but any change inside the bitline sense-amplifier")
    print("stripe carries the largest area cost on the die.")


if __name__ == "__main__":
    main()
