#!/usr/bin/env python3
"""Reproduce the DRAM power trends of Figures 11, 12 and 13.

Sweeps the mainstream device of every roadmap node from 170 nm (SDR,
year 2000) to 16 nm (DDR5 forecast) and prints the voltage trend, the
data-rate/row-timing trend, and the energy-per-bit / die-area trend,
including the per-generation energy-reduction factors the paper
highlights (≈1.5× historically, flattening to ≈1.2× in the forecast) and
the §IV.B shift of power from the cell array into logic and wiring.

Run:  python examples/future_dram_forecast.py
"""

from repro.analysis import (
    energy_reduction_factors,
    format_table,
    generation_trend,
    power_shift,
    timing_trend,
    voltage_trend,
)


def main() -> None:
    print(format_table(
        ["node nm", "year", "Vdd", "Vint", "Vbl", "Vpp"],
        [[point["node_nm"], int(point["year"]), point["vdd"],
          point["vint"], point["vbl"], point["vpp"]]
         for point in voltage_trend()],
        title="Figure 11 - voltage trends",
    ))
    print()

    print(format_table(
        ["node nm", "Gb/s/pin", "core MHz", "prefetch", "tRC ns"],
        [[point["node_nm"], point["datarate_gbps"],
          point["core_frequency_mhz"], int(point["prefetch"]),
          point["trc_ns"]] for point in timing_trend()],
        title="Figure 12 - data rate and row timing trends",
    ))
    print()

    points = generation_trend()
    print(format_table(
        ["node nm", "interface", "density", "die mm2", "IDD0 mA",
         "IDD4R mA", "pJ/bit idd4", "pJ/bit idd7"],
        [[point.node_nm, point.interface,
          f"{point.density_bits >> 30}G" if point.density_bits >= 1 << 30
          else f"{point.density_bits >> 20}M",
          point.die_area_mm2, point.idd0_ma, point.idd4r_ma,
          point.energy_idd4_pj, point.energy_idd7_pj]
         for point in points],
        title="Figure 13 - die area and energy per bit",
    ))
    early, late = energy_reduction_factors(points)
    print(f"\nEnergy-per-bit reduction per generation: "
          f"{early:.2f}x through the 44 nm generation, "
          f"{late:.2f}x in the forecast "
          f"(paper: ~1.5x flattening to ~1.2x).")
    print()

    print(format_table(
        ["node nm", "row ops", "column ops", "background",
         "array circuits"],
        [[row["node_nm"], f"{row['row_share']:.0%}",
          f"{row['column_share']:.0%}",
          f"{row['background_share']:.0%}",
          f"{row['array_component_share']:.0%}"]
         for row in power_shift(points)],
        title="Section IV.B - share of power by activity "
              "(Idd7-style pattern)",
    ))
    print("\nThe share of power shifts from the activate/precharge (row)")
    print("operations and array circuitry to read/write data movement,")
    print("general logic and wiring - the paper's §IV.B observation.")


if __name__ == "__main__":
    main()
