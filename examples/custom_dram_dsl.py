#!/usr/bin/env python3
"""Author a DRAM in the description language and study a what-if.

Demonstrates the paper's workflow: describe a DRAM in the input language
(§III.B), evaluate its power, then edit the description — here a mobile
style derivative with half the page size and lower internal voltage — and
quantify the difference.

Run:  python examples/custom_dram_dsl.py
"""

import tempfile
from pathlib import Path

from repro import DramPowerModel
from repro.core.idd import idd0, idd4r
from repro.devices import ddr3_2g_55nm
from repro.dsl import dumps, load


def main() -> None:
    # Start from the calibrated 55 nm DDR3 and serialise it to the
    # description language — this is the file a user would edit.
    device = ddr3_2g_55nm()
    text = dumps(device)
    print("Description language excerpt:")
    print("\n".join(text.splitlines()[:14]))
    print("...\n")

    with tempfile.TemporaryDirectory() as tmp:
        base_path = Path(tmp) / "baseline.dram"
        base_path.write_text(text)

        # What-if: a low-power derivative. Half the page (one extra row
        # address bit), Vint lowered by 100 mV.
        edited = text
        edited = edited.replace("coladd=10", "coladd=9")
        edited = edited.replace("rowadd=14", "rowadd=15")
        edited = edited.replace("vint=1.4", "vint=1.3")
        mobile_path = Path(tmp) / "mobile.dram"
        mobile_path.write_text(edited)

        baseline = DramPowerModel(load(base_path))
        mobile = DramPowerModel(load(mobile_path))

    rows = [
        ("page size (bits)", baseline.device.spec.page_bits,
         mobile.device.spec.page_bits),
        ("IDD0 (mA)", idd0(baseline).milliamps, idd0(mobile).milliamps),
        ("IDD4R (mA)", idd4r(baseline).milliamps,
         idd4r(mobile).milliamps),
        ("pattern power (mW)", baseline.pattern_power().power * 1e3,
         mobile.pattern_power().power * 1e3),
        ("energy/bit (pJ)", baseline.pattern_power().energy_per_bit_pj,
         mobile.pattern_power().energy_per_bit_pj),
    ]
    width = max(len(name) for name, *_ in rows)
    print(f"{'metric'.ljust(width)}  baseline  low-power")
    for name, base, new in rows:
        print(f"{name.ljust(width)}  {base:8.1f}  {new:9.1f}")

    saving = 1 - mobile.pattern_power().power / baseline.pattern_power().power
    print(f"\nHalving the page and trimming Vint saves "
          f"{saving:.1%} of pattern power - activation energy scales "
          f"with the number of bitlines sensed (paper §V).")


if __name__ == "__main__":
    main()
