#!/usr/bin/env python3
"""Quickstart: model the power of one DRAM device.

Builds the paper's main example — a 2 Gb DDR3-1600 x16 in a 55 nm
technology — and prints the derived geometry, the per-operation energy
breakdown, the standard datasheet IDD currents and the power of the
paper's example command pattern.

Run:  python examples/quickstart.py
"""

from repro import DramPowerModel, Pattern, build_device
from repro.analysis import format_table
from repro.core.idd import standard_idd_suite


def main() -> None:
    device = build_device(node_nm=55)  # roadmap default: 2G DDR3-1600 x16
    model = DramPowerModel(device)

    print(f"Device: {device.name}")
    print(f"  interface  : {device.interface}, "
          f"{device.spec.datarate / 1e9:.1f} Gb/s/pin, "
          f"x{device.spec.io_width}")
    print(f"  density    : {device.density_label}, "
          f"{device.spec.banks} banks, "
          f"{device.spec.page_bits // 8 // 1024} KB page")
    geometry = model.geometry
    print(f"  die        : {geometry.die_width * 1e3:.1f} x "
          f"{geometry.die_height * 1e3:.1f} mm "
          f"({geometry.die_area * 1e6:.1f} mm2), "
          f"array efficiency {geometry.array_efficiency:.0%}")
    print(f"  stripes    : sense-amp {geometry.sa_stripe_share:.1%} "
          f"of die, wordline drivers {geometry.swd_stripe_share:.1%}")
    print()

    print("Per-operation energy (pJ), by component:")
    table = model.energies.as_table()
    components = sorted({name for row in table.values() for name in row})
    rows = []
    for operation in ("act", "pre", "rd", "wr"):
        row = [operation]
        row.extend(round(table[operation].get(name, 0.0), 1)
                   for name in components)
        rows.append(row)
    print(format_table(["op"] + components, rows))
    print()

    print("Standard datasheet currents:")
    rows = [[result.measure.value, round(result.milliamps, 1)]
            for result in standard_idd_suite(model).values()]
    print(format_table(["measure", "mA"], rows))
    print()

    pattern = Pattern.parse("act nop wrt nop rd nop pre nop")
    result = model.pattern_power(pattern)
    print(f"Pattern '{pattern}':")
    print(f"  power        : {result.power * 1e3:.1f} mW "
          f"({result.current * 1e3:.1f} mA at "
          f"{device.voltages.vdd:g} V)")
    print(f"  energy/bit   : {result.energy_per_bit_pj:.1f} pJ "
          f"(= mW per Gb/s)")
    shares = result.breakdown.as_dict()
    top = list(shares.items())[:4]
    print("  top components: "
          + ", ".join(f"{name} {value * 1e3:.1f} mW"
                      for name, value in top))


if __name__ == "__main__":
    main()
