#!/usr/bin/env python3
"""The paper's calibration workflow, automated.

§III.B.5: "The number of gates in these circuits is used as fit parameter
to fit the model output to known DRAM power values, e.g. from DRAM data
sheets.  Simple extrapolation can be done to get from the fitted values
to a modified device e.g. with larger density or a higher speed
interface."

This example (1) fits a 1 Gb DDR3-1333 model to a vendor's datasheet
values, then (2) extrapolates the fitted periphery to the faster 1600
speed bin and checks the prediction — exactly the workflow the paper
describes.

Run:  python examples/calibration_workflow.py
"""

from repro import DramPowerModel
from repro.analysis import format_table
from repro.analysis.calibration import CalibrationTarget, calibrate_logic
from repro.core.idd import IddMeasure, measure
from repro.devices import build_device

# A vendor's (reconstructed) 1 Gb DDR3-1333 x16 datasheet values.
DATASHEET_1333 = {
    IddMeasure.IDD0: 80.0,
    IddMeasure.IDD2N: 45.0,
    IddMeasure.IDD4R: 165.0,
    IddMeasure.IDD4W: 170.0,
}

# The same vendor's 1600 bin — used only to check the extrapolation.
DATASHEET_1600 = {
    IddMeasure.IDD4R: 195.0,
    IddMeasure.IDD4W: 200.0,
}

_GBIT = 1 << 30


def main() -> None:
    device = build_device(65, interface="DDR3", density_bits=_GBIT,
                          io_width=16, datarate=1333e6)
    model = DramPowerModel(device)

    targets = [CalibrationTarget(which, value)
               for which, value in DATASHEET_1333.items()]
    result = calibrate_logic(device, targets)

    rows = []
    for which, value in DATASHEET_1333.items():
        before = measure(model, which).milliamps
        after = measure(DramPowerModel(result.device), which).milliamps
        rows.append([which.value, value, round(before, 1),
                     round(after, 1)])
    print(format_table(
        ["measure", "datasheet mA", "model before", "model after"],
        rows, title="Step 1 - fit the periphery to the 1333 datasheet",
    ))
    print(f"\nRMS log-error: {result.initial_error:.3f} -> "
          f"{result.final_error:.3f}")
    print("fitted gate-count factors: "
          + ", ".join(f"{name} x{factor:.2f}"
                      for name, factor in result.scale_factors.items()
                      if abs(factor - 1.0) > 0.01))
    print()

    # Step 2: extrapolate the fitted periphery to the 1600 bin.
    faster = result.device.evolve(
        spec=result.device.spec.scaled(datarate=1600e6,
                                       f_dataclock=800e6,
                                       f_ctrlclock=800e6),
        name="1G-DDR3-1600-extrapolated",
    )
    fast_model = DramPowerModel(faster)
    rows = []
    for which, value in DATASHEET_1600.items():
        predicted = measure(fast_model, which).milliamps
        rows.append([which.value, value, round(predicted, 1),
                     f"{predicted / value:.2f}"])
    print(format_table(
        ["measure", "datasheet mA", "extrapolated model", "ratio"],
        rows, title="Step 2 - extrapolate to the 1600 speed bin",
    ))
    print("\nThe fitted periphery predicts the faster bin within the")
    print("vendor-spread accuracy the paper reports for Figures 8/9.")


if __name__ == "__main__":
    main()
