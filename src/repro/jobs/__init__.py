"""Durable, crash-recoverable asynchronous jobs.

The job layer turns the service's ephemeral request/response model
into fleet-scale campaigns that survive worker SIGKILLs and full
restarts: specs (:mod:`repro.jobs.spec`) plan into deterministic
chunks, a write-ahead journal (:mod:`repro.jobs.journal`) checkpoints
every finished chunk with fsync + atomic snapshot compaction, the
store (:mod:`repro.jobs.store`) arbitrates ownership with flock and
idempotency keys, and per-worker managers (:mod:`repro.jobs.manager`)
claim, run, resume, and TTL-reap jobs.  See ``docs/JOBS.md``.
"""

from .journal import JobJournal
from .manager import JobManager, JobRunner
from .spec import (DEFAULT_CHUNK_SIZE, JOB_KINDS, JobPlan, JobSpec,
                   parse_job_spec, plan_job)
from .store import DEFAULT_TTL, JobClaim, JobStore

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_TTL",
    "JOB_KINDS",
    "JobClaim",
    "JobJournal",
    "JobManager",
    "JobPlan",
    "JobRunner",
    "JobSpec",
    "JobStore",
    "parse_job_spec",
    "plan_job",
]
