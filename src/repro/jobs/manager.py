"""Job execution: crash-recoverable runners under a polling manager.

:class:`JobRunner` executes one claimed job to a terminal state:

1. **Replay** the write-ahead journal — every durably checkpointed
   chunk is adopted verbatim, never re-computed (``replayed_chunks``
   counts them for the resume-parity assertions).
2. **Run** the missing chunks in index order through the shared
   :class:`~repro.engine.EvaluationSession`, appending each result to
   the journal (fsync'd) before acknowledging progress, compacting
   into an atomic snapshot every ``compact_every`` appends.
3. **Assemble** the final result from the complete chunk map and
   write it atomically; because planning is deterministic and floats
   round-trip JSON losslessly, a resumed run's result is bit-for-bit
   identical to an uninterrupted one.

Between chunks the runner honours cooperative cancellation (the
``cancel`` marker), manager shutdown (the job reverts to ``pending``
for a successor), and the injected job fault points
(``crash-mid-chunk`` — work done but not journaled;
``crash-after-checkpoint`` — journaled but status not yet updated;
``job-torn-write`` — the journal line itself is cut short).

:class:`JobManager` is the per-worker daemon: a poll loop that claims
runnable jobs (pending submits and dead-owner orphans — the flock
arbitrates racing adopters), runs up to ``max_running`` concurrently
on daemon threads, and TTL-reaps finished jobs.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Any, Dict, Optional

from ..engine import EvaluationSession, ensure_session
from ..errors import ReproError, ServiceError
from .spec import plan_job
from .store import DEFAULT_TTL, JobClaim, JobStore

_LOG = logging.getLogger("repro.jobs")

#: Journal appends between snapshot compactions.
DEFAULT_COMPACT_EVERY = 16


class JobRunner:
    """Drives one claimed job to completion (or suspension)."""

    def __init__(self, store: JobStore, claim: JobClaim,
                 session: EvaluationSession,
                 worker_id: Optional[int] = None,
                 faults: Any = None,
                 compact_every: int = DEFAULT_COMPACT_EVERY,
                 stop_event: Optional[threading.Event] = None):
        self.store = store
        self.claim = claim
        self.job_id = claim.job_id
        self.session = session
        self.worker_id = worker_id
        self.faults = faults
        self.compact_every = max(1, compact_every)
        self.stop_event = stop_event or threading.Event()
        self.replayed_chunks = 0
        self.computed_chunks = 0

    # ------------------------------------------------------------------
    def _maybe_crash(self, point: str) -> None:
        if self.faults is not None and self.faults.job_crash(point):
            from ..service.faults import kill_self
            kill_self()

    def run(self) -> str:
        """Execute to a terminal state; returns the final state."""
        try:
            return self._run()
        except (ServiceError, ReproError, ValueError,
                TypeError) as exc:
            _LOG.warning("job %s failed: %s", self.job_id, exc)
            self.store.write_error(self.job_id, str(exc))
            self.store.write_status(self.job_id, state="failed",
                                    error=str(exc))
            return "failed"
        finally:
            self.claim.release()

    def _run(self) -> str:
        store, job_id = self.store, self.job_id
        state = store.status(job_id).get("state")
        if state in ("done", "failed", "cancelled"):
            return state  # raced a finished run; nothing to do
        spec = store.load_spec(job_id)
        plan = plan_job(spec, self.session)
        journal = store.journal(job_id)
        chunks = journal.replay()
        self.replayed_chunks = len(chunks)
        store.write_status(
            job_id, state="running", worker=self.worker_id,
            pid=os.getpid(), chunks_total=plan.chunk_count,
            chunks_done=len(chunks), partial=plan.partial(chunks))
        for index in range(plan.chunk_count):
            if index in chunks:
                continue  # durably checkpointed: never re-computed
            if store.cancel_requested(job_id):
                store.write_status(job_id, state="cancelled")
                return "cancelled"
            if self.stop_event.is_set():
                # Cooperative shutdown: hand the job back intact.
                store.write_status(job_id, state="pending",
                                   worker=None, pid=None)
                return "pending"
            result = plan.run_chunk(index)
            self._maybe_crash("mid-chunk")
            journal.append_chunk(index, result, faults=self.faults)
            self._maybe_crash("after-checkpoint")
            chunks[index] = result
            self.computed_chunks += 1
            store.write_status(job_id, chunks_done=len(chunks),
                               partial=plan.partial(chunks))
            if journal.journal_records >= self.compact_every:
                journal.compact(chunks)
        result = plan.assemble(chunks)
        store.write_result(job_id, result)
        store.write_status(job_id, state="done",
                           chunks_done=len(chunks),
                           partial=plan.partial(chunks),
                           replayed_chunks=self.replayed_chunks,
                           computed_chunks=self.computed_chunks)
        return "done"


class JobManager:
    """Per-worker daemon claiming and running durable jobs."""

    def __init__(self, root: str,
                 session: Optional[EvaluationSession] = None,
                 worker_id: Optional[int] = None,
                 faults: Any = None,
                 max_running: int = 2,
                 poll_interval: float = 0.25,
                 ttl: float = DEFAULT_TTL,
                 compact_every: int = DEFAULT_COMPACT_EVERY):
        self.store = JobStore(root)
        self.session = ensure_session(session)
        self.worker_id = worker_id
        self.faults = faults
        self.max_running = max(1, max_running)
        self.poll_interval = poll_interval
        self.ttl = ttl
        self.compact_every = compact_every
        self._stop = threading.Event()
        self._kick = threading.Event()
        self._lock = threading.Lock()
        self._running: Dict[str, threading.Thread] = {}
        self._thread: Optional[threading.Thread] = None
        self._gc_at = 0.0
        self.jobs_started = 0
        self.jobs_resumed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._poll_loop, name="repro-jobs", daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal runners, wait for in-flight chunks to land."""
        self._stop.set()
        self._kick.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        with self._lock:
            workers = list(self._running.values())
        for worker in workers:
            worker.join(timeout=timeout)

    # -- service-facing operations -------------------------------------
    def submit(self, payload: Any) -> Dict[str, Any]:
        status, created = self.store.submit(payload)
        status = dict(status)
        status["created"] = created
        self._kick.set()
        return status

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.store.status(job_id)

    def result(self, job_id: str) -> Optional[Any]:
        return self.store.result(job_id)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.store.request_cancel(job_id)

    def list_jobs(self) -> Any:
        return self.store.list_jobs()

    def counters(self) -> Dict[str, int]:
        """Manager counters for ``GET /stats``."""
        with self._lock:
            active = len(self._running)
        return {"jobs_started": self.jobs_started,
                "jobs_resumed": self.jobs_resumed,
                "jobs_active": active}

    # -- the poll loop -------------------------------------------------
    def _poll_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception:  # pragma: no cover - defensive
                _LOG.exception("job manager tick failed")
            self._kick.wait(self.poll_interval)
            self._kick.clear()

    def _tick(self) -> None:
        self._reap_finished()
        now = self.store.clock()
        if now - self._gc_at > max(1.0, self.ttl / 4):
            self._gc_at = now
            self.store.gc(self.ttl)
        with self._lock:
            slots = self.max_running - len(self._running)
            running = set(self._running)
        if slots <= 0:
            return
        for job_id in self.store.runnable_jobs(self.worker_id):
            if slots <= 0:
                break
            if job_id in running:
                continue
            claim = self.store.claim(job_id)
            if claim is None:
                continue  # another worker won the flock race
            status = self.store.status(job_id)
            if status.get("state") not in ("pending", "running"):
                claim.release()
                continue
            self._launch(claim, status)
            slots -= 1

    def _reap_finished(self) -> None:
        with self._lock:
            finished = [job_id for job_id, thread
                        in self._running.items()
                        if not thread.is_alive()]
            for job_id in finished:
                del self._running[job_id]

    def _launch(self, claim: JobClaim,
                status: Dict[str, Any]) -> None:
        job_id = claim.job_id
        runner = JobRunner(self.store, claim, self.session,
                           worker_id=self.worker_id,
                           faults=self.faults,
                           compact_every=self.compact_every,
                           stop_event=self._stop)
        if status.get("state") == "running" \
                or status.get("orphaned"):
            self.jobs_resumed += 1
        self.jobs_started += 1
        thread = threading.Thread(
            target=runner.run, name=f"repro-job-{job_id}",
            daemon=True)
        with self._lock:
            self._running[job_id] = thread
        thread.start()

    # -- synchronous execution (tests, CLI) ----------------------------
    def run_pending(self) -> int:
        """Claim and run runnable jobs on the calling thread.

        Deterministic driver for tests and one-shot tools: no poll
        loop, no threads.  Returns the number of jobs executed.
        """
        executed = 0
        for job_id in self.store.runnable_jobs(self.worker_id):
            claim = self.store.claim(job_id)
            if claim is None:
                continue
            runner = JobRunner(self.store, claim, self.session,
                               worker_id=self.worker_id,
                               faults=self.faults,
                               compact_every=self.compact_every)
            if self.store.status(job_id).get("state") == "running":
                self.jobs_resumed += 1
            self.jobs_started += 1
            runner.run()
            executed += 1
        return executed
