"""Write-ahead chunk journal with atomic snapshot compaction.

Durability contract of one job directory:

* ``journal.ndjson`` — append-only NDJSON, one record per completed
  chunk: ``{"chunk": <index>, "result": <json>}``.  Every append is
  flushed and ``fsync``'d before the runner moves on, so a chunk that
  reached the journal survives any crash (the acceptance bar: *no
  journaled chunk is ever re-computed or lost*).
* ``snapshot.json`` — periodic compaction of all chunks completed so
  far, written atomically (``.tmp`` + ``fsync`` + ``rename``) and
  followed by a journal truncate.  Keeps replay cost bounded for
  wide jobs without ever widening the loss window: the rename is the
  commit point, and a crash *between* rename and truncate merely
  leaves duplicate records that replay dedupes by chunk index.

Replay (:meth:`JobJournal.replay`) is torn-tail tolerant: a crash (or
an injected ``job-torn-write`` fault) can leave a partial final line,
which is ignored — it never made the durability bar.  A torn line
*followed* by valid records cannot occur because appends are
sequential within the owning runner and the file is truncated, never
edited in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

JOURNAL_NAME = "journal.ndjson"
SNAPSHOT_NAME = "snapshot.json"
SNAPSHOT_VERSION = 1


def fsync_path(path: Path) -> None:
    """``fsync`` a file (or directory) by path; best-effort on dirs."""
    flags = os.O_RDONLY
    if path.is_dir():  # pragma: no branch - trivial
        flags |= getattr(os, "O_DIRECTORY", 0)
    try:
        handle = os.open(path, flags)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


def write_json_atomic(path: Path, payload: Any) -> None:
    """Write ``payload`` as JSON via tmp + fsync + rename."""
    staging = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    staging.replace(path)
    fsync_path(path.parent)


def read_json(path: Path) -> Optional[Any]:
    """Parse ``path`` as JSON; ``None`` on absence or corruption."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


class JobJournal:
    """The write-ahead journal of one job directory."""

    def __init__(self, directory: "str | Path", fsync: bool = True):
        self.directory = Path(directory)
        self.journal_path = self.directory / JOURNAL_NAME
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.fsync = fsync
        self._journal_records = 0

    # ------------------------------------------------------------------
    @property
    def journal_records(self) -> int:
        """Appends since the last compaction (this handle's view)."""
        return self._journal_records

    def append_chunk(self, index: int, result: Any,
                     faults: Any = None) -> None:
        """Durably append one completed chunk.

        The record only counts as checkpointed once the ``fsync``
        returns.  ``faults`` (a :class:`~repro.service.faults.
        FaultInjector`) may demand a torn write: the line is cut in
        half, synced, and the process SIGKILLs itself — exactly the
        torn tail replay must tolerate.
        """
        line = json.dumps({"chunk": int(index), "result": result},
                          sort_keys=True) + "\n"
        data = line.encode("utf-8")
        torn = faults is not None and faults.job_torn_write()
        if torn:
            data = data[:max(1, len(data) // 2)]
        with open(self.journal_path, "ab") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if torn:
            from ..service.faults import kill_self
            kill_self()
        self._journal_records += 1

    def replay(self) -> Dict[int, Any]:
        """All durably checkpointed chunks, keyed by chunk index.

        Snapshot first, then journal records on top (identical values
        when both hold a chunk — the duplicate window is crash between
        snapshot rename and journal truncate).  A torn trailing line
        is skipped; a malformed interior line is likewise skipped
        rather than poisoning the job.
        """
        chunks: Dict[int, Any] = {}
        snapshot = read_json(self.snapshot_path)
        if (isinstance(snapshot, dict)
                and snapshot.get("version") == SNAPSHOT_VERSION
                and isinstance(snapshot.get("chunks"), dict)):
            for key, value in snapshot["chunks"].items():
                try:
                    chunks[int(key)] = value
                except (TypeError, ValueError):
                    continue
        journal_lines = 0
        try:
            with open(self.journal_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            raw = b""
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                index = int(record["chunk"])
            except (ValueError, KeyError, TypeError):
                continue  # torn or foreign line: not durable, skip
            chunks[index] = record["result"]
            journal_lines += 1
        self._journal_records = journal_lines
        return chunks

    def compact(self, chunks: Dict[int, Any]) -> None:
        """Fold ``chunks`` into an atomic snapshot, truncate journal.

        The snapshot rename is the commit point.  A crash before it
        leaves the old snapshot + full journal; a crash after it but
        before the truncate leaves duplicates that replay dedupes.
        """
        payload = {"version": SNAPSHOT_VERSION,
                   "chunks": {str(k): v for k, v in chunks.items()}}
        write_json_atomic(self.snapshot_path, payload)
        with open(self.journal_path, "wb") as handle:
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._journal_records = 0
