"""Job specifications and deterministic chunk planning.

A *job spec* is the durable, JSON-serialisable description of a wide
workload — what to compute, never how far it got (progress lives in
the journal).  Planning a spec against a session yields a
:class:`JobPlan`: a fixed number of work *units* split into
contiguous chunks of ``chunk_size`` units each.  Two properties make
crash-resume bit-for-bit exact:

* planning is **deterministic** — the unit list depends only on the
  spec (Monte-Carlo device draws are regenerated from the seed, so a
  resumed runner sees the same devices at the same indices as the
  crashed one);
* chunks are **independent and ordered** — each chunk's JSON result
  depends only on its own units, and :meth:`JobPlan.assemble` merges
  the chunk map in index order, so mixing journal-replayed chunks
  with freshly computed ones reproduces the uninterrupted result
  exactly (Python round-trips floats through JSON losslessly).

Four kinds cover the ROADMAP's fleet-scale campaigns:

* ``montecarlo`` — VAR-DRAM-style variation sweeps; one unit = one
  sampled device, result rows match
  :class:`repro.analysis.montecarlo.Distribution` summaries;
* ``evaluate`` — wide device batches; one unit = one device, the
  assembled result matches buffered ``POST /evaluate``;
* ``sweep`` — the named sweep families; one unit = one decomposed
  sweep slice (parameter / node / scheme; ``corners`` is one unit),
  rows in the same order the streaming endpoint emits them.
* ``trace`` — rank-sharded replay of an on-disk trace file; one unit
  = one (channel, rank) shard, chunk results are exported
  :class:`~repro.core.trace.TraceAccumulator` states and assembly
  merges them exactly, so the job result is bit-identical to serial
  one-shot replay (and resumable mid-file at shard granularity).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analysis.corners import (STANDARD_CORNERS, VENDOR_SPREAD_CORNERS,
                                corner_sweep)
from ..analysis.montecarlo import (DEFAULT_SIGMAS, Distribution,
                                   _measure_milliamps, _sample_variant)
from ..analysis.sensitivity import PARAMETERS, sensitivity
from ..analysis.trends import generation_trend
from ..core.idd import IddMeasure
from ..core.trace import TraceAccumulator
from ..engine import AUTO, EvaluationSession
from ..errors import JobError, ReproError, ServiceError
from ..schemes import ALL_SCHEMES, compare_schemes
from ..service.jsonapi import (SWEEPS, _evaluation, corner_row,
                               device_from_payload,
                               parse_evaluate_request, scheme_row,
                               sensitivity_row, trend_row)
from ..service.tracing import trace_result_row
from ..technology.roadmap import nodes
from ..trace import (DEFAULT_CLOCK, FORMATS, POLICIES, AddressDecoder,
                     fold_file_shards, resolve_trace_format)

#: Default units per journaled chunk.
DEFAULT_CHUNK_SIZE = 8

#: Hard ceiling on Monte-Carlo samples per job (memory guard).
MAX_SAMPLES = 1_000_000


@dataclass(frozen=True)
class JobSpec:
    """A durable job description: what to run, in chunks of what."""

    kind: str
    params: Mapping[str, Any]
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params),
                "chunk_size": self.chunk_size}

    def canonical(self) -> str:
        """Key-sorted JSON — the idempotency comparison form."""
        return json.dumps(self.to_dict(), sort_keys=True)


def parse_job_spec(payload: Any) -> JobSpec:
    """Decode and eagerly validate a ``POST /jobs`` body.

    Raises :class:`ServiceError` (HTTP 400) on anything malformed so
    a bad spec is rejected at submit time, never accepted and then
    failed asynchronously.
    """
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; choose from "
            + "/".join(sorted(JOB_KINDS)))
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ServiceError("'params' must be a JSON object")
    chunk_size = payload.get("chunk_size", DEFAULT_CHUNK_SIZE)
    if not isinstance(chunk_size, int) or chunk_size < 1:
        raise ServiceError("'chunk_size' must be a positive integer")
    spec = JobSpec(kind=kind, params=params, chunk_size=chunk_size)
    JOB_KINDS[kind].validate(params)
    return spec


class JobPlan:
    """Deterministic chunked execution plan of one spec."""

    def __init__(self, spec: JobSpec, session: EvaluationSession):
        self.spec = spec
        self.session = session
        self.units = 0

    # ------------------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        size = self.spec.chunk_size
        return (self.units + size - 1) // size

    def chunk_range(self, index: int) -> Tuple[int, int]:
        low = index * self.spec.chunk_size
        return low, min(self.units, low + self.spec.chunk_size)

    def units_done(self, chunks: Mapping[int, Any]) -> int:
        return sum(len(result) for result in chunks.values())

    def _merged(self, chunks: Mapping[int, Any]) -> List[Any]:
        """Unit results in index order; raises if a chunk is absent."""
        merged: List[Any] = []
        for index in range(self.chunk_count):
            if index not in chunks:
                raise JobError(f"chunk {index} missing at assembly")
            merged.extend(chunks[index])
        return merged

    # -- kind-specific hooks -------------------------------------------
    @classmethod
    def validate(cls, params: Mapping[str, Any]) -> None:
        """Cheap eager validation; raises :class:`ServiceError`."""
        raise NotImplementedError

    def run_chunk(self, index: int) -> List[Any]:
        """Evaluate one chunk to a JSON-safe list of unit results."""
        raise NotImplementedError

    def assemble(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        """The final job result from the complete chunk map."""
        raise NotImplementedError

    def partial(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        """Cheap progress aggregate for ``GET /jobs/<id>``."""
        return {"units_done": self.units_done(chunks),
                "units_total": self.units}


def _execution_options(params: Mapping[str, Any]
                       ) -> Tuple[Optional[int], Optional[str]]:
    jobs = params.get("jobs")
    if jobs is not None and not isinstance(jobs, int):
        raise ServiceError("'jobs' must be an integer worker count")
    backend = params.get("backend", AUTO)
    if backend is not None and not isinstance(backend, str):
        raise ServiceError("'backend' must be a backend name")
    return jobs, backend


class MonteCarloPlan(JobPlan):
    """``montecarlo``: one unit per sampled device variant."""

    def __init__(self, spec: JobSpec, session: EvaluationSession):
        super().__init__(spec, session)
        params = spec.params
        self.device = device_from_payload(params.get("device", {}))
        self.samples = int(params["samples"])
        self.seed = int(params.get("seed", 1))
        self.measures = tuple(
            IddMeasure(name) for name in params.get(
                "measures", ("idd0", "idd4r")))
        sigmas = params.get("sigmas")
        self.sigmas = dict(DEFAULT_SIGMAS if sigmas is None
                           else sigmas)
        self.jobs, self.backend = _execution_options(params)
        # The deterministic core: the whole draw sequence depends
        # only on the seed, so a resumed plan regenerates the exact
        # device list and evaluates only the missing chunks.
        rng = random.Random(self.seed)
        self.devices = [
            _sample_variant(rng, self.sigmas).apply(self.device)
            for _ in range(self.samples)]
        self.units = self.samples

    @classmethod
    def validate(cls, params: Mapping[str, Any]) -> None:
        samples = params.get("samples")
        if not isinstance(samples, int) or samples < 1:
            raise ServiceError("'samples' must be a positive integer")
        if samples > MAX_SAMPLES:
            raise ServiceError(
                f"'samples' capped at {MAX_SAMPLES}")
        seed = params.get("seed", 1)
        if not isinstance(seed, int):
            raise ServiceError("'seed' must be an integer")
        sigmas = params.get("sigmas")
        if sigmas is not None and not isinstance(sigmas, dict):
            raise ServiceError("'sigmas' must be a JSON object")
        try:
            for name in params.get("measures", ("idd0", "idd4r")):
                IddMeasure(name)
        except (ValueError, TypeError) as exc:
            raise ServiceError(f"bad measure: {exc}") from exc
        device_from_payload(params.get("device", {}))
        _execution_options(params)

    def run_chunk(self, index: int) -> List[Any]:
        low, high = self.chunk_range(index)
        return self.session.map(
            self.devices[low:high],
            partial(_measure_milliamps, measures=self.measures),
            jobs=self.jobs, backend=self.backend)

    def _distributions(self, series: List[List[float]]
                       ) -> List[Distribution]:
        return [Distribution(measure=which,
                             samples=tuple(row[column]
                                           for row in series))
                for column, which in enumerate(self.measures)]

    def assemble(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        rows = []
        for dist in self._distributions(self._merged(chunks)):
            rows.append({"measure": dist.measure.value,
                         "mean_ma": dist.mean,
                         "stdev_ma": dist.stdev,
                         "min_ma": dist.minimum,
                         "max_ma": dist.maximum,
                         "p95_ma": dist.percentile(0.95),
                         "guard_band": dist.guard_band})
        return {"kind": "montecarlo", "device": self.device.name,
                "samples": self.samples, "seed": self.seed,
                "measures": [m.value for m in self.measures],
                "rows": rows}

    def partial(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        progress = super().partial(chunks)
        series = [row for index in sorted(chunks)
                  for row in chunks[index]]
        if series:
            progress["rows"] = [
                {"measure": dist.measure.value, "mean_ma": dist.mean}
                for dist in self._distributions(series)]
        return progress


class EvaluatePlan(JobPlan):
    """``evaluate``: one unit per device of a wide batch."""

    def __init__(self, spec: JobSpec, session: EvaluationSession):
        super().__init__(spec, session)
        self.devices, self.pattern = parse_evaluate_request(
            dict(spec.params))
        self.units = len(self.devices)

    @classmethod
    def validate(cls, params: Mapping[str, Any]) -> None:
        parse_evaluate_request(dict(params))

    def run_chunk(self, index: int) -> List[Any]:
        low, high = self.chunk_range(index)
        try:
            return [_evaluation(self.session.model(device),
                                self.pattern)
                    for device in self.devices[low:high]]
        except ServiceError:
            raise
        except ReproError as exc:
            raise JobError(str(exc)) from exc

    def assemble(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        results = self._merged(chunks)
        return {"kind": "evaluate", "count": len(results),
                "results": results}


class SweepPlan(JobPlan):
    """``sweep``: one unit per decomposed slice of a named sweep.

    Mirrors the streaming decomposition (``sensitivity`` per
    parameter, ``trends`` per node, ``schemes`` per scheme,
    ``corners`` as a single unit) so resumable rows keep the
    streaming order.
    """

    def __init__(self, spec: JobSpec, session: EvaluationSession):
        super().__init__(spec, session)
        params = spec.params
        self.sweep = params.get("kind")
        self.jobs, self.backend = _execution_options(params)
        self.variation = float(params.get("variation", 0.2))
        self.vendor = bool(params.get("vendor", False))
        self.io_width = int(params.get("io_width", 16))
        if self.sweep in ("sensitivity", "corners", "schemes"):
            self.device = device_from_payload(
                params.get("device", {}))
        else:
            self.device = None
        if self.sweep == "sensitivity":
            self.slices: List[Any] = list(PARAMETERS)
        elif self.sweep == "trends":
            node_list = params.get("nodes")
            if node_list is None:
                node_list = list(nodes())
            self.slices = list(node_list)
        elif self.sweep == "schemes":
            self.slices = list(ALL_SCHEMES)
        else:
            self.slices = [None]  # corners: one indivisible unit
        self.units = len(self.slices)

    @classmethod
    def validate(cls, params: Mapping[str, Any]) -> None:
        sweep = params.get("kind")
        if sweep not in SWEEPS:
            raise ServiceError(
                f"unknown sweep kind {sweep!r}; choose from "
                + "/".join(sorted(SWEEPS)))
        node_list = params.get("nodes")
        if node_list is not None and not isinstance(node_list, list):
            raise ServiceError("'nodes' must be a list of nodes in nm")
        if sweep in ("sensitivity", "corners", "schemes"):
            device_from_payload(params.get("device", {}))
        _execution_options(params)

    def _slice_rows(self, item: Any) -> List[Any]:
        if self.sweep == "sensitivity":
            results = sensitivity(self.device,
                                  variation=self.variation,
                                  parameters=(item,),
                                  session=self.session,
                                  jobs=self.jobs,
                                  backend=self.backend)
            return [sensitivity_row(result) for result in results]
        if self.sweep == "trends":
            points = generation_trend(io_width=self.io_width,
                                      node_list=[item],
                                      session=self.session,
                                      jobs=self.jobs,
                                      backend=self.backend)
            return [trend_row(point) for point in points]
        if self.sweep == "schemes":
            results = compare_schemes(self.device, schemes=(item,),
                                      session=self.session,
                                      jobs=self.jobs,
                                      backend=self.backend)
            return [scheme_row(result) for result in results]
        corners = (VENDOR_SPREAD_CORNERS if self.vendor
                   else STANDARD_CORNERS)
        bands = corner_sweep(self.device, corners=corners,
                             session=self.session, jobs=self.jobs,
                             backend=self.backend)
        return [corner_row(band) for band in bands]

    def run_chunk(self, index: int) -> List[Any]:
        low, high = self.chunk_range(index)
        try:
            return [self._slice_rows(item)
                    for item in self.slices[low:high]]
        except ServiceError:
            raise
        except (ReproError, ValueError, TypeError) as exc:
            raise JobError(str(exc)) from exc

    def assemble(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        rows = [row for unit in self._merged(chunks) for row in unit]
        return {"kind": "sweep", "sweep": self.sweep,
                "count": len(rows), "rows": rows}


def _trace_decoder_params(params: Mapping[str, Any]
                          ) -> Dict[str, Any]:
    """Validated decoder keyword arguments from a ``trace`` spec."""
    decoder = params.get("decoder", {})
    if not isinstance(decoder, dict):
        raise ServiceError("'decoder' must be a JSON object")
    policy = decoder.get("policy", "row-bank-column")
    if policy not in POLICIES:
        raise ServiceError(
            f"unknown decode policy {policy!r}; choose from "
            + "/".join(POLICIES))
    kwargs: Dict[str, Any] = {"policy": policy}
    for key in ("channel_bits", "rank_bits", "offset_bits"):
        if key not in decoder:
            continue
        value = decoder[key]
        if not isinstance(value, int) or value < 0:
            raise ServiceError(
                f"'{key}' must be a non-negative integer")
        kwargs[key] = value
    return kwargs


class TracePlan(JobPlan):
    """``trace``: one unit per (channel, rank) shard of a trace file.

    The file stays on disk (journal entries carry exported
    accumulator states, never trace lines), so multi-gigabyte traces
    replay as durable, crash-resumable jobs.  Each chunk folds a
    contiguous shard range through
    :func:`~repro.trace.parallel.fold_file_shards` — columnar when
    numpy is present — and assembly merges the states in shard order,
    which reproduces serial one-shot replay bit for bit.
    """

    def __init__(self, spec: JobSpec, session: EvaluationSession):
        super().__init__(spec, session)
        params = spec.params
        self.device = device_from_payload(params.get("device", {}))
        self.path = str(params["path"])
        self.clock = float(params.get("clock", DEFAULT_CLOCK))
        self.decoder = AddressDecoder.from_device(
            self.device, **_trace_decoder_params(params))
        self.fmt = resolve_trace_format(self.path,
                                        params.get("format"))
        self.units = self.decoder.num_shards

    @classmethod
    def validate(cls, params: Mapping[str, Any]) -> None:
        path = params.get("path")
        if not isinstance(path, str) or not path:
            raise ServiceError("'path' must be a trace file path")
        if not os.path.isfile(path):
            raise ServiceError(f"trace file not found: {path!r}",
                               status=400)
        fmt = params.get("format")
        if fmt is not None and fmt != "auto" and fmt not in FORMATS:
            raise ServiceError(
                f"unknown trace format {fmt!r}; choose from "
                + "/".join(sorted(FORMATS)))
        clock = params.get("clock", DEFAULT_CLOCK)
        if not isinstance(clock, (int, float)) or not clock > 0:
            raise ServiceError("'clock' must be positive Hz")
        if params.get("strict"):
            raise ServiceError(
                "sharded trace jobs replay leniently; strict "
                "legality checking needs the serial CLI path")
        device_from_payload(params.get("device", {}))
        _trace_decoder_params(params)

    def run_chunk(self, index: int) -> List[Any]:
        low, high = self.chunk_range(index)
        try:
            accumulator = fold_file_shards(
                self.session.model(self.device), self.path, self.fmt,
                self.decoder, self.clock, range(low, high))
        except OSError as exc:
            raise JobError(str(exc)) from exc
        except ServiceError:
            raise
        except ReproError as exc:
            raise JobError(str(exc)) from exc
        return [accumulator.export_state()]

    def units_done(self, chunks: Mapping[int, Any]) -> int:
        # One exported state covers the chunk's whole shard range.
        return sum(self.chunk_range(index)[1]
                   - self.chunk_range(index)[0]
                   for index in chunks)

    def _merge(self, chunks: Mapping[int, Any],
               indices: List[int]) -> TraceAccumulator:
        merged = TraceAccumulator(self.session.model(self.device),
                                  strict=False)
        for index in indices:
            for state in chunks[index]:
                merged.merge_state(state)
        return merged

    def assemble(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        for index in range(self.chunk_count):
            if index not in chunks:
                raise JobError(f"chunk {index} missing at assembly")
        merged = self._merge(chunks, list(range(self.chunk_count)))
        return {"kind": "trace", "path": self.path,
                "format": self.fmt, "device": self.device.name,
                "shards": self.units,
                "commands": merged.commands_seen,
                "result": trace_result_row(merged.result(),
                                           merged.commands_seen)}

    def partial(self, chunks: Mapping[int, Any]) -> Dict[str, Any]:
        progress = super().partial(chunks)
        if chunks:
            merged = self._merge(chunks, sorted(chunks))
            progress["commands"] = merged.commands_seen
        return progress


#: Registered job kinds, keyed by spec ``kind``.
JOB_KINDS: Dict[str, Any] = {
    "montecarlo": MonteCarloPlan,
    "evaluate": EvaluatePlan,
    "sweep": SweepPlan,
    "trace": TracePlan,
}


def plan_job(spec: JobSpec,
             session: EvaluationSession) -> JobPlan:
    """Instantiate the plan for ``spec`` against ``session``."""
    return JOB_KINDS[spec.kind](spec, session)
