"""Durable on-disk job store: submit, claim, observe, reap.

One directory per job under the store root::

    <root>/<job_id>/
        spec.json      the immutable JobSpec (written once at submit)
        status.json    current state, progress, ownership (atomic)
        journal.ndjson write-ahead chunk journal (JobJournal)
        snapshot.json  compacted chunk snapshot (JobJournal)
        result.json    final assembled result (terminal, atomic)
        error.json     terminal failure details
        cancel         cooperative-cancel marker (empty file)
        lock           flock'd while a runner owns the job

Ownership uses ``fcntl.flock`` on ``lock``: the kernel releases the
lock the instant the owning process dies — including ``SIGKILL`` —
so orphan takeover is race-free (two would-be adopters both try a
non-blocking exclusive flock; exactly one wins).  Platforms without
``fcntl`` fall back to best-effort pid files, which is fine for the
single-worker development case they serve.

Idempotency: a submit carrying ``idempotency_key`` derives its job id
from the key's SHA-256, so a retried submit lands on the same
directory and returns the existing job instead of double-running it;
a *different* spec under the same key is a 409 conflict.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..errors import JobNotFound, ServiceError
from .journal import JobJournal, read_json, write_json_atomic
from .spec import JobSpec, parse_job_spec

#: Job states; the last three are terminal.
STATES = ("pending", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Default seconds a finished job survives before GC.
DEFAULT_TTL = 3600.0


def _job_id_for_key(key: str) -> str:
    digest = hashlib.sha256(
        ("key:" + key).encode("utf-8")).hexdigest()
    return "j" + digest[:16]


def _random_job_id() -> str:
    return "j" + uuid.uuid4().hex[:16]


class JobClaim:
    """Exclusive ownership of one job while a runner executes it."""

    def __init__(self, store: "JobStore", job_id: str, handle: Any):
        self.store = store
        self.job_id = job_id
        self._handle = handle

    def release(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()
        except OSError:  # pragma: no cover - double close
            pass
        if fcntl is None:  # pragma: no cover - pid-file fallback
            try:
                (self.store.job_dir(self.job_id) / "lock.pid").unlink()
            except OSError:
                pass


class JobStore:
    """File-backed durable store shared by every worker of a fleet."""

    def __init__(self, root: "str | Path",
                 clock: Any = time.time):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.clock = clock

    # -- layout --------------------------------------------------------
    def job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def journal(self, job_id: str) -> JobJournal:
        return JobJournal(self.job_dir(job_id))

    def exists(self, job_id: str) -> bool:
        return (self.job_dir(job_id) / "spec.json").is_file()

    def _require(self, job_id: str) -> Path:
        directory = self.job_dir(job_id)
        if not (directory / "spec.json").is_file():
            raise JobNotFound(f"unknown job {job_id!r}")
        return directory

    # -- submit --------------------------------------------------------
    def submit(self, payload: Any) -> Tuple[Dict[str, Any], bool]:
        """Create (or find) a job; returns ``(status, created)``.

        ``payload`` is the ``POST /jobs`` body: ``kind``, ``params``,
        ``chunk_size``, optional ``idempotency_key``.  A repeat
        submit under the same key returns the existing job's status
        with ``created=False``; the same key with a different spec
        is a 409 conflict.
        """
        spec = parse_job_spec(payload)
        key = payload.get("idempotency_key")
        if key is not None and not isinstance(key, str):
            raise ServiceError("'idempotency_key' must be a string")
        job_id = (_job_id_for_key(key) if key is not None
                  else _random_job_id())
        directory = self.job_dir(job_id)
        try:
            directory.mkdir(parents=False, exist_ok=False)
        except FileExistsError:
            return self._existing(job_id, spec, key), False
        write_json_atomic(directory / "spec.json", spec.to_dict())
        now = self.clock()
        status = {"job": job_id, "state": "pending",
                  "kind": spec.kind, "created_unix": now,
                  "updated_unix": now, "chunks_total": None,
                  "chunks_done": 0, "worker": None, "pid": None,
                  "assigned": None, "idempotency_key": key}
        write_json_atomic(directory / "status.json", status)
        return status, True

    def _existing(self, job_id: str, spec: JobSpec,
                  key: Optional[str]) -> Dict[str, Any]:
        """Resolve an idempotent re-submit against the existing job."""
        existing = None
        for _ in range(50):  # racing creator may still be writing
            existing = read_json(self.job_dir(job_id) / "spec.json")
            if existing is not None:
                break
            time.sleep(0.01)
        if existing is None:
            raise ServiceError(
                f"job {job_id!r} exists but its spec is unreadable",
                status=409)
        if (json.dumps(existing, sort_keys=True)
                != spec.canonical()):
            raise ServiceError(
                f"idempotency key {key!r} already used by a "
                "different spec", status=409)
        return self.status(job_id)

    # -- observation ---------------------------------------------------
    def load_spec(self, job_id: str) -> JobSpec:
        raw = read_json(self._require(job_id) / "spec.json")
        if not isinstance(raw, dict):
            raise JobNotFound(f"job {job_id!r} spec unreadable")
        return JobSpec(kind=raw["kind"], params=raw["params"],
                       chunk_size=int(raw["chunk_size"]))

    def status(self, job_id: str) -> Dict[str, Any]:
        directory = self._require(job_id)
        raw = None
        for _ in range(3):  # tolerate a concurrent atomic rewrite
            raw = read_json(directory / "status.json")
            if isinstance(raw, dict):
                break
            time.sleep(0.005)
        if not isinstance(raw, dict):
            raw = {"job": job_id, "state": "pending",
                   "chunks_done": 0, "chunks_total": None}
        # Derived live, not stored: the marker file is the truth and
        # status.json writers must not race over it.
        raw["cancel_requested"] = (directory / "cancel").exists()
        return raw

    def result(self, job_id: str) -> Optional[Any]:
        """The final result, or ``None`` while the job is running."""
        self._require(job_id)
        raw = read_json(self.job_dir(job_id) / "result.json")
        if isinstance(raw, dict):
            return raw.get("result")
        return None

    def list_jobs(self) -> List[Dict[str, Any]]:
        statuses = []
        for directory in sorted(self.root.iterdir()):
            if (directory / "spec.json").is_file():
                try:
                    statuses.append(self.status(directory.name))
                except JobNotFound:  # pragma: no cover - raced GC
                    continue
        return statuses

    # -- mutation ------------------------------------------------------
    def write_status(self, job_id: str, **fields: Any) -> Dict[str, Any]:
        """Merge ``fields`` into status.json atomically."""
        status = self.status(job_id)
        status.update(fields)
        status["updated_unix"] = self.clock()
        write_json_atomic(self.job_dir(job_id) / "status.json",
                          status)
        return status

    def write_result(self, job_id: str, result: Any) -> None:
        write_json_atomic(self.job_dir(job_id) / "result.json",
                          {"job": job_id, "result": result})

    def write_error(self, job_id: str, message: str) -> None:
        write_json_atomic(self.job_dir(job_id) / "error.json",
                          {"job": job_id, "error": message})

    # -- cancellation --------------------------------------------------
    def cancel_requested(self, job_id: str) -> bool:
        return (self.job_dir(job_id) / "cancel").exists()

    def request_cancel(self, job_id: str) -> Dict[str, Any]:
        """Mark the job for cooperative cancellation.

        A pending (unclaimed) job is finalised immediately; a running
        one keeps its marker and the owning runner cancels at the
        next chunk boundary.  Terminal jobs are left untouched.
        """
        directory = self._require(job_id)
        status = self.status(job_id)
        if status.get("state") in TERMINAL_STATES:
            return status
        (directory / "cancel").touch()
        claim = self.claim(job_id)
        if claim is not None:
            try:
                status = self.status(job_id)
                if status.get("state") not in TERMINAL_STATES:
                    status = self.write_status(
                        job_id, state="cancelled")
            finally:
                claim.release()
        return self.status(job_id)

    # -- ownership -----------------------------------------------------
    def claim(self, job_id: str) -> Optional[JobClaim]:
        """Try to take exclusive ownership; ``None`` if held."""
        directory = self._require(job_id)
        if fcntl is not None:
            handle = open(directory / "lock", "a+")
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                return None
            return JobClaim(self, job_id, handle)
        return self._claim_pidfile(directory, job_id)

    def _claim_pidfile(self, directory: Path, job_id: str
                       ) -> Optional[JobClaim]:  # pragma: no cover
        """Best-effort O_EXCL pid-file claim (no-fcntl platforms)."""
        from ..service.routing import pid_alive
        path = directory / "lock.pid"
        for _ in range(2):
            try:
                handle = os.open(path,
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                raw = read_json(path)
                if isinstance(raw, int) and pid_alive(raw):
                    return None
                try:
                    path.unlink()
                except OSError:
                    return None
                continue
            with os.fdopen(handle, "w") as stream:
                stream.write(str(os.getpid()))
            return JobClaim(self, job_id, object())
        return None

    def runnable_jobs(self, worker_id: Optional[int] = None
                      ) -> List[str]:
        """Job ids a manager should try to claim, preferred first.

        Pending jobs plus *orphans*: jobs whose status says running
        but whose recorded owner pid is dead.  Jobs assigned (by the
        supervisor's orphan reassignment) to ``worker_id`` sort
        first, then unassigned work, then everything else — any
        worker may adopt any runnable job, assignment is only a
        preference that spreads resumes across the fleet.
        """
        from ..service.routing import pid_alive
        ranked: List[Tuple[int, float, str]] = []
        for status in self.list_jobs():
            state = status.get("state")
            job_id = status.get("job")
            if not job_id:
                continue
            if state == "running":
                pid = status.get("pid")
                if isinstance(pid, int) and pid_alive(pid):
                    continue  # healthy owner
            elif state != "pending":
                continue
            assigned = status.get("assigned")
            if worker_id is not None and assigned == worker_id:
                rank = 0
            elif assigned is None:
                rank = 1
            else:
                rank = 2
            ranked.append((rank,
                           float(status.get("created_unix") or 0.0),
                           job_id))
        return [job_id for _, _, job_id in sorted(ranked)]

    def reassign_orphans(self, live_workers: Dict[int, Any]) -> int:
        """Point dead-owner jobs at live workers (supervisor duty).

        For every running job whose owner pid is dead, pick the
        rendezvous-preferred live worker and record it in
        ``assigned`` so that worker's manager adopts it first.
        Returns the number of jobs reassigned.
        """
        from ..service.routing import pid_alive, preferred_worker
        if not live_workers:
            return 0
        moved = 0
        for status in self.list_jobs():
            if status.get("state") != "running":
                continue
            pid = status.get("pid")
            if isinstance(pid, int) and pid_alive(pid):
                continue
            job_id = status["job"]
            target = preferred_worker(job_id, live_workers.keys())
            if target is None or status.get("assigned") == target:
                continue
            self.write_status(job_id, assigned=target,
                              orphaned=True)
            moved += 1
        return moved

    # -- garbage collection --------------------------------------------
    def gc(self, ttl: float = DEFAULT_TTL) -> int:
        """Delete terminal jobs idle for more than ``ttl`` seconds."""
        now = self.clock()
        removed = 0
        for status in self.list_jobs():
            if status.get("state") not in TERMINAL_STATES:
                continue
            updated = float(status.get("updated_unix") or 0.0)
            if now - updated < ttl:
                continue
            shutil.rmtree(self.job_dir(status["job"]),
                          ignore_errors=True)
            removed += 1
        return removed
