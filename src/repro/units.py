"""SI quantity parsing and formatting.

The DRAM description language of the paper expresses quantities with unit
suffixes (``165nm``, ``1.6Gbps``, ``800MHz``, ``3396um``).  Internally the
library works in plain SI floats (metres, farads, volts, hertz, seconds,
amperes, watts) so the physics code never multiplies by unit factors.  This
module is the single place where strings and floats meet.

Examples
--------
>>> parse_quantity("165nm")
1.65e-07
>>> parse_quantity("1.6Gbps")
1600000000.0
>>> format_quantity(1.65e-07, "m")
'165nm'
"""

from __future__ import annotations

import math
import re
from typing import Dict, Optional, Tuple

from .errors import UnitError

#: Multiplier for each SI prefix accepted in the description language.
SI_PREFIXES: Dict[str, float] = {
    "y": 1e-24,
    "z": 1e-21,
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
}

#: Base units understood by :func:`parse_quantity`.  ``bps`` (bits per
#: second) is treated as a unit of frequency-like rate; ``F/m`` appears in
#: specific wire capacitances.
BASE_UNITS = (
    "bps",
    "F/m",
    "F/um",
    "Hz",
    "m2",
    "um2",
    "mm2",
    "F",
    "V",
    "A",
    "W",
    "s",
    "m",
    "b",
    "B",
    "J",
    "%",
)

_QUANTITY_RE = re.compile(
    r"^\s*(?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*"
    r"(?P<suffix>[a-zA-Zµ%/0-9]*)\s*$"
)

# Prefixes ordered for greedy longest-unit matching.
_UNITS_BY_LENGTH = sorted(BASE_UNITS, key=len, reverse=True)


def _split_suffix(suffix: str) -> Tuple[float, str]:
    """Split a suffix like ``"Gbps"`` into (multiplier, base unit)."""
    if not suffix:
        return 1.0, ""
    for unit in _UNITS_BY_LENGTH:
        if suffix == unit:
            return 1.0, unit
        if suffix.endswith(unit):
            prefix = suffix[: -len(unit)]
            if prefix in SI_PREFIXES:
                return SI_PREFIXES[prefix], unit
    raise UnitError(f"unknown unit suffix {suffix!r}")


def parse_quantity(text: str, expect_unit: Optional[str] = None) -> float:
    """Parse ``text`` into an SI float.

    Parameters
    ----------
    text:
        A number with optional SI-prefixed unit, e.g. ``"110nm"``,
        ``"0.2fF/um"``, ``"800MHz"``, ``"25%"``.
    expect_unit:
        If given, the parsed base unit must match (an empty suffix is always
        accepted so plain numbers pass any expectation).

    Returns
    -------
    float
        The value in SI base units.  Percentages return the fraction
        (``"25%"`` → ``0.25``).  ``F/um`` is converted to F/m.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _QUANTITY_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse quantity {text!r}")
    value = float(match.group("number"))
    multiplier, unit = _split_suffix(match.group("suffix"))
    value *= multiplier
    if unit == "%":
        value /= 100.0
    elif unit == "F/um":
        value *= 1e6  # per-micron to per-metre
    elif unit == "um2":
        value *= 1e-12
    elif unit == "mm2":
        value *= 1e-6
    if expect_unit and unit and unit != expect_unit:
        # F/um is canonicalised to F/m above; accept that equivalence.
        if not (expect_unit == "F/m" and unit == "F/um"):
            raise UnitError(
                f"expected a quantity in {expect_unit!r}, got {text!r}"
            )
    return value


def parse_ratio(text: str) -> float:
    """Parse a ratio written either as ``"1:8"`` or as a plain number.

    ``"1:8"`` returns ``8.0`` (the de-serialisation factor); ``"8"`` also
    returns ``8.0``.
    """
    if isinstance(text, (int, float)):
        return float(text)
    if ":" in text:
        left, _, right = text.partition(":")
        try:
            numerator = float(left)
            denominator = float(right)
        except ValueError as exc:
            raise UnitError(f"cannot parse ratio {text!r}") from exc
        if numerator <= 0 or denominator <= 0:
            raise UnitError(f"ratio terms must be positive: {text!r}")
        return denominator / numerator
    return parse_quantity(text)


_FORMAT_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def format_quantity(value: float, unit: str, digits: int = 4) -> str:
    """Format an SI float with the most natural prefix.

    >>> format_quantity(1.65e-07, 'm')
    '165nm'
    >>> format_quantity(0.0786, 'A')
    '78.6mA'
    """
    if value == 0:
        return f"0{unit}"
    if not math.isfinite(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for factor, prefix in _FORMAT_PREFIXES:
        if magnitude >= factor * 0.9995:
            scaled = value / factor
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    factor, prefix = _FORMAT_PREFIXES[-1]
    return f"{value / factor:.{digits}g}{prefix}{unit}"


def pj_per_bit(power_watts: float, bits_per_second: float) -> float:
    """Convert power at a given data rate into energy per bit in picojoule.

    The paper reports energy efficiency in mW per Gb/s which is numerically
    identical to pJ/bit; this helper keeps that conversion in one place.
    """
    if bits_per_second <= 0:
        raise UnitError("data rate must be positive to compute energy/bit")
    return power_watts / bits_per_second * 1e12


def milli(value: float) -> float:
    """Return ``value`` expressed in milli-units (A → mA, W → mW)."""
    return value * 1e3
