"""repro — a flexible, bottom-up DRAM power model.

Reproduction of T. Vogelsang, *Understanding the Energy Consumption of
Dynamic Random Access Memories*, MICRO-43, 2010.

Quickstart
----------
>>> from repro import build_device, DramPowerModel
>>> device = build_device(node_nm=55, interface="DDR3", density_bits=2**31,
...                       io_width=16)
>>> model = DramPowerModel(device)
>>> power = model.pattern_power()

The main entry points:

* :func:`repro.devices.build_device` — construct a calibrated device
  description for any node/interface/density/width;
* :class:`repro.core.DramPowerModel` — evaluate energies, currents and
  pattern power;
* :func:`repro.dsl.load` / :func:`repro.dsl.loads` — parse the paper's
  description language;
* :mod:`repro.analysis` — datasheet verification, sensitivity Pareto and
  generation trends (Figures 8-13, Table III);
* :mod:`repro.schemes` — the Section V power-reduction proposals.
"""

from .description import (
    Command,
    DramDescription,
    LogicBlock,
    Pattern,
    PhysicalFloorplan,
    Rail,
    SignalingFloorplan,
    Specification,
    TechnologyParameters,
    TimingParameters,
    VoltageSet,
)
from .core import (
    ChargeEvent,
    Component,
    DramPowerModel,
    IddMeasure,
    PatternPower,
    standard_idd_suite,
)
from .devices import build_device
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Command",
    "DramDescription",
    "LogicBlock",
    "Pattern",
    "PhysicalFloorplan",
    "Rail",
    "SignalingFloorplan",
    "Specification",
    "TechnologyParameters",
    "TimingParameters",
    "VoltageSet",
    "ChargeEvent",
    "Component",
    "DramPowerModel",
    "IddMeasure",
    "PatternPower",
    "standard_idd_suite",
    "build_device",
    "ReproError",
    "__version__",
]
