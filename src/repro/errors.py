"""Exception hierarchy for the repro DRAM power model.

All library errors derive from :class:`ReproError` so callers can catch one
type.  Parsing errors carry the offending line number, validation errors
carry the parameter path that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class UnitError(ReproError, ValueError):
    """A quantity string could not be parsed or formatted."""


class DslError(ReproError):
    """Base class of DRAM description language errors."""

    def __init__(self, message: str, line: int = 0, source: str = "<input>"):
        self.line = line
        self.source = source
        if line:
            message = f"{source}:{line}: {message}"
        super().__init__(message)


class DslSyntaxError(DslError):
    """The input file violates the description-language grammar."""


class DslValidationError(DslError):
    """The input parsed but describes an inconsistent DRAM."""


class DescriptionError(ReproError, ValueError):
    """A DRAM description object is internally inconsistent.

    Raised by the dataclass validators in :mod:`repro.description` — for
    example a negative capacitance, a page smaller than one access, or a
    floorplan whose signal segments reference blocks that do not exist.
    """


class FloorplanError(DescriptionError):
    """The physical or signaling floorplan is geometrically impossible."""


class ModelError(ReproError):
    """The power-model pipeline was asked to do something impossible.

    For example computing a read current for a device whose pattern never
    issues a read, or requesting an IDD measure the model does not define.
    """


class TechnologyError(ReproError, KeyError):
    """An unknown technology node or scaling parameter was requested."""


class SchemeError(ReproError):
    """A power-reduction scheme cannot be applied to the given device."""


class ServiceError(ReproError):
    """An evaluation-service request failed.

    Raised by :mod:`repro.service` for malformed requests and by
    :mod:`repro.client` for transport or server-side failures.
    ``status`` carries the HTTP status code the failure maps to
    (``0`` when no HTTP response was received at all);
    ``retry_after`` is the server's ``Retry-After`` hint in seconds
    when the response carried one (load-shedding replies do).
    """

    def __init__(self, message: str, status: int = 400,
                 retry_after: "float | None" = None):
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)


class JobError(ReproError):
    """A durable job could not be submitted, executed, or resumed.

    Raised by :mod:`repro.jobs` for malformed specs, idempotency-key
    conflicts, and by :class:`repro.client.JobHandle` when a watched
    job terminates in the ``failed`` state.
    """


class JobNotFound(ServiceError):
    """The referenced job id does not exist (HTTP 404).

    Distinguished from transient transport/shedding errors so a
    resume-aware client can fail fast on a genuinely unknown id while
    tolerating 429/503/connection blips during polling.
    """

    def __init__(self, message: str):
        super().__init__(message, status=404)


class CircuitOpenError(ServiceError):
    """The client-side circuit breaker is open: the request was not
    attempted at all.

    Raised by :class:`repro.client.ServiceClient` after too many
    consecutive transport/server failures; the breaker half-opens
    after its cooldown and lets one probe through.
    """

    def __init__(self, message: str):
        super().__init__(message, status=0)
