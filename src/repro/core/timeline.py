"""Power-over-time profiles of command traces.

Bins a trace's energy into fixed time windows so the instantaneous power
profile can be inspected or plotted: each command's energy is spread over
its natural duration (row commands over tRCD, column commands over the
burst) and the background runs continuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..description import Command
from ..errors import ModelError
from .model import DramPowerModel
from .trace import TraceCommand


@dataclass(frozen=True)
class PowerProfile:
    """A binned power-vs-time series."""

    bin_width: float
    """Width of one bin (s)."""
    power: Tuple[float, ...]
    """Average power in each bin (W)."""

    @property
    def duration(self) -> float:
        """Profile duration (s)."""
        return self.bin_width * len(self.power)

    @property
    def peak(self) -> float:
        """Highest binned power (W)."""
        return max(self.power) if self.power else 0.0

    @property
    def average(self) -> float:
        """Mean power across the profile (W)."""
        if not self.power:
            return 0.0
        return sum(self.power) / len(self.power)

    @property
    def crest_factor(self) -> float:
        """Peak over average — the burstiness figure."""
        average = self.average
        if average == 0:
            return 0.0
        return self.peak / average

    def times(self) -> List[float]:
        """Bin-centre timestamps (s)."""
        return [(index + 0.5) * self.bin_width
                for index in range(len(self.power))]


def _spread_duration(model: DramPowerModel, command: Command) -> float:
    if command in (Command.ACT, Command.PRE):
        return model.device.timing.trcd
    spec = model.device.spec
    return spec.burst_length / spec.datarate


def power_profile(model: DramPowerModel,
                  commands: Iterable[TraceCommand],
                  bin_width: float = 5e-9) -> PowerProfile:
    """Bin a trace's power over time.

    The trace is not legality-checked here — use
    :func:`repro.core.trace.evaluate_trace` for that; this function only
    accounts energy into bins.
    """
    if bin_width <= 0:
        raise ModelError("bin width must be positive")
    command_list: List[TraceCommand] = sorted(commands,
                                              key=lambda c: c.time)
    if not command_list:
        raise ModelError("cannot profile an empty trace")
    end = max(entry.time + _spread_duration(model, entry.command)
              for entry in command_list
              if entry.command is not Command.NOP)
    bins = max(1, int(end / bin_width) + 1)
    energy = [0.0] * bins
    for entry in command_list:
        if entry.command is Command.NOP:
            continue
        total = model.operation_energy(entry.command)
        if total == 0.0:
            continue
        duration = _spread_duration(model, entry.command)
        start = entry.time
        stop = entry.time + duration
        first = int(start / bin_width)
        last = min(bins - 1, int(stop / bin_width))
        for index in range(first, last + 1):
            bin_start = index * bin_width
            bin_stop = bin_start + bin_width
            overlap = min(stop, bin_stop) - max(start, bin_start)
            if overlap > 0:
                energy[index] += total * overlap / duration
    background = model.background_power
    power = tuple(background + bin_energy / bin_width
                  for bin_energy in energy)
    return PowerProfile(bin_width=bin_width, power=power)
