"""Datasheet IDD current definitions (paper Section IV.A).

The verification of Figures 8 and 9 compares model currents against
datasheet IDD values.  Each measure is a standardised command loop:

* **IDD0**  — one activate + one precharge per row cycle time (row power);
* **IDD2N** — precharge standby, clock running, no commands;
* **IDD3N** — active standby (modelled equal to IDD2N: the model carries
  no bank-state dependent DC current);
* **IDD4R** — gapless read bursts;
* **IDD4W** — gapless write bursts;
* **IDD5B** — distributed auto-refresh (row cycles averaged over tREFI);
* **IDD7**  — interleaved activates on all banks plus gapless reads, the
  "random access at full bandwidth" measure.

The Figure 10 sensitivity pattern ("Idd7 but half of the read operations
replaced by write operations") is :func:`idd7_mixed_counts`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Tuple

from ..description import Command
from .model import DramPowerModel, PatternPower


class IddMeasure(str, Enum):
    """Standard datasheet current measures."""

    IDD0 = "idd0"
    IDD1 = "idd1"
    IDD2N = "idd2n"
    IDD2P = "idd2p"
    IDD3N = "idd3n"
    IDD3P = "idd3p"
    IDD4R = "idd4r"
    IDD4W = "idd4w"
    IDD5B = "idd5b"
    IDD6 = "idd6"
    IDD7 = "idd7"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Fraction of the dynamic background (clock tree, control, DLL) still
#: toggling in each low-power state.  Power-down gates the input buffers
#: and freezes most of the clock tree; self-refresh additionally stops
#: the external clock entirely.  These ratios are typical of the
#: datasheet IDD2P/IDD3P/IDD6-to-IDD2N proportions of the DDR2/DDR3 era
#: and are modeling assumptions, not description parameters.
POWER_DOWN_PRECHARGE_FRACTION = 0.15
POWER_DOWN_ACTIVE_FRACTION = 0.25
SELF_REFRESH_FRACTION = 0.08


@dataclass(frozen=True)
class IddResult:
    """One measured IDD point."""

    measure: IddMeasure
    current: float
    """Average Vdd current (A)."""
    power: PatternPower
    """Full pattern-power result behind the current."""

    @property
    def milliamps(self) -> float:
        """Current in mA — the datasheet unit."""
        return self.current * 1e3


def _result(measure: IddMeasure, power: PatternPower) -> IddResult:
    return IddResult(measure=measure, current=power.current, power=power)


def idd0(model: DramPowerModel) -> IddResult:
    """Row-cycle current: one ACT + one PRE per tRC."""
    timing = model.device.timing
    power = model.counts_power(
        {Command.ACT: 1.0, Command.PRE: 1.0}, timing.trc, label="IDD0"
    )
    return _result(IddMeasure.IDD0, power)


def idd1(model: DramPowerModel) -> IddResult:
    """Row cycling with one read burst: ACT + RD + PRE per tRC."""
    timing = model.device.timing
    power = model.counts_power(
        {Command.ACT: 1.0, Command.RD: 1.0, Command.PRE: 1.0},
        timing.trc, label="IDD1",
    )
    return _result(IddMeasure.IDD1, power)


def idd2n(model: DramPowerModel) -> IddResult:
    """Precharge standby current: background only."""
    duration = 1.0 / model.device.spec.f_ctrlclock
    power = model.counts_power({}, duration, label="IDD2N")
    return _result(IddMeasure.IDD2N, power)


def idd3n(model: DramPowerModel) -> IddResult:
    """Active standby current (modelled equal to IDD2N)."""
    result = idd2n(model)
    return IddResult(measure=IddMeasure.IDD3N, current=result.current,
                     power=result.power)


def _gated_background(model: DramPowerModel, fraction: float):
    """Background breakdown with the dynamic part scaled (W).

    The constant current sink (references, regulators) keeps flowing at
    full strength; everything clock-driven is scaled by ``fraction``.
    """
    from .events import Component

    background = model.energies.background_power
    constant_power = (model.device.constant_current
                      * model.device.voltages.vdd)
    scaled = background.scaled(fraction)
    delta = constant_power - scaled.get(Component.POWER)
    if delta > 0:
        scaled.add(Component.POWER, delta)
    return scaled


def _state_result(model: DramPowerModel, measure: IddMeasure,
                  breakdown, duration: float,
                  operation_power) -> IddResult:
    power_watts = breakdown.total
    power = PatternPower(
        device_name=model.device.name,
        pattern=measure.value.upper(),
        duration=duration,
        power=power_watts,
        current=power_watts / model.device.voltages.vdd,
        breakdown=breakdown,
        operation_power=operation_power,
        data_bits_per_second=0.0,
    )
    return _result(measure, power)


def idd2p(model: DramPowerModel) -> IddResult:
    """Precharge power-down current (clock gated, inputs disabled)."""
    breakdown = _gated_background(model, POWER_DOWN_PRECHARGE_FRACTION)
    return _state_result(
        model, IddMeasure.IDD2P, breakdown,
        1.0 / model.device.spec.f_ctrlclock,
        {"background": breakdown.total},
    )


def idd3p(model: DramPowerModel) -> IddResult:
    """Active power-down current (a bank open, clock gated)."""
    breakdown = _gated_background(model, POWER_DOWN_ACTIVE_FRACTION)
    return _state_result(
        model, IddMeasure.IDD3P, breakdown,
        1.0 / model.device.spec.f_ctrlclock,
        {"background": breakdown.total},
    )


def idd6(model: DramPowerModel) -> IddResult:
    """Self-refresh current: gated background plus internal refresh."""
    timing = model.device.timing
    breakdown = _gated_background(model, SELF_REFRESH_FRACTION)
    standby = breakdown.total
    rows = float(timing.rows_per_refresh)
    refresh = (model.energies.operation_energy(Command.ACT)
               + model.energies.operation_energy(Command.PRE)) \
        .scaled(rows / timing.tref_interval)
    breakdown = breakdown + refresh
    return _state_result(
        model, IddMeasure.IDD6, breakdown, timing.tref_interval,
        {"background": standby, "refresh": refresh.total},
    )


def idd4r(model: DramPowerModel) -> IddResult:
    """Gapless read current: one read per burst duration."""
    spec = model.device.spec
    duration = spec.burst_length / spec.datarate
    power = model.counts_power({Command.RD: 1.0}, duration, label="IDD4R")
    return _result(IddMeasure.IDD4R, power)


def idd4w(model: DramPowerModel) -> IddResult:
    """Gapless write current: one write per burst duration."""
    spec = model.device.spec
    duration = spec.burst_length / spec.datarate
    power = model.counts_power({Command.WR: 1.0}, duration, label="IDD4W")
    return _result(IddMeasure.IDD4W, power)


def idd5b(model: DramPowerModel) -> IddResult:
    """Distributed auto-refresh current averaged over tREFI."""
    timing = model.device.timing
    rows = float(timing.rows_per_refresh)
    power = model.counts_power(
        {Command.ACT: rows, Command.PRE: rows},
        timing.tref_interval,
        label="IDD5B",
    )
    return _result(IddMeasure.IDD5B, power)


def idd7_counts(model: DramPowerModel,
                write_fraction: float = 0.0
                ) -> Tuple[Dict[Command, float], float]:
    """Command counts and window of the IDD7 loop.

    All banks are activated once per window (limited by tRC, tRRD and
    tFAW) while the data bus runs gapless column accesses;
    ``write_fraction`` of the accesses are writes (0 for plain IDD7, 0.5
    for the Figure 10 sensitivity pattern).
    """
    device = model.device
    spec = device.spec
    timing = device.timing
    banks = spec.banks
    window = max(timing.trc, banks * timing.trrd, banks * timing.tfaw / 4.0)
    accesses = math.floor(window * spec.core_access_rate)
    reads = accesses * (1.0 - write_fraction)
    writes = accesses * write_fraction
    counts: Dict[Command, float] = {
        Command.ACT: float(banks),
        Command.PRE: float(banks),
        Command.RD: reads,
        Command.WR: writes,
    }
    return counts, window


def idd7(model: DramPowerModel) -> IddResult:
    """Interleaved activate + gapless read current."""
    counts, window = idd7_counts(model)
    power = model.counts_power(counts, window, label="IDD7")
    return _result(IddMeasure.IDD7, power)


def idd7_mixed(model: DramPowerModel) -> PatternPower:
    """The Figure 10 pattern: IDD7 with half the reads replaced by writes."""
    counts, window = idd7_counts(model, write_fraction=0.5)
    return model.counts_power(counts, window, label="IDD7-mixed")


_DISPATCH = {
    IddMeasure.IDD0: idd0,
    IddMeasure.IDD1: idd1,
    IddMeasure.IDD2N: idd2n,
    IddMeasure.IDD2P: idd2p,
    IddMeasure.IDD3N: idd3n,
    IddMeasure.IDD3P: idd3p,
    IddMeasure.IDD4R: idd4r,
    IddMeasure.IDD4W: idd4w,
    IddMeasure.IDD5B: idd5b,
    IddMeasure.IDD6: idd6,
    IddMeasure.IDD7: idd7,
}


def measure(model: DramPowerModel, which: IddMeasure) -> IddResult:
    """Compute one IDD measure."""
    return _DISPATCH[IddMeasure(which)](model)


def standard_idd_suite(model: DramPowerModel
                       ) -> Mapping[IddMeasure, IddResult]:
    """All standard IDD measures of one device."""
    return {which: fn(model) for which, fn in _DISPATCH.items()}
