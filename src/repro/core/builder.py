"""Assembles the full charge-event list of a device.

This is the "calculate wire and device capacitances / determine charge"
stage of Figure 4, now split along the paper's own pipeline boundary:

* :func:`build_skeletons` — the **capacitance extraction** stage: every
  circuit model contributes voltage-free
  :class:`~repro.core.events.EventSkeleton` objects, computed against
  the resolved floorplan geometry;
* :func:`resolve_events` — the **charge determination** stage: the
  skeletons are resolved against the device's voltage set into finished
  :class:`~repro.core.events.ChargeEvent` objects.

Keeping the two stages separate lets the evaluation engine reuse the
(expensive) capacitance extraction across device variants that only
perturb voltages; :func:`build_events` composes both for callers that
want the historical single-step behaviour.  Both paths are bit-for-bit
identical: skeleton resolution applies exactly the swing arithmetic the
one-step builder used.
"""

from __future__ import annotations

from typing import List, Tuple

from ..description import DramDescription, VoltageSet
from ..floorplan import FloorplanGeometry
from .events import ChargeEvent, EventSkeleton, resolve_skeletons


def build_skeletons(device: DramDescription,
                    geometry: FloorplanGeometry = None
                    ) -> Tuple[EventSkeleton, ...]:
    """All voltage-free event skeletons of ``device``.

    The concatenation order (array, wordline, column, signaling, logic)
    is part of the model contract — downstream per-operation folds and
    event reports preserve it.
    """
    from ..circuits import array, column, logic, signaling, wordline

    if geometry is None:
        geometry = FloorplanGeometry(device)
    produced: List[EventSkeleton] = []
    produced.extend(array.skeletons(device, geometry))
    produced.extend(wordline.skeletons(device, geometry))
    produced.extend(column.skeletons(device, geometry))
    produced.extend(signaling.skeletons(device, geometry))
    produced.extend(logic.skeletons(device, geometry))
    return tuple(produced)


def resolve_events(skeletons: Tuple[EventSkeleton, ...],
                   voltages: VoltageSet) -> Tuple[ChargeEvent, ...]:
    """Resolve skeleton swings against ``voltages`` (order-preserving)."""
    return resolve_skeletons(skeletons, voltages)


def build_events(device: DramDescription,
                 geometry: FloorplanGeometry = None
                 ) -> Tuple[ChargeEvent, ...]:
    """All charge events of ``device`` against its floorplan geometry."""
    return resolve_events(build_skeletons(device, geometry),
                          device.voltages)
