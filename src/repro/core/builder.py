"""Assembles the full charge-event list of a device.

This is the "calculate wire and device capacitances / determine charge"
stage of Figure 4: every circuit model contributes its events, computed
against the resolved floorplan geometry.
"""

from __future__ import annotations

from typing import List, Tuple

from ..description import DramDescription
from ..floorplan import FloorplanGeometry
from .events import ChargeEvent


def build_events(device: DramDescription,
                 geometry: FloorplanGeometry = None
                 ) -> Tuple[ChargeEvent, ...]:
    """All charge events of ``device`` against its floorplan geometry."""
    from ..circuits import array, column, logic, signaling, wordline

    if geometry is None:
        geometry = FloorplanGeometry(device)
    produced: List[ChargeEvent] = []
    produced.extend(array.events(device, geometry))
    produced.extend(wordline.events(device, geometry))
    produced.extend(column.events(device, geometry))
    produced.extend(signaling.events(device, geometry))
    produced.extend(logic.events(device, geometry))
    return tuple(produced)
