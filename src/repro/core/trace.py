"""Timed command-trace evaluation.

The paper's pattern mechanism evaluates a steady-state loop; system
studies (the §V references: memory-controller power management, mini-rank
scheduling…) need to price an arbitrary *trace* of timed commands.  This
module provides that: a bank-state machine with full timing-legality
checking (tRC, tRRD, tFAW, tRCD, tRAS, tRP) and energy integration over
the trace.

Energy accounting is identical to the pattern engine: each command
occurrence costs its per-operation energy, the background runs for the
trace duration, and refresh commands cost ``rows_per_refresh`` row
cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..description import Command
from ..errors import ModelError
from .model import DramPowerModel
from .operations import EnergyBreakdown


#: Tolerance for timing comparisons (s) — absorbs float rounding when
#: commands sit exactly on a timing boundary.
TIMING_EPSILON = 1e-12


class TraceError(ModelError):
    """A trace is illegal: protocol or timing violation."""

    def __init__(self, message: str, time: float = 0.0, index: int = 0):
        self.time = time
        self.index = index
        super().__init__(f"command {index} @ {time * 1e9:.2f} ns: "
                         f"{message}")


@dataclass(frozen=True)
class TraceCommand:
    """One timed command of a trace."""

    time: float
    """Issue time (s), non-decreasing along the trace."""
    command: Command
    """Command mnemonic (ACT / PRE / RD / WR; NOP is ignored)."""
    bank: int = 0
    """Target bank."""
    row: int = 0
    """Target row (ACT) — used for row-hit bookkeeping only."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "command", Command(self.command))
        if self.time < 0:
            raise ModelError("command time must not be negative")
        if self.bank < 0:
            raise ModelError("bank must not be negative")


@dataclass
class _BankState:
    """Protocol state of one bank during trace replay."""

    active_row: Optional[int] = None
    last_act: float = float("-inf")
    last_pre: float = float("-inf")
    last_read: float = float("-inf")
    write_data_end: float = float("-inf")

    @property
    def is_active(self) -> bool:
        return self.active_row is not None


@dataclass(frozen=True)
class TraceResult:
    """Energy and statistics of one evaluated trace."""

    device_name: str
    vdd: float
    """External supply voltage of the device (V)."""
    duration: float
    """Trace duration (s): last command time + one row cycle."""
    counts: Dict[Command, int]
    """Commands executed, by type."""
    energy: float
    """Total energy drawn from Vdd (J), including background."""
    breakdown: EnergyBreakdown
    """Energy by component category (J)."""
    data_bits: float
    """Bits transferred by the reads and writes of the trace."""
    row_hits: int
    """Column accesses that reused the already-open row."""
    row_misses: int
    """Activates issued (each opens a row for subsequent accesses)."""

    @property
    def average_power(self) -> float:
        """Mean power over the trace (W)."""
        return self.energy / self.duration

    @property
    def average_current(self) -> float:
        """Mean Vdd current over the trace (A)."""
        return self.average_power / self.vdd

    @property
    def energy_per_bit(self) -> float:
        """Energy per transferred bit (J); inf for a data-free trace."""
        if self.data_bits <= 0:
            return float("inf")
        return self.energy / self.data_bits

    @property
    def row_hit_rate(self) -> float:
        """Fraction of column accesses hitting the open row."""
        total = self.row_hits + self.row_misses
        if total == 0:
            return 0.0
        return self.row_hits / total


def evaluate_trace(model: DramPowerModel,
                   commands: Iterable[TraceCommand],
                   strict: bool = True) -> TraceResult:
    """Replay a trace against the model and integrate its energy.

    With ``strict`` (default) every protocol and timing violation raises
    :class:`TraceError`; with ``strict=False`` the trace is priced as
    given (useful for approximate traces from external simulators).
    """
    device = model.device
    timing = device.timing
    banks: Dict[int, _BankState] = {}
    act_window: deque = deque()
    counts: Dict[Command, int] = {command: 0 for command in Command}
    last_time = 0.0
    previous = float("-inf")
    row_hits = 0
    n_banks = device.spec.banks

    command_list: List[TraceCommand] = list(commands)
    for index, entry in enumerate(command_list):
        if entry.time < previous:
            raise TraceError("trace times must be non-decreasing",
                             entry.time, index)
        previous = entry.time
        last_time = max(last_time, entry.time)
        command = entry.command
        if command is Command.NOP:
            continue
        if strict and entry.bank >= n_banks:
            raise TraceError(
                f"bank {entry.bank} outside 0..{n_banks - 1}",
                entry.time, index,
            )
        state = banks.setdefault(entry.bank, _BankState())
        if command is Command.ACT:
            group = device.spec.bank_group_of(entry.bank) \
                if entry.bank < n_banks else 0
            _check_activate(entry, index, state, act_window, timing,
                            strict, group)
            state.active_row = entry.row
            state.last_act = entry.time
            act_window.append((entry.time, group))
            while act_window and act_window[0][0] < entry.time \
                    - timing.tfaw:
                act_window.popleft()
        elif command is Command.PRE:
            if strict and not state.is_active:
                raise TraceError(f"precharge on idle bank {entry.bank}",
                                 entry.time, index)
            if strict and entry.time < state.last_act + timing.tras \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRAS violation on bank {entry.bank}",
                    entry.time, index,
                )
            if strict and entry.time < state.last_read + timing.trtp \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRTP violation on bank {entry.bank}",
                    entry.time, index,
                )
            if strict and entry.time < state.write_data_end \
                    + timing.twr - TIMING_EPSILON:
                raise TraceError(
                    f"tWR violation on bank {entry.bank}",
                    entry.time, index,
                )
            state.active_row = None
            state.last_pre = entry.time
        elif command in (Command.RD, Command.WR):
            if strict and not state.is_active:
                raise TraceError(
                    f"column access on idle bank {entry.bank}",
                    entry.time, index,
                )
            if strict and entry.time < state.last_act + timing.trcd \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRCD violation on bank {entry.bank}",
                    entry.time, index,
                )
            row_hits += 1
            if command is Command.RD:
                state.last_read = entry.time
            else:
                burst = (device.spec.burst_length
                         / device.spec.datarate)
                state.write_data_end = entry.time + burst
        counts[command] += 1

    # Each activate serves its first access, so hits exclude one access
    # per activate.
    row_misses = counts[Command.ACT]
    row_hits = max(0, row_hits - row_misses)

    duration = last_time + timing.trc
    breakdown = model.energies.background_power.scaled(duration)
    for command in (Command.ACT, Command.PRE, Command.RD, Command.WR):
        if counts[command]:
            breakdown = breakdown + model.energies.operation_energy(
                command).scaled(counts[command])
    data_bits = ((counts[Command.RD] + counts[Command.WR])
                 * device.spec.bits_per_access)
    return TraceResult(
        device_name=device.name,
        vdd=device.voltages.vdd,
        duration=duration,
        counts=counts,
        energy=breakdown.total,
        breakdown=breakdown,
        data_bits=float(data_bits),
        row_hits=row_hits,
        row_misses=row_misses,
    )


def _check_activate(entry: TraceCommand, index: int, state: _BankState,
                    act_window: Sequence, timing,
                    strict: bool, group: int) -> None:
    if not strict:
        return
    if state.is_active:
        raise TraceError(f"activate on already-active bank {entry.bank}",
                         entry.time, index)
    if entry.time < state.last_act + timing.trc - TIMING_EPSILON:
        raise TraceError(f"tRC violation on bank {entry.bank}",
                         entry.time, index)
    if entry.time < state.last_pre + timing.trp - TIMING_EPSILON:
        raise TraceError(f"tRP violation on bank {entry.bank}",
                         entry.time, index)
    recent = [t for t, _ in act_window
              if t > entry.time - timing.trrd + TIMING_EPSILON]
    if recent:
        raise TraceError("tRRD violation", entry.time, index)
    same_group = [t for t, g in act_window if g == group
                  and t > entry.time - timing.trrd_l + TIMING_EPSILON]
    if same_group:
        raise TraceError("tRRD_L violation (same bank group)",
                         entry.time, index)
    window = [t for t, _ in act_window
              if t > entry.time - timing.tfaw + TIMING_EPSILON]
    if len(window) >= 4:
        raise TraceError("tFAW violation", entry.time, index)


def trace_power(model: DramPowerModel,
                commands: Iterable[TraceCommand],
                strict: bool = True) -> Tuple[float, float]:
    """(average power W, average Vdd current A) of a trace."""
    result = evaluate_trace(model, commands, strict=strict)
    power = result.average_power
    return power, power / model.device.voltages.vdd
