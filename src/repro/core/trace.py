"""Timed command-trace evaluation (streaming, constant memory).

The paper's pattern mechanism evaluates a steady-state loop; system
studies (the §V references: memory-controller power management, mini-rank
scheduling…) need to price an arbitrary *trace* of timed commands.  This
module provides that: a bank-state machine with full timing-legality
checking (tRC, tRRD, tFAW, tRCD, tRAS, tRP, tRFC) and energy integration
over the trace.

Energy accounting is identical to the pattern engine: each command
occurrence costs its per-operation energy, the background runs for the
trace duration, and each :attr:`Command.REF` costs ``rows_per_refresh``
row cycles — an activate + precharge energy pair per refreshed row,
mirroring the IDD5B construction in :mod:`repro.core.idd`.

Evaluation is a single-pass fold over the command iterable:
:class:`TraceAccumulator` holds only per-bank protocol state and the
running counts, so traces of any length evaluate in bounded memory and
can be fed in chunks with :meth:`TraceAccumulator.snapshot` exposing
intermediate aggregates.  Because the final energy is computed purely
from the accumulated counts, chunked and one-shot evaluation are
bit-for-bit identical.

Strictness: with ``strict=True`` every protocol and timing violation
raises :class:`TraceError`; with ``strict=False`` the trace is priced as
given — out-of-order timestamps (common in merged external simulator
traces) are clamped to the latest time seen, and accesses to a row other
than the open one are tallied as ``row_conflicts`` instead of raising.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ..description import Command
from ..errors import ModelError
from .model import DramPowerModel
from .operations import EnergyBreakdown


#: Tolerance for timing comparisons (s) — absorbs float rounding when
#: commands sit exactly on a timing boundary.
TIMING_EPSILON = 1e-12

#: Commands priced directly from their per-operation energy, in the
#: fixed order the energy fold adds them (order is part of the
#: bit-for-bit parity contract between chunked and one-shot paths).
_PRICED_COMMANDS = (Command.ACT, Command.PRE, Command.RD, Command.WR)


class TraceError(ModelError):
    """A trace is illegal: protocol or timing violation.

    ``index`` is the zero-based position of the offending command when
    known; validation errors raised before a command joins a trace
    (e.g. from :meth:`TraceCommand.__post_init__`) carry ``index=None``
    and format without positional context.
    """

    def __init__(self, message: str, time: float = 0.0,
                 index: Optional[int] = 0):
        self.time = time
        self.index = index
        if index is None:
            super().__init__(message)
        else:
            super().__init__(f"command {index} @ {time * 1e9:.2f} ns: "
                             f"{message}")


@dataclass(frozen=True)
class TraceCommand:
    """One timed command of a trace."""

    time: float
    """Issue time (s), non-decreasing along the trace."""
    command: Command
    """Command mnemonic (ACT / PRE / RD / WR / REF; NOP is ignored)."""
    bank: int = 0
    """Target bank."""
    row: int = 0
    """Target row (ACT and column accesses) — row-hit bookkeeping."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "command", Command(self.command))
        if self.time < 0:
            raise TraceError("command time must not be negative",
                             self.time, None)
        if self.bank < 0:
            raise TraceError("bank must not be negative",
                             self.time, None)


@dataclass
class _BankState:
    """Protocol state of one bank during trace replay."""

    active_row: Optional[int] = None
    last_act: float = float("-inf")
    last_pre: float = float("-inf")
    last_ref: float = float("-inf")
    last_read: float = float("-inf")
    write_data_end: float = float("-inf")
    pending_access: bool = field(default=False)
    """True between an ACT and its first matching column access (that
    first access is the row miss the ACT paid for, not a hit)."""

    @property
    def is_active(self) -> bool:
        return self.active_row is not None


@dataclass(frozen=True)
class TraceResult:
    """Energy and statistics of one evaluated trace."""

    device_name: str
    vdd: float
    """External supply voltage of the device (V)."""
    duration: float
    """Trace duration (s): last command time + one row cycle."""
    counts: Dict[Command, int]
    """Commands executed, by type."""
    energy: float
    """Total energy drawn from Vdd (J), including background."""
    breakdown: EnergyBreakdown
    """Energy by component category (J)."""
    data_bits: float
    """Bits transferred by the reads and writes of the trace."""
    row_hits: int
    """Column accesses that reused the already-open row."""
    row_misses: int
    """Activates issued (each opens a row for subsequent accesses)."""
    row_conflicts: int = 0
    """Column accesses addressed to a row other than the open one
    (only tallied with ``strict=False``; strict replay raises)."""

    @property
    def average_power(self) -> float:
        """Mean power over the trace (W)."""
        return self.energy / self.duration

    @property
    def average_current(self) -> float:
        """Mean Vdd current over the trace (A)."""
        return self.average_power / self.vdd

    @property
    def energy_per_bit(self) -> float:
        """Energy per transferred bit (J); inf for a data-free trace."""
        if self.data_bits <= 0:
            return float("inf")
        return self.energy / self.data_bits

    @property
    def row_hit_rate(self) -> float:
        """Fraction of column accesses hitting the open row."""
        total = self.row_hits + self.row_misses + self.row_conflicts
        if total == 0:
            return 0.0
        return self.row_hits / total


class TraceAccumulator:
    """Streaming trace evaluator: feed commands in chunks, snapshot
    aggregates at any point.

    Holds per-bank protocol state, the rolling tFAW activate window and
    per-command counts — memory is O(banks), independent of trace
    length.  :meth:`snapshot` (and its alias :meth:`result`) derive the
    energy breakdown purely from the counts, so any chunking of the
    same command stream yields bit-for-bit identical results.
    """

    def __init__(self, model: DramPowerModel, strict: bool = True):
        self.model = model
        self.strict = strict
        device = model.device
        self._device = device
        self._timing = device.timing
        self._n_banks = device.spec.banks
        self._burst = device.spec.burst_length / device.spec.datarate
        self._banks: Dict[int, _BankState] = {}
        # Strict-mode activation bookkeeping.  The window holds only
        # the activate times still inside the tFAW horizon (pruned
        # incrementally, so it never exceeds four entries on a legal
        # trace); the two "last activate" registers answer the tRRD
        # and tRRD_L checks in O(1) instead of scanning the window.
        # Lenient replay never reads any of them, so it skips the
        # maintenance entirely — O(1) time and O(banks) memory per
        # command even for ACT-dense traces.
        self._act_window: deque = deque()
        self._last_act_time = float("-inf")
        self._group_last_act: Dict[int, float] = {}
        self.counts: Dict[Command, int] = {c: 0 for c in Command}
        self._last_time = 0.0
        self._previous = float("-inf")
        self._row_hits = 0
        self._row_conflicts = 0
        self._index = 0

    @property
    def commands_seen(self) -> int:
        """Commands consumed so far (including NOPs)."""
        return self._index

    @property
    def row_hits(self) -> int:
        return self._row_hits

    @property
    def row_conflicts(self) -> int:
        return self._row_conflicts

    # ------------------------------------------------------------------
    def feed(self, commands: Iterable[TraceCommand]) -> "TraceAccumulator":
        """Consume a chunk of commands; returns self for chaining."""
        for entry in commands:
            self._step(entry)
        return self

    def _step(self, entry: TraceCommand) -> None:
        index = self._index
        self._index = index + 1
        time = entry.time
        if time < self._previous:
            if self.strict:
                raise TraceError("trace times must be non-decreasing",
                                 time, index)
            # Lenient: clamp stragglers to the latest time seen so the
            # bank-state machine stays monotonic (documented policy for
            # merged external simulator traces).
            time = self._previous
        self._previous = time
        if time > self._last_time:
            self._last_time = time
        command = entry.command
        if command is Command.NOP:
            return
        if self.strict and entry.bank >= self._n_banks:
            raise TraceError(
                f"bank {entry.bank} outside 0..{self._n_banks - 1}",
                time, index,
            )
        state = self._banks.setdefault(entry.bank, _BankState())
        timing = self._timing
        if command is Command.ACT:
            if self.strict:
                group = self._device.spec.bank_group_of(entry.bank) \
                    if entry.bank < self._n_banks else 0
                self._check_activate(entry, time, index, state, group)
                self._act_window.append(time)
                self._last_act_time = time
                self._group_last_act[group] = time
            state.active_row = entry.row
            state.last_act = time
            state.pending_access = True
        elif command is Command.PRE:
            if self.strict and not state.is_active:
                raise TraceError(f"precharge on idle bank {entry.bank}",
                                 time, index)
            if self.strict and time < state.last_act + timing.tras \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRAS violation on bank {entry.bank}",
                    time, index,
                )
            if self.strict and time < state.last_read + timing.trtp \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRTP violation on bank {entry.bank}",
                    time, index,
                )
            if self.strict and time < state.write_data_end \
                    + timing.twr - TIMING_EPSILON:
                raise TraceError(
                    f"tWR violation on bank {entry.bank}",
                    time, index,
                )
            state.active_row = None
            state.pending_access = False
            state.last_pre = time
        elif command is Command.REF:
            if self.strict and state.is_active:
                raise TraceError(
                    f"refresh on active bank {entry.bank}",
                    time, index,
                )
            if self.strict and time < state.last_pre + timing.trp \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRP violation before refresh on bank {entry.bank}",
                    time, index,
                )
            if self.strict and time < state.last_ref + timing.trfc \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRFC violation on bank {entry.bank}",
                    time, index,
                )
            state.active_row = None
            state.pending_access = False
            state.last_ref = time
        elif command in (Command.RD, Command.WR):
            if self.strict and not state.is_active:
                raise TraceError(
                    f"column access on idle bank {entry.bank}",
                    time, index,
                )
            if self.strict and time < state.last_act + timing.trcd \
                    - TIMING_EPSILON:
                raise TraceError(
                    f"tRCD violation on bank {entry.bank}",
                    time, index,
                )
            if state.active_row == entry.row:
                if state.pending_access:
                    # The miss this bank's activate already paid for.
                    state.pending_access = False
                else:
                    self._row_hits += 1
            else:
                if self.strict:
                    raise TraceError(
                        f"access to row {entry.row} on bank "
                        f"{entry.bank} with row {state.active_row} "
                        f"open", time, index,
                    )
                self._row_conflicts += 1
            if command is Command.RD:
                state.last_read = time
            else:
                state.write_data_end = time + self._burst
        self.counts[command] += 1

    def _check_activate(self, entry: TraceCommand, time: float,
                        index: int, state: _BankState,
                        group: int) -> None:
        """Strict-mode legality of one activate, in O(1).

        The window is pruned to the tFAW horizon before the checks, so
        its length *is* the rolling four-activate count; tRRD and
        tRRD_L read the scalar last-activate registers (times are
        non-decreasing under strict replay, so the most recent
        activate is always the binding one).
        """
        timing = self._timing
        if state.is_active:
            raise TraceError(
                f"activate on already-active bank {entry.bank}",
                time, index)
        if time < state.last_act + timing.trc - TIMING_EPSILON:
            raise TraceError(f"tRC violation on bank {entry.bank}",
                             time, index)
        if time < state.last_pre + timing.trp - TIMING_EPSILON:
            raise TraceError(f"tRP violation on bank {entry.bank}",
                             time, index)
        if time < state.last_ref + timing.trfc - TIMING_EPSILON:
            raise TraceError(f"tRFC violation on bank {entry.bank}",
                             time, index)
        window = self._act_window
        while window and window[0] <= time - timing.tfaw \
                + TIMING_EPSILON:
            window.popleft()
        if self._last_act_time > time - timing.trrd + TIMING_EPSILON:
            raise TraceError("tRRD violation", time, index)
        last_in_group = self._group_last_act.get(group)
        if last_in_group is not None and last_in_group \
                > time - timing.trrd_l + TIMING_EPSILON:
            raise TraceError("tRRD_L violation (same bank group)",
                             time, index)
        if len(window) >= 4:
            raise TraceError("tFAW violation", time, index)

    # ------------------------------------------------------------------
    # Batched and sharded replay.  Both are lenient-only: the columnar
    # fold carries no per-command timing state, and strict legality
    # (the activate window) is global across banks, so neither batches
    # nor (channel, rank) shards could reproduce strict replay.
    # ------------------------------------------------------------------
    def absorb_batch(self, counts: Mapping[Command, int],
                     row_hits: int, commands: int, last_time: float,
                     bank_rows: Optional[Mapping[int, Optional[int]]]
                     = None,
                     row_conflicts: int = 0) -> None:
        """Fold one pre-aggregated command batch into this accumulator.

        The columnar kernel reduces a batch of expanded commands to
        count deltas; this applies them so that the subsequent
        :meth:`snapshot` is bit-for-bit identical to having fed the
        same commands through :meth:`feed`.  ``bank_rows`` carries the
        open row (or ``None``) left on every bank the batch touched,
        keeping the per-bank state consistent for any later scalar
        :meth:`feed` on the same accumulator.
        """
        if self.strict:
            raise TraceError(
                "batched absorption requires strict=False replay",
                0.0, None)
        for command, count in counts.items():
            if count:
                self.counts[command] += count
        self._row_hits += row_hits
        self._row_conflicts += row_conflicts
        self._index += commands
        if last_time > self._last_time:
            self._last_time = last_time
        if last_time > self._previous:
            self._previous = last_time
        if bank_rows:
            for bank, row in bank_rows.items():
                state = self._banks.setdefault(bank, _BankState())
                state.active_row = row
                state.pending_access = False

    def export_state(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the lenient replay state.

        Carries everything :meth:`merge_state` needs to combine shard
        replays exactly: the counts, hit/conflict tallies, time
        watermarks (``-inf`` encodes as ``None``) and per-bank open
        rows.  Floats round-trip JSON losslessly, so a state that
        travelled through a journal or a process pool merges
        bit-for-bit identically to the in-memory object.
        """
        if self.strict:
            raise TraceError(
                "state export requires strict=False replay", 0.0, None)
        previous = (None if self._previous == float("-inf")
                    else self._previous)
        return {
            "device": self._device.name,
            "counts": {command.value: count
                       for command, count in self.counts.items()},
            "row_hits": self._row_hits,
            "row_conflicts": self._row_conflicts,
            "commands": self._index,
            "last_time": self._last_time,
            "previous": previous,
            "banks": {str(bank): [state.active_row,
                                  state.pending_access]
                      for bank, state in self._banks.items()},
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Merge one exported shard state into this accumulator.

        Exact by construction when shards partition the trace by
        ``(channel, rank)``: the flat bank sets are disjoint (the
        shard index occupies the top bits of every flat bank), counts
        and tallies are integer sums, the time watermarks are maxima,
        and :meth:`snapshot` derives energy from the merged counts
        through the same code path as serial replay — so the merged
        result is byte-identical to a serial one-shot fold.
        """
        if self.strict:
            raise TraceError(
                "merging requires strict=False replay", 0.0, None)
        if state.get("device") != self._device.name:
            raise TraceError(
                f"cannot merge state of device {state.get('device')!r}"
                f" into {self._device.name!r}", 0.0, None)
        banks = {int(bank): value
                 for bank, value in state.get("banks", {}).items()}
        overlap = self._banks.keys() & banks.keys()
        if overlap:
            raise TraceError(
                "cannot merge overlapping bank states (banks "
                f"{sorted(overlap)[:4]}...); shards must partition "
                "the trace by (channel, rank)", 0.0, None)
        for name, count in state["counts"].items():
            self.counts[Command(name)] += count
        self._row_hits += state["row_hits"]
        self._row_conflicts += state["row_conflicts"]
        self._index += state["commands"]
        if state["last_time"] > self._last_time:
            self._last_time = state["last_time"]
        previous = state.get("previous")
        if previous is not None and previous > self._previous:
            self._previous = previous
        for bank, (row, pending) in banks.items():
            self._banks[bank] = _BankState(active_row=row,
                                           pending_access=pending)

    def merge(self, other: "TraceAccumulator") -> "TraceAccumulator":
        """Fold another accumulator's shard into this one.

        See :meth:`merge_state` for the exactness argument; returns
        self for chaining.
        """
        self.merge_state(other.export_state())
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> TraceResult:
        """Aggregates over everything fed so far.

        Cheap (O(components)); safe to call between chunks.  The final
        call is identical to one-shot evaluation of the whole trace.
        """
        device = self._device
        timing = self._timing
        counts = dict(self.counts)
        duration = self._last_time + timing.trc
        breakdown = self.model.energies.background_power.scaled(duration)
        for command in _PRICED_COMMANDS:
            if counts[command]:
                breakdown = breakdown + self.model.energies \
                    .operation_energy(command).scaled(counts[command])
        if counts[Command.REF]:
            refresh_rows = counts[Command.REF] * timing.rows_per_refresh
            row_cycle = (self.model.energies.operation_energy(Command.ACT)
                         + self.model.energies.operation_energy(
                             Command.PRE))
            breakdown = breakdown + row_cycle.scaled(refresh_rows)
        data_bits = ((counts[Command.RD] + counts[Command.WR])
                     * device.spec.bits_per_access)
        return TraceResult(
            device_name=device.name,
            vdd=device.voltages.vdd,
            duration=duration,
            counts=counts,
            energy=breakdown.total,
            breakdown=breakdown,
            data_bits=float(data_bits),
            row_hits=self._row_hits,
            row_misses=counts[Command.ACT],
            row_conflicts=self._row_conflicts,
        )

    def result(self) -> TraceResult:
        """Final aggregates (alias of :meth:`snapshot`)."""
        return self.snapshot()


def evaluate_trace(model: DramPowerModel,
                   commands: Iterable[TraceCommand],
                   strict: bool = True) -> TraceResult:
    """Replay a trace against the model and integrate its energy.

    Streams ``commands`` in a single pass (generators welcome; the
    trace is never materialized).  With ``strict`` (default) every
    protocol and timing violation raises :class:`TraceError`; with
    ``strict=False`` the trace is priced as given (useful for
    approximate traces from external simulators).
    """
    return TraceAccumulator(model, strict=strict).feed(commands).result()


def trace_power(model: DramPowerModel,
                commands: Iterable[TraceCommand],
                strict: bool = True) -> Tuple[float, float]:
    """(average power W, average Vdd current A) of a trace."""
    result = evaluate_trace(model, commands, strict=strict)
    power = result.average_power
    return power, power / model.device.voltages.vdd
