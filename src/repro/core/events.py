"""Charge events — the atoms of the power model.

The paper partitions DRAM operation "into a large number of charge and
discharge processes for which capacitance, voltage and frequency can be
determined individually" (eq. 2).  A :class:`ChargeEvent` is one such
process: ``count`` capacitors of ``capacitance`` each swinging by ``swing``
volts, supplied from ``rail``, fired by ``trigger`` during ``operations``.

Charge accounting convention: per firing the supply rail delivers
``Q = count · C · swing`` (the charging half of the cycle; the discharge
returns the energy to ground, not to the supply).  Energy drawn from the
external Vdd is ``Q · V_rail / efficiency`` — see
:meth:`repro.description.VoltageSet.vdd_energy`.  The bitline
precharge-to-midlevel is adiabatic (true and complement are shorted) and is
represented by *not* emitting a precharge event for the bitlines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import FrozenSet, Iterable, Tuple

from ..description import Command, Rail
from ..description.signaling import Trigger
from ..errors import ModelError


class Component(str, Enum):
    """Where on the die a charge event happens — the breakdown categories."""

    BITLINE = "bitline"
    """Bitline swing and cell restore in the sub-arrays."""
    SENSE_AMP = "sense_amp"
    """Bitline sense-amplifier control (set/equalize/mux lines)."""
    WORDLINE = "wordline"
    """Local and master wordlines, sub-wordline drivers, row decoder."""
    ROW_LOGIC = "row_logic"
    """Off-pitch row logic blocks (redundancy, address latches)."""
    COLUMN = "column"
    """Column select lines, local data lines, column decode."""
    DATAPATH = "datapath"
    """Master array data lines, central data buses, (de)serialisers."""
    CONTROL = "control"
    """Command/address receivers and central control logic."""
    CLOCK = "clock"
    """Clock wiring, clock tree and DLL."""
    IO = "io"
    """Internal interface circuitry (pre-drivers, receivers)."""
    POWER = "power"
    """Power system overhead (references, regulators)."""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ChargeEvent:
    """One charge/discharge process of eq. 2."""

    name: str
    """Human-readable event name, e.g. ``bitline swing``."""
    component: Component
    """Breakdown category."""
    capacitance: float
    """Capacitance of one switching element (F)."""
    swing: float
    """Voltage swing of the element (V)."""
    rail: Rail
    """Supply rail delivering the charge."""
    count: float
    """Elements switching per firing (may be fractional: activity)."""
    trigger: Trigger
    """What fires the event (per command, per access, per clock)."""
    operations: FrozenSet[Command] = frozenset()
    """Commands gating the event; empty = background (clock-triggered)."""

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise ModelError(f"event {self.name!r}: negative capacitance")
        if self.swing < 0:
            raise ModelError(f"event {self.name!r}: negative swing")
        if self.count < 0:
            raise ModelError(f"event {self.name!r}: negative count")
        # Coerce only when needed: skeleton resolution and sweep code
        # construct events with proper enums on a hot path.
        if type(self.component) is not Component:
            object.__setattr__(self, "component",
                               Component(self.component))
        if type(self.rail) is not Rail:
            object.__setattr__(self, "rail", Rail(self.rail))
        if type(self.trigger) is not Trigger:
            object.__setattr__(self, "trigger", Trigger(self.trigger))
        operations = self.operations
        if not (type(operations) is frozenset
                and all(type(op) is Command for op in operations)):
            object.__setattr__(
                self, "operations",
                frozenset(Command(op) for op in operations),
            )
        clocked = self.trigger in (Trigger.PER_CTRL_CLOCK,
                                   Trigger.PER_DATA_CLOCK)
        if not clocked and not self.operations:
            raise ModelError(
                f"event {self.name!r}: a {self.trigger.value}-triggered "
                "event must name the commands that fire it"
            )

    # ------------------------------------------------------------------
    @property
    def charge_per_firing(self) -> float:
        """Charge drawn from the rail per firing (C)."""
        return self.count * self.capacitance * self.swing

    @property
    def is_background(self) -> bool:
        """True when the event runs regardless of the command stream."""
        return not self.operations

    @property
    def is_clocked(self) -> bool:
        """True when the event fires on a clock rather than on a command."""
        return self.trigger in (Trigger.PER_CTRL_CLOCK,
                                Trigger.PER_DATA_CLOCK)

    def scaled(self, **overrides: object) -> "ChargeEvent":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class EventSkeleton:
    """A charge event before its voltage swing is known.

    The capacitance-extraction stage of the pipeline produces skeletons:
    everything about an event *except* the resolved swing, which is
    expressed as a reference to a rail level and an exact power-of-two
    divisor (``swing = level(swing_rail) / swing_divisor``).  Resolving a
    skeleton against a :class:`~repro.description.VoltageSet` is therefore
    bit-for-bit identical to building the event directly — division by
    1.0 or 2.0 is exact in IEEE-754 — while letting a voltage-only
    perturbation reuse the full capacitance extraction unchanged.
    """

    name: str
    """Human-readable event name, e.g. ``bitline swing``."""
    component: Component
    """Breakdown category."""
    capacitance: float
    """Capacitance of one switching element (F)."""
    swing_rail: "Rail"
    """Rail whose level sets the voltage swing."""
    swing_divisor: float
    """Exact divisor applied to the rail level (1.0 or 2.0)."""
    rail: "Rail"
    """Supply rail delivering the charge."""
    count: float
    """Elements switching per firing (may be fractional: activity)."""
    trigger: Trigger
    """What fires the event (per command, per access, per clock)."""
    operations: FrozenSet[Command] = frozenset()
    """Commands gating the event; empty = background (clock-triggered)."""

    def resolve(self, voltages) -> ChargeEvent:
        """The finished :class:`ChargeEvent` under ``voltages``."""
        return ChargeEvent(
            name=self.name,
            component=self.component,
            capacitance=self.capacitance,
            swing=voltages.level(self.swing_rail) / self.swing_divisor,
            rail=self.rail,
            count=self.count,
            trigger=self.trigger,
            operations=self.operations,
        )


def resolve_skeletons(skeletons: Iterable[EventSkeleton],
                      voltages) -> Tuple[ChargeEvent, ...]:
    """Resolve a skeleton list into charge events, preserving order."""
    return tuple(skeleton.resolve(voltages) for skeleton in skeletons)


# ----------------------------------------------------------------------
# Columnar decomposition — the array-friendly view of a skeleton list.
# ----------------------------------------------------------------------

#: Trigger → firing-rate kind used by the columnar fold: ``0`` fires
#: once per gating command, ``1`` follows the control clock, ``2`` the
#: data clock.
TRIGGER_KIND = {
    Trigger.PER_ACCESS: 0,
    Trigger.PER_ROW_OP: 0,
    Trigger.PER_CTRL_CLOCK: 1,
    Trigger.PER_DATA_CLOCK: 2,
}


def skeleton_signature(skeletons: Iterable[EventSkeleton]) -> Tuple:
    """Structural identity of a skeleton list, numeric columns excluded.

    Two skeleton lists with equal signatures describe the *same* charge
    processes — same rails, swings references, triggers, gating and
    breakdown categories in the same order — and differ at most in
    their per-event capacitance and count values.  Such families fold
    as one batch in the vectorized kernel, with capacitance/count as
    per-variant columns.
    """
    return tuple(
        (skeleton.swing_rail, skeleton.swing_divisor, skeleton.rail,
         skeleton.trigger, skeleton.operations, skeleton.component)
        for skeleton in skeletons
    )


def skeleton_columns(skeletons: Iterable[EventSkeleton]) -> Tuple[
        Tuple[float, ...], Tuple[float, ...]]:
    """The numeric ``(capacitance, count)`` columns of a skeleton list.

    The per-variant half of the columnar decomposition; everything
    else about the events is captured by :func:`skeleton_signature`.
    Plain tuples so the core stays stdlib-only — the engine's vector
    kernel turns them into array rows.
    """
    capacitance = []
    count = []
    for skeleton in skeletons:
        capacitance.append(skeleton.capacitance)
        count.append(skeleton.count)
    return tuple(capacitance), tuple(count)


def filter_events(events: Iterable[ChargeEvent],
                  component: Component = None,
                  operation: Command = None) -> Tuple[ChargeEvent, ...]:
    """Select events by component and/or gating operation."""
    selected = []
    for event in events:
        if component is not None and event.component != Component(component):
            continue
        if operation is not None and Command(operation) not in event.operations:
            continue
        selected.append(event)
    return tuple(selected)
