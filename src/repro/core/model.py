"""The DRAM power model — top-level orchestration (paper Figure 4).

:class:`DramPowerModel` takes a validated :class:`DramDescription` and
produces per-operation energies, pattern powers, supply currents and
energy-per-bit figures.  The pipeline mirrors the paper:

1. resolve the floorplan geometry (block coordinates, wire lengths);
2. build the charge-event list (wire + device capacitances, §III.B.2/3);
3. fold events into per-operation energies and background power;
4. evaluate command patterns: power = background + Σ count·E_op / time;
5. report currents at the external supply (datasheet IDD convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..description import Command, DramDescription, Pattern
from ..errors import ModelError
from ..floorplan import FloorplanGeometry
from ..units import pj_per_bit
from .builder import build_skeletons, resolve_events
from .events import ChargeEvent, Component, EventSkeleton
from .operations import EnergyBreakdown, OperationEnergies


@dataclass(frozen=True)
class PatternPower:
    """Power result for one command pattern on one device."""

    device_name: str
    """Name of the evaluated device."""
    pattern: str
    """Human-readable pattern description."""
    duration: float
    """Loop duration (s)."""
    power: float
    """Average power drawn from Vdd (W)."""
    current: float
    """Average current drawn from Vdd (A) — the datasheet IDD convention."""
    breakdown: EnergyBreakdown
    """Average power per component category (W)."""
    operation_power: Mapping[str, float]
    """Average power contributed by each command type plus background (W)."""
    data_bits_per_second: float
    """Useful data throughput of the pattern (bit/s)."""

    @property
    def energy_per_bit(self) -> float:
        """Energy per transferred data bit (J/bit); inf for no traffic."""
        if self.data_bits_per_second <= 0:
            return float("inf")
        return self.power / self.data_bits_per_second

    @property
    def energy_per_bit_pj(self) -> float:
        """Energy per bit in pJ (numerically mW per Gb/s)."""
        if self.data_bits_per_second <= 0:
            return float("inf")
        return pj_per_bit(self.power, self.data_bits_per_second)


class DramPowerModel:
    """Evaluates the power of one DRAM description.

    Construction runs the Figure-4 pipeline stage by stage — geometry,
    capacitance extraction (skeletons), charge determination (events),
    per-operation energies — and each stage can be handed in prebuilt by
    the evaluation engine's incremental builder
    (:mod:`repro.engine.stages`), which reuses every stage whose inputs
    are unchanged from an earlier build.  A model assembled from reused
    stage artifacts is bit-for-bit identical to a cold build.
    """

    def __init__(self, device: DramDescription,
                 events: Optional[Tuple[ChargeEvent, ...]] = None,
                 geometry: Optional[FloorplanGeometry] = None, *,
                 skeletons: Optional[Tuple[EventSkeleton, ...]] = None,
                 energies: Optional[OperationEnergies] = None,
                 default_power: Optional["PatternPower"] = None):
        self.device = device
        if geometry is None:
            geometry = FloorplanGeometry(device)
        self.geometry = geometry
        if events is None and skeletons is None:
            skeletons = build_skeletons(device, self.geometry)
        if events is None and energies is None:
            # Energies need the resolved events; otherwise resolution
            # can stay lazy (vector-built models often never read it).
            events = resolve_events(skeletons, device.voltages)
        #: Voltage-free capacitance-stage artifacts; ``None`` for models
        #: built around a substituted (scheme-transformed) event list.
        self.skeletons = (tuple(skeletons) if skeletons is not None
                          else None)
        self._events = tuple(events) if events is not None else None
        self.energies = (energies if energies is not None
                         else OperationEnergies(device, self._events))
        self._default_power = default_power

    @property
    def events(self) -> Tuple[ChargeEvent, ...]:
        """The resolved charge-event list (paper eq. 2 processes).

        Models assembled with prebuilt energies but no event list (the
        vectorized kernel's product) resolve their skeletons on first
        access — identical arithmetic to an eager build, just deferred
        past the hot sweep path that only reads pattern powers.
        """
        if self._events is None:
            self._events = resolve_events(self.skeletons,
                                          self.device.voltages)
        return self._events

    # ------------------------------------------------------------------
    # Per-operation results
    # ------------------------------------------------------------------
    def operation_energy(self, command: Command) -> float:
        """Energy per occurrence of ``command`` (J at Vdd)."""
        return self.energies.operation_energy(command).total

    def operation_breakdown(self, command: Command) -> EnergyBreakdown:
        """Per-component energy of one ``command`` occurrence (J)."""
        return self.energies.operation_energy(command)

    @property
    def background_power(self) -> float:
        """Always-on power (W at Vdd): clock, control, power system."""
        return self.energies.background_power.total

    @property
    def background_breakdown(self) -> EnergyBreakdown:
        """Per-component always-on power (W)."""
        return self.energies.background_power

    # ------------------------------------------------------------------
    # Pattern evaluation
    # ------------------------------------------------------------------
    def counts_power(self, counts: Mapping[Command, float], duration: float,
                     label: str = "counts") -> PatternPower:
        """Power of a loop issuing ``counts`` commands every ``duration``.

        This is the paper's last pipeline stage generalised: any command
        mix over any window, e.g. the IDD7 definition (eight activates
        plus gapless reads per row-cycle window).
        """
        if duration <= 0:
            raise ModelError("pattern duration must be positive")
        breakdown = EnergyBreakdown() + self.energies.background_power
        op_power: Dict[str, float] = {
            "background": self.energies.background_power.total
        }
        data_bits = 0.0
        for command, count in counts.items():
            command = Command(command)
            if count < 0:
                raise ModelError(f"negative count for {command}")
            if count == 0 or command is Command.NOP:
                continue
            energy = self.energies.operation_energy(command)
            contribution = energy.scaled(count / duration)
            breakdown = breakdown + contribution
            op_power[command.value] = contribution.total
            if command in (Command.RD, Command.WR):
                data_bits += count * self.device.spec.bits_per_access
        power = breakdown.total
        return PatternPower(
            device_name=self.device.name,
            pattern=label,
            duration=duration,
            power=power,
            current=power / self.device.voltages.vdd,
            breakdown=breakdown,
            operation_power=op_power,
            data_bits_per_second=data_bits / duration,
        )

    def pattern_power(self, pattern: Optional[Pattern] = None) -> PatternPower:
        """Power of a repeating command loop (one slot per control clock).

        Without an argument the device's own default pattern is used
        (the paper's ``Pattern loop= act nop wrt nop rd nop pre nop``).
        """
        use_memo = pattern is None
        if use_memo and self._default_power is not None:
            return self._default_power
        if pattern is None:
            pattern = self.device.pattern
        duration = len(pattern) / self.device.spec.f_ctrlclock
        counts = {command: float(count)
                  for command, count in pattern.counts().items()}
        result = self.counts_power(counts, duration, label=str(pattern))
        if use_memo:
            # Idempotent memo: every recomputation yields the identical
            # value, so a benign race between threads cannot diverge.
            self._default_power = result
        return result

    # ------------------------------------------------------------------
    # Convenience figures
    # ------------------------------------------------------------------
    def current(self, pattern: Optional[Pattern] = None) -> float:
        """Average Vdd current of a pattern (A)."""
        return self.pattern_power(pattern).current

    def energy_per_bit(self, pattern: Optional[Pattern] = None) -> float:
        """Energy per transferred bit of a pattern (J/bit)."""
        return self.pattern_power(pattern).energy_per_bit

    def component_share(self, component: Component,
                        pattern: Optional[Pattern] = None) -> float:
        """Share of pattern power spent in one component category."""
        result = self.pattern_power(pattern)
        return result.breakdown.share(component)

    def total_switched_capacitance(self) -> float:
        """Σ C·count over all events (F) — a sanity/inspection figure."""
        return sum(event.capacitance * event.count for event in self.events)

    def event_energies(self, command: Command):
        """Per-event energy of one command occurrence, largest first.

        Returns a list of ``(event, energy_joules)`` — the fine-grained
        "where exactly does the power go" view the paper argues datasheet
        models cannot provide.
        """
        from .operations import firings_per_command

        command = Command(command)
        entries = []
        for event in self.events:
            if event.is_background:
                continue
            firings = firings_per_command(self.device, event, command)
            if not firings:
                continue
            charge = event.charge_per_firing * firings
            energy = self.device.voltages.vdd_energy(charge, event.rail)
            entries.append((event, energy))
        entries.sort(key=lambda entry: -entry[1])
        return entries

    def self_check(self) -> list:
        """Verify internal invariants; returns a list of issue strings.

        An empty list means the model is internally consistent: every
        event well-formed, every per-operation energy finite and
        non-negative, component shares summing to one, and the pattern
        decomposition exact.
        """
        import math

        issues = []
        for event in self.events:
            if event.capacitance < 0 or event.count < 0:
                issues.append(f"event {event.name!r} has negative "
                              "capacitance or count")
            if not math.isfinite(event.charge_per_firing):
                issues.append(f"event {event.name!r} has non-finite "
                              "charge")
        for command in Command:
            energy = self.operation_energy(command)
            if not math.isfinite(energy) or energy < 0:
                issues.append(f"operation {command.value} energy "
                              f"invalid: {energy}")
        if not math.isfinite(self.background_power) \
                or self.background_power < 0:
            issues.append("background power invalid")
        result = self.pattern_power()
        recombined = sum(result.operation_power.values())
        if abs(recombined - result.power) > 1e-9 * max(1.0, result.power):
            issues.append("pattern power does not equal the sum of its "
                          "operation contributions")
        share_sum = sum(result.breakdown.share(component)
                        for component in
                        result.breakdown.values)
        if result.power > 0 and abs(share_sum - 1.0) > 1e-9:
            issues.append("component shares do not sum to one")
        return issues

    def background_event_powers(self):
        """Per-event always-on power (W), largest first."""
        from .operations import background_rate

        entries = []
        for event in self.events:
            if not event.is_background:
                continue
            rate = background_rate(self.device, event)
            charge = event.charge_per_firing * rate
            power = self.device.voltages.vdd_energy(charge, event.rail)
            entries.append((event, power))
        entries.sort(key=lambda entry: -entry[1])
        return entries
