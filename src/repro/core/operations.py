"""Per-operation energy accounting with component breakdown.

The model's intermediate product: for each basic operation (activate,
precharge, read, write) the energy drawn from the external supply per
occurrence, split by :class:`~repro.core.events.Component`; plus the
background power of the always-on circuitry (clock, control, power
system).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from ..description import Command, DramDescription
from ..description.signaling import Trigger
from ..errors import ModelError
from .events import ChargeEvent, Component


@dataclass
class EnergyBreakdown:
    """Energy (J) or power (W) per component category.

    Behaves like an additive vector over :class:`Component`; the unit is
    whatever the producer put in (joules for per-operation energies,
    watts for powers).
    """

    values: Dict[Component, float] = field(default_factory=dict)

    def add(self, component: Component, amount: float) -> None:
        """Accumulate ``amount`` into one component bucket."""
        if type(component) is not Component:
            component = Component(component)
        self.values[component] = self.values.get(component, 0.0) + amount

    @property
    def total(self) -> float:
        """Sum over all components."""
        return sum(self.values.values())

    def get(self, component: Component) -> float:
        """Amount in one component bucket (0 if empty)."""
        return self.values.get(Component(component), 0.0)

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every bucket multiplied by ``factor``."""
        return EnergyBreakdown(
            {component: amount * factor
             for component, amount in self.values.items()}
        )

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged = dict(self.values)
        for component, amount in other.values.items():
            merged[component] = merged.get(component, 0.0) + amount
        return EnergyBreakdown(merged)

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{component name: amount}`` dict, sorted by amount."""
        return {
            component.value: amount
            for component, amount in sorted(
                self.values.items(), key=lambda item: -item[1]
            )
        }

    def share(self, component: Component) -> float:
        """Fraction of the total in one component bucket."""
        total = self.total
        if total == 0:
            return 0.0
        return self.get(component) / total


def command_activity_time(device: DramDescription, command: Command) -> float:
    """How long one command keeps its gated circuitry busy (s).

    A read or write occupies the data path for the burst duration (the
    paper: "Data transmission and array operation power depends on the
    burst length of the previous read or write command which may extend
    into the no-operation state"); row commands occupy their logic for one
    control clock.
    """
    if type(command) is not Command:
        command = Command(command)
    if command in (Command.RD, Command.WR):
        return device.spec.burst_length / device.spec.datarate
    return 1.0 / device.spec.f_ctrlclock


def firings_per_command(device: DramDescription, event: ChargeEvent,
                        command: Command) -> float:
    """How often a gated event fires per occurrence of ``command``."""
    if type(command) is not Command:
        command = Command(command)
    if command not in event.operations:
        return 0.0
    if event.trigger in (Trigger.PER_ACCESS, Trigger.PER_ROW_OP):
        return 1.0
    duration = command_activity_time(device, command)
    if event.trigger is Trigger.PER_CTRL_CLOCK:
        return duration * device.spec.f_ctrlclock
    if event.trigger is Trigger.PER_DATA_CLOCK:
        return duration * device.spec.f_dataclock
    raise ModelError(f"unknown trigger {event.trigger!r}")


def background_rate(device: DramDescription, event: ChargeEvent) -> float:
    """Firings per second of a background (ungated) event."""
    if not event.is_background:
        raise ModelError(f"event {event.name!r} is not background")
    if event.trigger is Trigger.PER_CTRL_CLOCK:
        return device.spec.f_ctrlclock
    if event.trigger is Trigger.PER_DATA_CLOCK:
        return device.spec.f_dataclock
    raise ModelError(
        f"background event {event.name!r} has command trigger "
        f"{event.trigger!r}"
    )


class OperationEnergies:
    """Per-operation energies and background power of one device."""

    def __init__(self, device: DramDescription,
                 events: Iterable[ChargeEvent]):
        self.device = device
        self._events = tuple(events)
        self._skeletons = None
        self._energies: Dict[Command, EnergyBreakdown] = {}
        self._background = self._compute_background()
        for command in Command:
            self._energies[command] = self._compute_operation(command)

    @classmethod
    def from_folded(cls, device: DramDescription,
                    energies: Dict[Command, EnergyBreakdown],
                    background: EnergyBreakdown,
                    skeletons=None) -> "OperationEnergies":
        """Wrap already-folded results (the vectorized kernel's output).

        The columnar kernel computes the per-operation breakdowns for a
        whole sweep family in one array pass; this constructor adopts
        one variant's row without touching the scalar fold.  ``events``
        stays unresolved until read — ``skeletons`` plus the device's
        voltages reproduce it exactly on demand.
        """
        folded = object.__new__(cls)
        folded.device = device
        folded._events = None
        folded._skeletons = (tuple(skeletons) if skeletons is not None
                             else None)
        folded._energies = energies
        folded._background = background
        return folded

    @property
    def events(self) -> tuple:
        """The charge events these energies were folded from."""
        if self._events is None:
            from .events import resolve_skeletons

            self._events = resolve_skeletons(self._skeletons,
                                             self.device.voltages)
        return self._events

    # ------------------------------------------------------------------
    def _vdd_energy(self, event: ChargeEvent, firings: float) -> float:
        """Energy drawn from Vdd for ``firings`` firings of ``event`` (J)."""
        charge = event.charge_per_firing * firings
        return self.device.voltages.vdd_energy(charge, event.rail)

    def _compute_operation(self, command: Command) -> EnergyBreakdown:
        breakdown = EnergyBreakdown()
        for event in self.events:
            if event.is_background:
                continue
            firings = firings_per_command(self.device, event, command)
            if firings:
                breakdown.add(event.component,
                              self._vdd_energy(event, firings))
        return breakdown

    def _compute_background(self) -> EnergyBreakdown:
        breakdown = EnergyBreakdown()
        for event in self.events:
            if not event.is_background:
                continue
            rate = background_rate(self.device, event)
            breakdown.add(event.component, self._vdd_energy(event, rate))
        if self.device.constant_current:
            breakdown.add(
                Component.POWER,
                self.device.constant_current * self.device.voltages.vdd,
            )
        return breakdown

    def rebind(self, device: DramDescription) -> "OperationEnergies":
        """A copy of these energies bound to ``device``.

        The folded results are shared, not recomputed — valid exactly
        when ``device`` carries the same voltages, specification and
        constant-current values as the original, which is what the
        engine's current-stage fingerprint guarantees.
        """
        clone = object.__new__(OperationEnergies)
        clone.device = device
        clone._events = self._events
        clone._skeletons = self._skeletons
        clone._energies = self._energies
        clone._background = self._background
        return clone

    # ------------------------------------------------------------------
    def operation_energy(self, command: Command) -> EnergyBreakdown:
        """Energy per occurrence of ``command`` (J at Vdd), by component."""
        return self._energies[Command(command)]

    @property
    def background_power(self) -> EnergyBreakdown:
        """Always-on power (W at Vdd), by component."""
        return self._background

    def as_table(self) -> Mapping[str, Dict[str, float]]:
        """Energies in pJ per operation and background power in mW."""
        table: Dict[str, Dict[str, float]] = {}
        for command in (Command.ACT, Command.PRE, Command.RD, Command.WR):
            breakdown = self._energies[command]
            table[command.value] = {
                name: amount * 1e12
                for name, amount in breakdown.as_dict().items()
            }
        table["background_mw"] = {
            name: amount * 1e3
            for name, amount in self._background.as_dict().items()
        }
        return table
