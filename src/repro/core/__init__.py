"""The power-model pipeline (paper Section III, Figure 4).

``parse input`` and ``syntax check`` live in :mod:`repro.dsl`; this package
implements the remaining stages: calculate wire and device capacitances
(:mod:`repro.core.builder` with :mod:`repro.circuits`), determine the charge
associated with activate/precharge/read/write (:class:`ChargeEvent`),
calculate the current and power of each operation, and calculate the power
of a specified pattern (:class:`DramPowerModel`).
"""

from .events import ChargeEvent, Component
from .operations import EnergyBreakdown, OperationEnergies
from .model import DramPowerModel, PatternPower
from .idd import IddMeasure, IddResult, standard_idd_suite

__all__ = [
    "ChargeEvent",
    "Component",
    "EnergyBreakdown",
    "OperationEnergies",
    "DramPowerModel",
    "PatternPower",
    "IddMeasure",
    "IddResult",
    "standard_idd_suite",
]
