"""Floorplan geometry engine.

Resolves the block grid of a :class:`~repro.description.PhysicalFloorplan`
into physical coordinates: derives array-block dimensions from the cell
counts and pitches, computes die size and array efficiency, and measures
signal-segment lengths (block centre to block centre, per the paper).
"""

from .geometry import ArrayBlockGeometry, FloorplanGeometry

__all__ = ["ArrayBlockGeometry", "FloorplanGeometry"]
