"""Physical geometry derived from a DRAM description.

The description gives the floorplan as a grid of block types with sizes;
array-block sizes may be omitted and are then derived bottom-up from the
cell counts, pitches, and the widths of the on-pitch stripes (bitline
sense-amplifier and sub-wordline driver stripes) — the hierarchy of
Figure 1.

All lengths in metres, areas in m².
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..description import DramDescription, SegmentKind, SignalSegment
from ..errors import FloorplanError


def _centers(sizes: List[float]) -> List[float]:
    """Centre coordinate of each interval in a packed 1-D sequence."""
    centers = []
    position = 0.0
    for size in sizes:
        centers.append(position + size / 2.0)
        position += size
    return centers


@dataclass(frozen=True)
class ArrayBlockGeometry:
    """Derived dimensions of one array block (bank)."""

    cell_width: float
    """Extent of the cell field along the wordline direction (m)."""
    cell_height: float
    """Extent of the cell field along the bitline direction (m)."""
    subarray_cols: int
    """Sub-arrays along the wordline direction (master-wordline span)."""
    subarray_rows: int
    """Sub-array rows along the bitline direction."""
    swd_stripe_width: float
    """Width of one sub-wordline driver stripe (m)."""
    sa_stripe_width: float
    """Width of one bitline sense-amplifier stripe (m)."""

    @property
    def width(self) -> float:
        """Block extent along the wordline direction incl. SWD stripes (m)."""
        return self.cell_width + (self.subarray_cols + 1) * self.swd_stripe_width

    @property
    def height(self) -> float:
        """Block extent along the bitline direction incl. SA stripes (m)."""
        return self.cell_height + (self.subarray_rows + 1) * self.sa_stripe_width

    @property
    def area(self) -> float:
        """Block area (m²)."""
        return self.width * self.height

    @property
    def cell_area(self) -> float:
        """Area covered by cells only (m²)."""
        return self.cell_width * self.cell_height

    @property
    def sa_stripe_area(self) -> float:
        """Area of all bitline sense-amplifier stripes in the block (m²)."""
        return (self.subarray_rows + 1) * self.sa_stripe_width * self.width

    @property
    def swd_stripe_area(self) -> float:
        """Area of all sub-wordline driver stripes in the block (m²)."""
        return ((self.subarray_cols + 1) * self.swd_stripe_width
                * self.cell_height)

    @property
    def master_wordline_length(self) -> float:
        """Length of one master wordline — the block width (m)."""
        return self.width

    @property
    def column_line_length(self) -> float:
        """Length of column select / master data lines — block height (m)."""
        return self.height


class FloorplanGeometry:
    """Resolves a description's floorplan into physical coordinates."""

    def __init__(self, device: DramDescription):
        self.device = device
        self.array_block = self._derive_array_block()
        self._col_widths = self._resolve_axis(
            device.floorplan.horizontal, device.floorplan.widths,
            self._array_extent_horizontal(),
        )
        self._row_heights = self._resolve_axis(
            device.floorplan.vertical, device.floorplan.heights,
            self._array_extent_vertical(),
        )
        self._col_centers = _centers(self._col_widths)
        self._row_centers = _centers(self._row_heights)

    def rebind(self, device: DramDescription) -> "FloorplanGeometry":
        """A copy of this geometry bound to ``device``.

        The resolved layout (array block, axis sizes, centres) is shared,
        not recomputed — valid exactly when ``device`` has the same
        floorplan and specification values as the original, which is what
        the engine's geometry-stage fingerprint guarantees.  Rebinding
        keeps lazy, device-reading paths (``net_wire_length``,
        ``array_efficiency``) consistent with the device the caller is
        actually evaluating.
        """
        clone = object.__new__(FloorplanGeometry)
        clone.device = device
        clone.array_block = self.array_block
        clone._col_widths = self._col_widths
        clone._row_heights = self._row_heights
        clone._col_centers = self._col_centers
        clone._row_centers = self._row_centers
        return clone

    # ------------------------------------------------------------------
    # Array block derivation
    # ------------------------------------------------------------------
    def _derive_array_block(self) -> ArrayBlockGeometry:
        device = self.device
        array = device.floorplan.array
        spec = device.spec
        cells_per_block = (spec.density_bits
                           / device.floorplan.array_block_count)
        page_per_block = device.page_bits_per_block
        if cells_per_block % page_per_block:
            raise FloorplanError(
                "array block does not hold a whole number of page slices"
            )
        folded = 2.0 if array.is_folded else 1.0
        cell_width = page_per_block * array.bl_pitch * folded
        logical_rows = cells_per_block / page_per_block
        if logical_rows % array.rows_per_subarray:
            raise FloorplanError(
                "array block does not hold a whole number of sub-array rows"
            )
        cell_height = logical_rows / array.rows_per_subarray \
            * array.local_bitline_length
        return ArrayBlockGeometry(
            cell_width=cell_width,
            cell_height=cell_height,
            subarray_cols=page_per_block // array.bits_per_swl,
            subarray_rows=int(logical_rows // array.rows_per_subarray),
            swd_stripe_width=array.width_swd_stripe,
            sa_stripe_width=array.width_sa_stripe,
        )

    def _array_extent_horizontal(self) -> float:
        """Array-block extent along the x axis (depends on BL direction)."""
        if self.device.floorplan.array.bitline_direction == "v":
            return self.array_block.width
        return self.array_block.height

    def _array_extent_vertical(self) -> float:
        """Array-block extent along the y axis."""
        if self.device.floorplan.array.bitline_direction == "v":
            return self.array_block.height
        return self.array_block.width

    def _resolve_axis(self, names: Tuple[str, ...],
                      sizes: Dict[str, float],
                      array_extent: float) -> List[float]:
        resolved = []
        array_types = self.device.floorplan.array_types
        for name in names:
            if name in sizes:
                resolved.append(sizes[name])
            elif name in array_types:
                resolved.append(array_extent)
            else:
                raise FloorplanError(f"block type {name!r} has no size")
        return resolved

    # ------------------------------------------------------------------
    # Die-level quantities
    # ------------------------------------------------------------------
    @property
    def die_width(self) -> float:
        """Die extent along x (m)."""
        return sum(self._col_widths)

    @property
    def die_height(self) -> float:
        """Die extent along y (m)."""
        return sum(self._row_heights)

    @property
    def die_area(self) -> float:
        """Die area (m²)."""
        return self.die_width * self.die_height

    @property
    def array_efficiency(self) -> float:
        """Ratio of total cell area to die area (the cost figure of §II)."""
        cells = self.device.spec.density_bits
        return cells * self.device.floorplan.array.cell_area / self.die_area

    @property
    def sa_stripe_share(self) -> float:
        """Share of die area used by bitline sense-amplifier stripes.

        Typical commodity DRAMs land between 8 % and 15 % (paper §II).
        """
        blocks = self.device.floorplan.array_block_count
        return blocks * self.array_block.sa_stripe_area / self.die_area

    @property
    def swd_stripe_share(self) -> float:
        """Share of die area used by local wordline driver stripes.

        Typical commodity DRAMs land between 5 % and 10 % (paper §II).
        """
        blocks = self.device.floorplan.array_block_count
        return blocks * self.array_block.swd_stripe_area / self.die_area

    # ------------------------------------------------------------------
    # Coordinates and segment lengths
    # ------------------------------------------------------------------
    def block_size(self, x: int, y: int) -> Tuple[float, float]:
        """(width, height) of the grid cell at (x, y)."""
        self._check_coordinate(x, y)
        return self._col_widths[x], self._row_heights[y]

    def block_center(self, x: int, y: int) -> Tuple[float, float]:
        """Physical centre of the grid cell at (x, y), from die origin."""
        self._check_coordinate(x, y)
        return self._col_centers[x], self._row_centers[y]

    def _check_coordinate(self, x: int, y: int) -> None:
        if not (0 <= x < len(self._col_widths)):
            raise FloorplanError(
                f"x coordinate {x} outside grid 0..{len(self._col_widths) - 1}"
            )
        if not (0 <= y < len(self._row_heights)):
            raise FloorplanError(
                f"y coordinate {y} outside grid 0..{len(self._row_heights) - 1}"
            )

    def segment_length(self, segment: SignalSegment) -> float:
        """Physical wire length of one signal segment (m).

        ``SPAN`` segments run block centre to block centre (Manhattan);
        ``INSIDE`` segments cover a fraction of their block's extent in the
        given direction — exactly the paper's convention.
        """
        if segment.kind is SegmentKind.SPAN:
            assert segment.end is not None
            x0, y0 = self.block_center(*segment.start)
            x1, y1 = self.block_center(*segment.end)
            return abs(x1 - x0) + abs(y1 - y0)
        width, height = self.block_size(*segment.start)
        extent = width if segment.direction == "h" else height
        return segment.fraction * extent

    def net_wire_length(self, net_name: str) -> float:
        """Total single-wire length of a named net (m)."""
        net = self.device.signaling.net(net_name)
        return sum(self.segment_length(seg) for seg in net.segments)
