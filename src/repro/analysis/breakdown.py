"""Component × measure breakdown matrix.

Answers "where does the power go in each operating mode" in one table:
rows are component categories, columns the IDD measures — the detailed
view the paper's introduction promises over datasheet arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core import Component, DramPowerModel
from ..core.idd import IddMeasure, measure as run_measure
from .reporting import format_table

DEFAULT_MEASURES = (IddMeasure.IDD0, IddMeasure.IDD2N, IddMeasure.IDD4R,
                    IddMeasure.IDD4W, IddMeasure.IDD7)


def breakdown_matrix(model: DramPowerModel,
                     measures: Iterable[IddMeasure] = DEFAULT_MEASURES
                     ) -> Dict[IddMeasure, Dict[Component, float]]:
    """Power (W) per component per measure."""
    matrix: Dict[IddMeasure, Dict[Component, float]] = {}
    for which in measures:
        result = run_measure(model, which)
        matrix[IddMeasure(which)] = {
            component: result.power.breakdown.get(component)
            for component in Component
        }
    return matrix


def breakdown_report(model: DramPowerModel,
                     measures: Iterable[IddMeasure] = DEFAULT_MEASURES,
                     as_share: bool = True) -> str:
    """Render the matrix, components sorted by their IDD7 weight."""
    measures = [IddMeasure(which) for which in measures]
    matrix = breakdown_matrix(model, measures)
    reference = measures[-1]
    components = sorted(
        Component,
        key=lambda component: -matrix[reference][component],
    )
    headers = ["component"] + [which.value for which in measures]
    rows: List[List[object]] = []
    for component in components:
        row: List[object] = [component.value]
        for which in measures:
            value = matrix[which][component]
            total = sum(matrix[which].values())
            if as_share and total > 0:
                row.append(f"{value / total:.1%}")
            else:
                row.append(round(value * 1e3, 1))
        rows.append(row)
    unit = "share" if as_share else "mW"
    return format_table(
        headers, rows,
        title=f"Power breakdown by component ({unit}) - "
              f"{model.device.name}",
    )
