"""Regression baseline: snapshot and diff the headline model metrics.

An open-source model lives or dies by numeric stability: a refactor that
silently shifts IDD0 by 10 % must fail CI.  :func:`collect_metrics`
gathers every headline figure; :func:`compare_to_baseline` diffs the
current model against a checked-in snapshot
(``benchmarks/baseline_metrics.json``) with a per-metric tolerance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.idd import standard_idd_suite
from ..devices import ddr3_2g_55nm, sensitivity_trio
from ..engine import EvaluationSession, ensure_session
from ..errors import ModelError

PathLike = Union[str, Path]

#: Default relative tolerance for baseline comparisons.
DEFAULT_TOLERANCE = 0.02


def collect_metrics(session: Optional[EvaluationSession] = None
                    ) -> Dict[str, float]:
    """All headline figures of the calibrated model.

    One shared :class:`EvaluationSession` carries every sub-analysis,
    so recurring devices (the reference DDR3, the trend nodes) are
    built exactly once across the whole collection.
    """
    from .sensitivity import sensitivity
    from .trends import energy_reduction_factors, generation_trend
    from .verification import verify_ddr2, verify_ddr3

    session = ensure_session(session)
    metrics: Dict[str, float] = {}

    device = ddr3_2g_55nm()
    model = session.model(device)
    for measure, result in standard_idd_suite(model).items():
        metrics[f"ddr3_55nm.{measure.value}_ma"] = round(
            result.milliamps, 3)
    metrics["ddr3_55nm.die_mm2"] = round(
        model.geometry.die_area * 1e6, 3)
    metrics["ddr3_55nm.array_efficiency"] = round(
        model.geometry.array_efficiency, 4)

    points = generation_trend(session=session)
    early, late = energy_reduction_factors(points)
    metrics["trend.reduction_early"] = round(early, 4)
    metrics["trend.reduction_late"] = round(late, 4)
    by_node = {point.node_nm: point for point in points}
    for node in (170, 55, 16):
        metrics[f"trend.pj_per_bit_{node:g}nm"] = round(
            by_node[node].energy_idd7_pj, 3)

    for name, rows in (("ddr2", verify_ddr2(session=session)),
                       ("ddr3", verify_ddr3(session=session))):
        hits = sum(row.within_spread(0.25) for row in rows)
        metrics[f"verify.{name}_hits"] = float(hits)

    for dev in sensitivity_trio():
        top = sensitivity(dev, session=session)[0]
        metrics[f"sensitivity.{dev.interface}_top_impact"] = round(
            top.impact, 4)

    return metrics


def save_baseline(path: PathLike,
                  session: Optional[EvaluationSession] = None) -> Path:
    """Write the current metrics as the regression baseline."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(collect_metrics(session), handle, indent=2,
                  sort_keys=True)
    return path


def compare_to_baseline(path: PathLike,
                        tolerance: float = DEFAULT_TOLERANCE,
                        session: Optional[EvaluationSession] = None
                        ) -> List[Tuple[str, float, float]]:
    """Diff current metrics against a baseline file.

    Returns ``(metric, baseline, current)`` for every metric deviating
    by more than ``tolerance`` (relative; absolute for zero baselines).
    Missing or extra metrics are also reported (with NaN placeholders).
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"no baseline at {path}")
    with open(path, encoding="utf-8") as handle:
        baseline: Dict[str, float] = json.load(handle)
    current = collect_metrics(session)
    deviations: List[Tuple[str, float, float]] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            deviations.append((name, float("nan"), current[name]))
            continue
        if name not in current:
            deviations.append((name, baseline[name], float("nan")))
            continue
        reference = baseline[name]
        value = current[name]
        scale = abs(reference) if reference else 1.0
        if abs(value - reference) > tolerance * scale:
            deviations.append((name, reference, value))
    return deviations
