"""Process-corner and vendor-spread analysis (paper §IV.A context).

"As expected the data sheet values show a quite large spread.  This is
due to the different technologies used to build the DRAMs and
differences in the power efficiencies of the approach used by different
DRAM vendors."  This module makes that spread a first-class object:
corner definitions perturb the capacitance/voltage/device parameters
coherently, and a corner sweep yields the min/typ/max band a single
design would show across process and design variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.idd import IddMeasure, measure as run_measure
from ..description import DramDescription
from ..engine import EvaluationSession, Variant, ensure_session
from ..errors import ModelError

#: Parameter groups perturbed together by a corner.
_GROUP_PATHS: Dict[str, Tuple[str, ...]] = {
    "capacitance": (
        "technology.c_bitline", "technology.c_cell",
        "technology.c_wire_signal", "technology.c_wire_mwl",
        "technology.c_wire_swl", "technology.cj_logic",
        "technology.cj_hv",
    ),
    "device": (
        "technology.w_sa_n", "technology.w_sa_p", "technology.w_eq",
        "technology.w_bitswitch", "technology.w_nset",
        "technology.w_pset", "technology.w_swd_n", "technology.w_swd_p",
    ),
    "voltage": ("voltages.vint", "voltages.vbl"),
}


@dataclass(frozen=True)
class Corner:
    """One named corner: multiplicative factors per parameter group."""

    name: str
    capacitance: float = 1.0
    device: float = 1.0
    voltage: float = 1.0

    def variant(self) -> Variant:
        """The corner as an engine :class:`Variant` (deltas only)."""
        variant = Variant(label=self.name)
        for group, factor in (("capacitance", self.capacitance),
                              ("device", self.device),
                              ("voltage", self.voltage)):
            if factor == 1.0:
                continue
            variant = variant.scaled_paths(_GROUP_PATHS[group], factor)
        return variant

    def apply(self, device: DramDescription) -> DramDescription:
        """Return the device shifted to this corner."""
        return self.variant().apply(device)


#: The standard three-corner set: a fast/lean design, the typical one,
#: and a slow/guard-banded one.  The ±10 % capacitance and ±4 % voltage
#: windows are conventional process-variation figures.
STANDARD_CORNERS: Tuple[Corner, ...] = (
    Corner("fast", capacitance=0.90, device=0.92, voltage=0.96),
    Corner("typical"),
    Corner("slow", capacitance=1.10, device=1.08, voltage=1.04),
)

#: A wider set emulating the vendor-to-vendor spread of Figure 8/9 —
#: different technologies and power-efficiency design styles.
VENDOR_SPREAD_CORNERS: Tuple[Corner, ...] = (
    Corner("lean-vendor", capacitance=0.85, device=0.90, voltage=0.95),
    Corner("typical"),
    Corner("conservative-vendor", capacitance=1.18, device=1.12,
           voltage=1.05),
)


@dataclass(frozen=True)
class CornerBand:
    """Min/typ/max currents of one IDD measure over a corner set."""

    measure: IddMeasure
    values_ma: Dict[str, float]

    @property
    def minimum(self) -> float:
        return min(self.values_ma.values())

    @property
    def typical(self) -> float:
        return self.values_ma.get("typical", self.minimum)

    @property
    def maximum(self) -> float:
        return max(self.values_ma.values())

    @property
    def spread(self) -> float:
        """(max − min) / typical — the §IV.A spread figure."""
        if self.typical == 0:
            return 0.0
        return (self.maximum - self.minimum) / self.typical


def _measure_corner(model, measures: Tuple[IddMeasure, ...]
                    ) -> Dict[IddMeasure, float]:
    """Worker callable: IDD currents of one corner model.

    Module-level (pickled via :func:`functools.partial`) so the
    process backend can ship it to worker sessions.
    """
    return {which: run_measure(model, which).milliamps
            for which in measures}


def corner_sweep(device: DramDescription,
                 measures: Iterable[IddMeasure] = (
                     IddMeasure.IDD0, IddMeasure.IDD2N,
                     IddMeasure.IDD4R, IddMeasure.IDD4W,
                 ),
                 corners: Iterable[Corner] = STANDARD_CORNERS,
                 session: Optional[EvaluationSession] = None,
                 jobs: Optional[int] = None,
                 backend: Optional[str] = None) -> List[CornerBand]:
    """Evaluate the IDD measures at every corner.

    Models route through ``session``; ``jobs``/``backend`` build the
    corner models on a thread or process pool (results are
    order-stable and bit-for-bit equal to serial).  The standard
    three-corner sweep is below the vector kernel's batch floor, so
    ``backend="auto"`` keeps it scalar; wider custom corner sets
    fold columnarly like any other family.
    """
    corners = list(corners)
    if not corners:
        raise ModelError("corner sweep needs at least one corner")
    session = ensure_session(session)
    measures = [IddMeasure(which) for which in measures]
    corner_devices = [corner.apply(device) for corner in corners]
    per_corner = session.map(
        corner_devices,
        partial(_measure_corner, measures=tuple(measures)),
        jobs=jobs,
        backend=backend,
    )
    bands = []
    for which in measures:
        values = {corner.name: series[which]
                  for corner, series in zip(corners, per_corner)}
        bands.append(CornerBand(measure=which, values_ma=values))
    return bands
