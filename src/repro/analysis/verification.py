"""Model vs datasheet verification (paper §IV.A, Figures 8 and 9).

For every comparison point (IDD measure × data rate × I/O width) the model
is evaluated at the two technology nodes the paper assumes for the part
family — 75/65 nm for 1 Gb DDR2, 65/55 nm for 1 Gb DDR3 — and compared
against the reconstructed vendor spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.idd import IddMeasure, measure as run_measure
from ..datasheets import ddr2_points, ddr3_points
from ..datasheets.idd import DatasheetPoint, spread
from ..devices import build_device
from ..engine import EvaluationSession, ensure_session
from .reporting import format_table

_GBIT = 1 << 30

#: Technology nodes assumed for the verification parts.  The paper models
#: typical 75/65 nm DDR2 and 65/55 nm DDR3; 90 nm is added for DDR2
#: because the slow speed bins (400/533) shipped on 90 nm volume parts —
#: "the comparison assumed technology nodes which were typically used for
#: high volume parts in the time frame" (§IV.A).
DDR2_NODES: Tuple[float, ...] = (90, 75, 65)
DDR3_NODES: Tuple[float, ...] = (65, 55)


@dataclass(frozen=True)
class VerificationRow:
    """One comparison point of Figure 8/9."""

    label: str
    """x-axis label, e.g. ``idd4r 800 x16``."""
    interface: str
    measure: IddMeasure
    datarate: float
    io_width: int
    sheet_min: float
    """Lowest vendor datasheet value (mA)."""
    sheet_mean: float
    """Mean vendor datasheet value (mA)."""
    sheet_max: float
    """Highest vendor datasheet value (mA)."""
    model_ma: Dict[float, float]
    """Model current per assumed technology node (node nm → mA)."""

    @property
    def best_model(self) -> float:
        """Model value closest to the datasheet mean (mA)."""
        return min(self.model_ma.values(),
                   key=lambda value: abs(value - self.sheet_mean))

    @property
    def ratio_to_mean(self) -> float:
        """Best model value over the datasheet mean."""
        return self.best_model / self.sheet_mean

    def within_spread(self, tolerance: float = 0.0) -> bool:
        """True when any node's model value falls in the vendor spread
        widened by ``tolerance`` (fraction of the mean)."""
        low = self.sheet_min - tolerance * self.sheet_mean
        high = self.sheet_max + tolerance * self.sheet_mean
        return any(low <= value <= high for value in self.model_ma.values())


def _verify(points: Sequence[DatasheetPoint], interface: str,
            nodes: Sequence[float],
            session: Optional[EvaluationSession] = None
            ) -> List[VerificationRow]:
    keys = sorted(
        {(point.measure, point.datarate, point.io_width)
         for point in points},
        key=lambda key: (key[0].value, key[2], key[1]),
    )
    session = ensure_session(session)
    devices: Dict[Tuple[float, float, int], object] = {}
    rows: List[VerificationRow] = []
    for measure, datarate, io_width in keys:
        matching = [point for point in points
                    if (point.measure, point.datarate, point.io_width)
                    == (measure, datarate, io_width)]
        low, mean, high = spread(matching)
        model_ma: Dict[float, float] = {}
        for node in nodes:
            cache_key = (node, datarate, io_width)
            if cache_key not in devices:
                devices[cache_key] = build_device(
                    node, interface=interface, density_bits=_GBIT,
                    io_width=io_width, datarate=datarate)
            result = run_measure(session.model(devices[cache_key]),
                                 measure)
            model_ma[node] = result.milliamps
        rows.append(VerificationRow(
            label=f"{measure.value} {datarate / 1e6:.0f} x{io_width}",
            interface=interface,
            measure=measure,
            datarate=datarate,
            io_width=io_width,
            sheet_min=low,
            sheet_mean=mean,
            sheet_max=high,
            model_ma=model_ma,
        ))
    return rows


def verify_ddr2(nodes: Sequence[float] = DDR2_NODES,
                session: Optional[EvaluationSession] = None
                ) -> List[VerificationRow]:
    """The Figure 8 comparison: 1 Gb DDR2 model vs datasheet spread."""
    return _verify(ddr2_points(), "DDR2", nodes, session=session)


def verify_ddr3(nodes: Sequence[float] = DDR3_NODES,
                session: Optional[EvaluationSession] = None
                ) -> List[VerificationRow]:
    """The Figure 9 comparison: 1 Gb DDR3 model vs datasheet spread."""
    return _verify(ddr3_points(), "DDR3", nodes, session=session)


def verification_report(rows: Iterable[VerificationRow],
                        title: str = "") -> str:
    """Render a verification run as a plain-text table."""
    rows = list(rows)
    if not rows:
        raise ValueError("no verification rows")
    nodes = sorted(rows[0].model_ma, reverse=True)
    headers = (["point", "sheet min", "sheet mean", "sheet max"]
               + [f"model {node:g}nm" for node in nodes]
               + ["model/mean"])
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.label, row.sheet_min, row.sheet_mean, row.sheet_max]
            + [row.model_ma[node] for node in nodes]
            + [round(row.ratio_to_mean, 2)]
        )
    return format_table(headers, table_rows, title=title)
