"""Machine-readable exports of every experiment's data.

Each exporter regenerates one paper artifact (figure series or table) and
writes it as CSV or JSON, so downstream tooling (plotting, regression
tracking) can consume the reproduction without importing the library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from ..devices import ddr3_2g_55nm, sensitivity_trio
from .sensitivity import sensitivity
from .trends import generation_trend, power_shift, timing_trend, \
    voltage_trend
from .verification import verify_ddr2, verify_ddr3

PathLike = Union[str, Path]


def _write_csv(path: PathLike, headers: Sequence[str],
               rows: Iterable[Sequence[object]]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_verification(path: PathLike) -> Path:
    """Figures 8 and 9 as one CSV."""
    headers = ["figure", "interface", "point", "sheet_min", "sheet_mean",
               "sheet_max", "best_model_ma", "model_over_mean"]
    rows: List[List[object]] = []
    for figure, verify in (("fig8", verify_ddr2), ("fig9", verify_ddr3)):
        for row in verify():
            rows.append([figure, row.interface, row.label,
                         row.sheet_min, row.sheet_mean, row.sheet_max,
                         round(row.best_model, 2),
                         round(row.ratio_to_mean, 3)])
    return _write_csv(path, headers, rows)


def export_sensitivity(path: PathLike) -> Path:
    """Figure 10 impacts for the three Table III devices as CSV."""
    headers = ["device", "interface", "parameter", "impact"]
    rows: List[List[object]] = []
    for device in sensitivity_trio():
        for result in sensitivity(device):
            rows.append([device.name, device.interface, result.name,
                         round(result.impact, 5)])
    return _write_csv(path, headers, rows)


def export_trends(path: PathLike) -> Path:
    """Figures 11-13 plus the §IV.B shares as one JSON document."""
    points = generation_trend()
    document: Dict[str, object] = {
        "figure11_voltages": voltage_trend(),
        "figure12_timings": timing_trend(),
        "figure13_energy": [
            {
                "node_nm": point.node_nm,
                "year": point.year,
                "interface": point.interface,
                "density_bits": point.density_bits,
                "die_area_mm2": round(point.die_area_mm2, 2),
                "array_efficiency": round(point.array_efficiency, 4),
                "idd0_ma": round(point.idd0_ma, 2),
                "idd4r_ma": round(point.idd4r_ma, 2),
                "energy_idd4_pj": round(point.energy_idd4_pj, 3),
                "energy_idd7_pj": round(point.energy_idd7_pj, 3),
            }
            for point in points
        ],
        "section4b_power_shift": power_shift(points),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    return path


def export_schemes(path: PathLike) -> Path:
    """The Section V scheme comparison as CSV."""
    from ..schemes import compare_schemes

    headers = ["scheme", "power_saving", "energy_per_bit_saving",
               "act_energy_saving", "area_overhead"]
    rows = []
    for result in compare_schemes(ddr3_2g_55nm()):
        rows.append([result.scheme,
                     round(result.power_saving, 4),
                     round(result.energy_per_bit_saving, 4),
                     round(result.act_energy_saving, 4),
                     round(result.area_overhead, 4)])
    return _write_csv(path, headers, rows)


def export_all(directory: PathLike) -> List[Path]:
    """Write every experiment export into ``directory``."""
    directory = Path(directory)
    return [
        export_verification(directory / "fig08_fig09_verification.csv"),
        export_sensitivity(directory / "fig10_sensitivity.csv"),
        export_trends(directory / "fig11_13_trends.json"),
        export_schemes(directory / "sec5_schemes.csv"),
    ]
