"""Small design-space search under feasibility constraints.

The paper positions the model as a tool "to direct optimization work".
This module closes the loop: enumerate a documented design space (page
organisation, sub-wordline length, internal voltage, stripe widths),
evaluate each point's energy per bit, filter by the §II/§V feasibility
checks, and rank what remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..core.idd import idd7_mixed
from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from ..errors import ModelError
from .checks import check_device
from .reporting import format_table

Transform = Callable[[DramDescription], Optional[DramDescription]]


@dataclass(frozen=True)
class DesignChoice:
    """One axis of the design space."""

    name: str
    options: Dict[str, Transform]
    """Option label → transformation (None result = inapplicable)."""


def _page_option(col_delta: int) -> Transform:
    def apply(device: DramDescription) -> Optional[DramDescription]:
        spec = device.spec
        try:
            modified = device.replace_path("spec.col_bits",
                                           spec.col_bits + col_delta)
            return modified.replace_path("spec.row_bits",
                                         spec.row_bits - col_delta)
        except Exception:
            return None
    return apply


def _swl_option(bits: int) -> Transform:
    def apply(device: DramDescription) -> Optional[DramDescription]:
        try:
            return device.replace_path("floorplan.array.bits_per_swl",
                                       bits)
        except Exception:
            return None
    return apply


def _vint_option(factor: float) -> Transform:
    def apply(device: DramDescription) -> Optional[DramDescription]:
        volts = device.voltages
        vint = volts.vint * factor
        if vint < volts.vbl:
            return None
        ratio = vint / volts.vdd
        return device.evolve(voltages=volts.with_levels(
            vint=vint, eff_vint=1.0 if ratio > 0.97 else ratio,
        ))
    return apply


def _stripe_option(factor: float) -> Transform:
    def apply(device: DramDescription) -> Optional[DramDescription]:
        try:
            return device.scale_path(
                "floorplan.array.width_sa_stripe", factor)
        except Exception:
            return None
    return apply


#: The documented default space (3 × 2 × 2 × 2 = 24 points).
DEFAULT_SPACE: Sequence[DesignChoice] = (
    DesignChoice("page", {
        "full-page": _page_option(0),
        "half-page": _page_option(-1),
        "double-page": _page_option(+1),
    }),
    DesignChoice("sub-wordline", {
        "512b-swl": _swl_option(512),
        "256b-swl": _swl_option(256),
    }),
    DesignChoice("vint", {
        "nominal-vint": _vint_option(1.0),
        "low-vint": _vint_option(0.93),
    }),
    DesignChoice("sa-stripe", {
        "nominal-stripe": _stripe_option(1.0),
        "lean-stripe": _stripe_option(0.85),
    }),
)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated corner of the design space."""

    labels: Dict[str, str]
    device: DramDescription
    energy_per_bit: float
    power: float
    feasible: bool
    warnings: int

    @property
    def label(self) -> str:
        return " + ".join(self.labels.values())


def explore_design_space(device: DramDescription,
                         space: Sequence[DesignChoice] = DEFAULT_SPACE,
                         evaluate=None,
                         session: Optional[EvaluationSession] = None
                         ) -> List[DesignPoint]:
    """Enumerate and rank the full design space (feasible first)."""
    evaluate = evaluate or idd7_mixed
    session = ensure_session(session)
    points: List[DesignPoint] = []

    def recurse(index: int, current: DramDescription,
                labels: Dict[str, str]) -> None:
        if index == len(space):
            try:
                result = evaluate(session.model(current))
            except Exception:
                return
            findings = check_device(current, session=session)
            warnings = sum(1 for finding in findings
                           if not finding.is_ok)
            points.append(DesignPoint(
                labels=dict(labels),
                device=current,
                energy_per_bit=result.energy_per_bit,
                power=result.power,
                feasible=warnings == 0,
                warnings=warnings,
            ))
            return
        choice = space[index]
        for option_name, transform in choice.options.items():
            candidate = transform(current)
            if candidate is None:
                continue
            labels[choice.name] = option_name
            recurse(index + 1, candidate, labels)
            del labels[choice.name]

    recurse(0, device, {})
    if not points:
        raise ModelError("no design point evaluated successfully")
    points.sort(key=lambda point: (not point.feasible,
                                   point.energy_per_bit))
    return points


def best_design(device: DramDescription,
                space: Sequence[DesignChoice] = DEFAULT_SPACE,
                session: Optional[EvaluationSession] = None
                ) -> DesignPoint:
    """The lowest-energy feasible point (falls back to overall best)."""
    points = explore_design_space(device, space, session=session)
    for point in points:
        if point.feasible:
            return point
    return points[0]


def design_space_report(points: Iterable[DesignPoint],
                        limit: int = 12) -> str:
    """Render the top of a ranked design-space exploration."""
    rows = []
    for point in list(points)[:limit]:
        rows.append([
            point.label,
            round(point.energy_per_bit * 1e12, 2),
            round(point.power * 1e3, 1),
            "yes" if point.feasible else f"no ({point.warnings})",
        ])
    return format_table(
        ["design point", "pJ/bit", "mW", "feasible"],
        rows, title="Design-space exploration (best first)",
    )
