"""Plain-text chart rendering for terminals and logs.

The paper's figures are line/bar charts; these helpers render their data
as ASCII so the examples and the CLI can show the *shapes* without any
plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, title: str = "",
              unit: str = "") -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("nothing to chart")
    if width < 4:
        raise ValueError("width must be at least 4 characters")
    peak = max(abs(value) for value in values) or 1.0
    label_width = max(len(label) for label in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        filled = abs(value) / peak * width
        whole = int(filled)
        remainder = filled - whole
        partial_index = int(remainder * (len(_BLOCKS) - 1))
        bar = "█" * whole
        if partial_index > 0 and whole < width:
            bar += _BLOCKS[partial_index]
        sign = "-" if value < 0 else ""
        lines.append(f"{label.ljust(label_width)}  {bar} "
                     f"{sign}{abs(value):.3g}{unit}")
    return "\n".join(lines)


def line_chart(xs: Sequence[float], ys: Sequence[float], height: int = 12,
               width: int = 60, title: str = "",
               log_y: bool = False) -> str:
    """A scatter/line chart drawn with dots on a character grid.

    ``log_y`` plots the y-axis logarithmically — the natural scale for
    the Figure 13 energy-per-bit decay.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if log_y and any(value <= 0 for value in ys):
        raise ValueError("log axis needs positive values")
    y_values = [math.log10(value) for value in ys] if log_y else list(ys)
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(y_values), max(y_values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, y_values):
        column = int((x - x_min) / x_span * (width - 1))
        row = int((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][column] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    top_label = f"{ys[y_values.index(y_max)]:.3g}" if log_y \
        else f"{y_max:.3g}"
    bottom_label = f"{ys[y_values.index(y_min)]:.3g}" if log_y \
        else f"{y_min:.3g}"
    for index, row in enumerate(grid):
        prefix = top_label.rjust(8) if index == 0 else (
            bottom_label.rjust(8) if index == height - 1 else " " * 8
        )
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x_min:.3g}".ljust(width - 8)
                 + f"{x_max:.3g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (eight levels)."""
    if not values:
        raise ValueError("nothing to chart")
    levels = "▁▂▃▄▅▆▇█"
    low = min(values)
    span = (max(values) - low) or 1.0
    return "".join(
        levels[int((value - low) / span * (len(levels) - 1))]
        for value in values
    )


def normalize_series(values: Sequence[float]) -> Tuple[float, ...]:
    """Scale a series so its maximum is 1 (for overlay charts)."""
    peak = max(abs(value) for value in values) or 1.0
    return tuple(value / peak for value in values)
