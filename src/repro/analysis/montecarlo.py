"""Monte-Carlo parameter-variation analysis.

Where :mod:`repro.analysis.corners` evaluates three deterministic
corners, this module samples the variation space: capacitances, device
widths and rail voltages draw from independent log-normal-ish
distributions and the resulting IDD distribution is summarised — the
statistical counterpart of the §IV.A datasheet spread, and the basis for
guard-band reasoning.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from functools import partial
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.idd import IddMeasure, measure as run_measure
from ..description import DramDescription
from ..engine import EvaluationSession, Variant, ensure_session
from ..errors import ModelError

#: Relative 1-sigma variation per parameter group (fractions).
DEFAULT_SIGMAS: Dict[str, float] = {
    "capacitance": 0.05,
    "device": 0.04,
    "voltage": 0.015,
}

_GROUP_PATHS: Dict[str, Tuple[str, ...]] = {
    "capacitance": (
        "technology.c_bitline", "technology.c_cell",
        "technology.c_wire_signal", "technology.c_wire_mwl",
        "technology.c_wire_swl", "technology.cj_logic",
        "technology.cj_hv",
    ),
    "device": (
        "technology.w_sa_n", "technology.w_sa_p", "technology.w_eq",
        "technology.w_bitswitch", "technology.w_nset",
        "technology.w_pset",
    ),
    "voltage": ("voltages.vint", "voltages.vbl"),
}


@dataclass(frozen=True)
class Distribution:
    """Summary statistics of one IDD measure's samples (mA)."""

    measure: IddMeasure
    samples: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated percentile, fraction in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ModelError("percentile fraction must be in [0, 1]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        weight = position - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def guard_band(self) -> float:
        """p95 over mean — how much a datasheet maximum exceeds typical."""
        mean = self.mean
        if mean == 0:
            return 0.0
        return self.percentile(0.95) / mean


def _measure_milliamps(model, measures: Tuple[IddMeasure, ...]
                       ) -> List[float]:
    """Worker callable: the sampled IDD currents of one model.

    Module-level (pickled via :func:`functools.partial`) so the
    process backend can ship it to worker sessions.
    """
    return [run_measure(model, which).milliamps for which in measures]


def _sample_variant(rng: random.Random,
                    sigmas: Dict[str, float]) -> Variant:
    """One random draw of the variation space as an engine variant."""
    variant = Variant()
    for group, paths in _GROUP_PATHS.items():
        sigma = sigmas.get(group, 0.0)
        if sigma <= 0:
            continue
        for path in paths:
            factor = math.exp(rng.gauss(0.0, sigma))
            variant = variant.scaled(path, factor)
    return variant


def monte_carlo(device: DramDescription,
                measures: Iterable[IddMeasure] = (
                    IddMeasure.IDD0, IddMeasure.IDD4R,
                ),
                samples: int = 50,
                sigmas: Dict[str, float] = None,
                seed: int = 1,
                session: Optional[EvaluationSession] = None,
                jobs: Optional[int] = None,
                backend: Optional[str] = None) -> List[Distribution]:
    """Sample the variation space and summarise the IDD distributions.

    The random draws depend only on ``seed``; models route through
    ``session`` and may be evaluated on ``jobs`` workers of any
    ``backend`` (thread or process) — the summaries are bit-for-bit
    identical either way.  ``backend="auto"`` with numpy installed
    folds the sample batch (one family: every draw shares the
    nominal floorplan) through the columnar vector kernel instead.
    """
    if samples <= 0:
        raise ModelError("samples must be positive")
    sigmas = dict(DEFAULT_SIGMAS if sigmas is None else sigmas)
    rng = random.Random(seed)
    session = ensure_session(session)
    measures = [IddMeasure(which) for which in measures]
    devices = [_sample_variant(rng, sigmas).apply(device)
               for _ in range(samples)]
    per_sample = session.map(
        devices,
        partial(_measure_milliamps, measures=tuple(measures)),
        jobs=jobs,
        backend=backend,
    )
    return [Distribution(measure=which,
                         samples=tuple(series[index]
                                       for series in per_sample))
            for index, which in enumerate(measures)]
