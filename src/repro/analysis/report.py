"""One-shot full reproduction report.

:func:`generate_report` runs every experiment and renders a single text
document — the complete paper reproduction at a glance, used by the CLI
``report`` command and handy for regression diffs.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.idd import standard_idd_suite
from ..devices import ddr3_2g_55nm, sensitivity_trio
from ..engine import EvaluationSession, ensure_session
from ..schemes import compare_schemes, scheme_report
from .charts import bar_chart, line_chart
from .reporting import format_table
from .sensitivity import sensitivity
from .trends import (
    energy_reduction_factors,
    generation_trend,
    power_shift,
)
from .verification import verification_report, verify_ddr2, verify_ddr3


def generate_report(session: Optional[EvaluationSession] = None) -> str:
    """Run everything and render the reproduction report.

    One shared engine session carries every experiment, so the
    reference device and the trend nodes are each built once.
    """
    session = ensure_session(session)
    sections: List[str] = []
    out = sections.append

    out("DRAM POWER MODEL - FULL REPRODUCTION REPORT")
    out("(Vogelsang, 'Understanding the Energy Consumption of DRAMs', "
        "MICRO 2010)")
    out("")

    # --- headline device ------------------------------------------------
    device = ddr3_2g_55nm()
    model = session.model(device)
    out(format_table(
        ["measure", "mA"],
        [[result.measure.value, round(result.milliamps, 1)]
         for result in standard_idd_suite(model).values()],
        title=f"Reference device: {device.name}",
    ))
    out("")

    # --- verification ----------------------------------------------------
    ddr2_rows = verify_ddr2(session=session)
    ddr3_rows = verify_ddr3(session=session)
    out(verification_report(ddr2_rows,
                            title="Figure 8 - 1G DDR2 vs datasheets (mA)"))
    out("")
    out(verification_report(ddr3_rows,
                            title="Figure 9 - 1G DDR3 vs datasheets (mA)"))
    hits = sum(row.within_spread(0.25)
               for row in ddr2_rows + ddr3_rows)
    out(f"\npoints inside the widened vendor spread: "
        f"{hits}/{len(ddr2_rows) + len(ddr3_rows)}")
    out("")

    # --- sensitivity ------------------------------------------------------
    results = sensitivity(device, session=session)
    out(bar_chart(
        [result.name for result in results],
        [result.impact * 100 for result in results],
        title=f"Figure 10 - impact of +/-20% variation on "
              f"{device.name} (%)",
        unit="%",
    ))
    out("")
    rankings = {d.interface:
                [r.name for r in
                 sensitivity(d, session=session)[:10]]
                for d in sensitivity_trio()}
    out(format_table(
        ["#", "SDR 170nm", "DDR3 55nm", "DDR5 18nm"],
        [[i + 1, rankings["SDR"][i], rankings["DDR3"][i],
          rankings["DDR5"][i]] for i in range(10)],
        title="Table III - top-10 sensitivity ranking",
    ))
    out("")

    # --- trends -------------------------------------------------------------
    points = generation_trend(session=session)
    out(line_chart(
        [point.node_nm for point in points],
        [point.energy_idd7_pj for point in points],
        log_y=True,
        title="Figure 13 - energy per bit vs node (log pJ/bit; x = nm)",
    ))
    early, late = energy_reduction_factors(points)
    out(f"\nreduction per generation: {early:.2f}x (170->44nm), "
        f"{late:.2f}x (44->16nm); paper: ~1.5x and ~1.2x")
    out("")
    out(format_table(
        ["node nm", "row ops", "column ops", "background"],
        [[row["node_nm"], f"{row['row_share']:.0%}",
          f"{row['column_share']:.0%}",
          f"{row['background_share']:.0%}"]
         for row in power_shift(points)],
        title="Section IV.B - power shift away from row operations",
    ))
    out("")

    # --- schemes ---------------------------------------------------------------
    out(scheme_report(compare_schemes(device, session=session),
                      title=f"Section V - schemes on {device.name}"))
    out("")
    return "\n".join(sections)
