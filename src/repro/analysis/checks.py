"""Feasibility checks for device descriptions (paper §II / §V).

The paper stresses that power proposals must be judged by their die-size
and process impact: the bitline sense-amplifier stripes occupy 8-15 % of
a typical commodity die, the local wordline driver stripes 5-10 %, the
die should sit near 40-60 mm² with high array efficiency.  This module
turns those feasibility rules into a checker that returns structured
warnings — used by the CLI ``check`` command and available to scheme
studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session

#: Feasibility bands (paper §II and §IV.C), with engineering slack.
SA_STRIPE_BAND = (0.05, 0.22)
SWD_STRIPE_BAND = (0.03, 0.12)
ARRAY_EFFICIENCY_BAND = (0.40, 0.70)
DIE_AREA_BAND_MM2 = (20.0, 100.0)
DIE_ASPECT_LIMIT = 4.0


@dataclass(frozen=True)
class CheckResult:
    """One feasibility finding."""

    check: str
    severity: str
    """``ok``, ``warning`` or ``error``."""
    message: str
    value: float

    @property
    def is_ok(self) -> bool:
        return self.severity == "ok"


def _banded(check: str, value: float, band, unit: str,
            description: str) -> CheckResult:
    low, high = band
    if low <= value <= high:
        severity = "ok"
        message = f"{description}: {value:.3g}{unit} within " \
                  f"[{low:g}, {high:g}]{unit}"
    else:
        severity = "warning"
        message = (f"{description}: {value:.3g}{unit} outside "
                   f"[{low:g}, {high:g}]{unit}")
    return CheckResult(check=check, severity=severity, message=message,
                       value=value)


def check_device(device: DramDescription,
                 session: Optional[EvaluationSession] = None
                 ) -> List[CheckResult]:
    """Run all feasibility checks; returns one result per check.

    The floorplan geometry comes from the session's cached model, so
    a checker that follows an evaluation pays nothing extra.
    """
    geometry = ensure_session(session).model(device).geometry
    results = [
        _banded("sa_stripe_share", geometry.sa_stripe_share,
                SA_STRIPE_BAND, "",
                "bitline sense-amplifier stripe share of die"),
        _banded("swd_stripe_share", geometry.swd_stripe_share,
                SWD_STRIPE_BAND, "",
                "local wordline driver stripe share of die"),
        _banded("array_efficiency", geometry.array_efficiency,
                ARRAY_EFFICIENCY_BAND, "",
                "array efficiency (cell area / die area)"),
        _banded("die_area", geometry.die_area * 1e6, DIE_AREA_BAND_MM2,
                "mm2", "die area"),
    ]
    aspect = max(geometry.die_width, geometry.die_height) \
        / min(geometry.die_width, geometry.die_height)
    if aspect <= DIE_ASPECT_LIMIT:
        results.append(CheckResult(
            "die_aspect", "ok",
            f"die aspect ratio {aspect:.2f} within {DIE_ASPECT_LIMIT:g}",
            aspect,
        ))
    else:
        results.append(CheckResult(
            "die_aspect", "warning",
            f"die aspect ratio {aspect:.2f} exceeds "
            f"{DIE_ASPECT_LIMIT:g} — unmanufacturable floorplan",
            aspect,
        ))
    # Vpp headroom: the boost must clear the bitline level by an access
    # transistor threshold (the reason for the Vpp domain, §III.A).
    headroom = device.voltages.vpp - device.voltages.vbl
    if headroom >= 0.8:
        results.append(CheckResult(
            "vpp_headroom", "ok",
            f"wordline boost headroom {headroom:.2f} V", headroom,
        ))
    else:
        results.append(CheckResult(
            "vpp_headroom", "warning",
            f"wordline boost headroom only {headroom:.2f} V — full "
            "write-back through the cell transistor is at risk",
            headroom,
        ))
    return results


def is_feasible(device: DramDescription,
                session: Optional[EvaluationSession] = None) -> bool:
    """True when no check raises a warning or error."""
    return all(result.is_ok
               for result in check_device(device, session=session))
