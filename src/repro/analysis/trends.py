"""Generation trends (paper §IV.C, Figures 11-13, and the §IV.B shift).

Sweeps the mainstream device of every roadmap node and reports voltages
(Figure 11), data-rate and row-timing trends (Figure 12), die area and
energy per bit (Figure 13), and the share of power spent in row
operations vs column operations plus background logic — the §IV.B
observation that power moves away from the cell array into wiring and
peripheral logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Component
from ..core.idd import idd4r, idd4w, idd7_mixed, idd0
from ..devices import build_device
from ..engine import EvaluationSession, ensure_session
from ..technology.roadmap import ROADMAP, RoadmapEntry, nodes
from ..units import pj_per_bit


@dataclass(frozen=True)
class GenerationPoint:
    """One generation's measured model figures (Figures 11-13)."""

    node_nm: float
    year: int
    interface: str
    datarate: float
    prefetch: int
    core_frequency: float
    vdd: float
    vint: float
    vbl: float
    vpp: float
    trc: float
    density_bits: int
    die_area_mm2: float
    array_efficiency: float
    idd0_ma: float
    idd4r_ma: float
    idd4w_ma: float
    energy_idd4_pj: float
    """Energy per bit of a gapless read/write stream (pJ) — row open."""
    energy_idd7_pj: float
    """Energy per bit of the interleaved Idd7-style pattern (pJ)."""
    row_power_share: float
    """Share of Idd7-pattern power spent on activate+precharge."""
    column_power_share: float
    """Share spent on read/write operations."""
    background_power_share: float
    """Share spent on always-on clock/control/power circuitry."""
    array_component_share: float
    """Share of Idd7 power in array components (bitline, SA, wordline)."""


def _built_model(model):
    """Worker callable: the built model itself (identity).

    Module-level so the process backend can pickle it; workers then
    ship whole built models back to the parent.
    """
    return model


def generation_trend(io_width: int = 16,
                     node_list: Sequence[float] = None,
                     session: Optional[EvaluationSession] = None,
                     jobs: Optional[int] = None,
                     backend: Optional[str] = None
                     ) -> List[GenerationPoint]:
    """Evaluate the mainstream device of each roadmap node.

    Models route through ``session``; ``jobs``/``backend`` evaluate
    the nodes on a thread or process pool with identical,
    node-ordered results.  Every node has its own floorplan, so the
    columnar vector kernel finds no batchable family here and
    ``backend="auto"`` stays on the scalar paths.
    """
    session = ensure_session(session)
    node_nms = list(node_list or nodes())
    devices = [build_device(node_nm, io_width=io_width)
               for node_nm in node_nms]
    models = session.map(devices, _built_model, jobs=jobs,
                         backend=backend)
    points: List[GenerationPoint] = []
    for node_nm, device, model in zip(node_nms, devices, models):
        entry: RoadmapEntry = ROADMAP[node_nm]
        geometry = model.geometry
        r4 = idd4r(model)
        w4 = idd4w(model)
        bandwidth = device.spec.peak_bandwidth
        energy_idd4 = pj_per_bit(
            (r4.power.power + w4.power.power) / 2.0, bandwidth
        )
        mixed = idd7_mixed(model)
        ops = mixed.operation_power
        total = mixed.power
        row_power = ops.get("act", 0.0) + ops.get("pre", 0.0)
        col_power = ops.get("rd", 0.0) + ops.get("wr", 0.0)
        background = ops.get("background", 0.0)
        array_share = sum(
            mixed.breakdown.share(component)
            for component in (Component.BITLINE, Component.SENSE_AMP,
                              Component.WORDLINE)
        )
        points.append(GenerationPoint(
            node_nm=node_nm,
            year=entry.year,
            interface=entry.interface,
            datarate=device.spec.datarate,
            prefetch=device.spec.prefetch,
            core_frequency=device.spec.core_access_rate,
            vdd=device.voltages.vdd,
            vint=device.voltages.vint,
            vbl=device.voltages.vbl,
            vpp=device.voltages.vpp,
            trc=device.timing.trc,
            density_bits=device.spec.density_bits,
            die_area_mm2=geometry.die_area * 1e6,
            array_efficiency=geometry.array_efficiency,
            idd0_ma=idd0(model).milliamps,
            idd4r_ma=r4.milliamps,
            idd4w_ma=w4.milliamps,
            energy_idd4_pj=energy_idd4,
            energy_idd7_pj=mixed.energy_per_bit_pj,
            row_power_share=row_power / total,
            column_power_share=col_power / total,
            background_power_share=background / total,
            array_component_share=array_share,
        ))
    return points


def voltage_trend() -> List[Dict[str, float]]:
    """Figure 11: the four voltages per node, straight from the roadmap."""
    return [
        {
            "node_nm": entry.node_nm,
            "year": float(entry.year),
            "vdd": entry.vdd,
            "vint": entry.vint,
            "vbl": entry.vbl,
            "vpp": entry.vpp,
        }
        for entry in (ROADMAP[node] for node in nodes())
    ]


def timing_trend() -> List[Dict[str, float]]:
    """Figure 12: data rate, core frequency and row timings per node."""
    return [
        {
            "node_nm": entry.node_nm,
            "datarate_gbps": entry.datarate / 1e9,
            "core_frequency_mhz": entry.core_frequency / 1e6,
            "prefetch": float(entry.prefetch),
            "trc_ns": entry.trc * 1e9,
            "trrd_ns": entry.trrd * 1e9,
        }
        for entry in (ROADMAP[node] for node in nodes())
    ]


def energy_reduction_factors(points: Sequence[GenerationPoint],
                             split_node_nm: float = 44.0
                             ) -> Tuple[float, float]:
    """Average per-generation energy reduction before/after a split node.

    The paper reports ≈1.5× per generation from the 170 nm to the 44 nm
    generation (2000-2010) and only ≈1.2× per generation in the forecast
    to the 16 nm generation — the flattening caused by slowing voltage
    scaling.
    """
    ordered = sorted(points, key=lambda point: -point.node_nm)
    early = [point for point in ordered if point.node_nm >= split_node_nm]
    late = [point for point in ordered if point.node_nm <= split_node_nm]

    def factor(series: Sequence[GenerationPoint]) -> float:
        if len(series) < 2:
            return 1.0
        first = series[0].energy_idd7_pj
        last = series[-1].energy_idd7_pj
        steps = len(series) - 1
        return (first / last) ** (1.0 / steps)

    return factor(early), factor(late)


def power_shift(points: Sequence[GenerationPoint]
                ) -> List[Dict[str, float]]:
    """§IV.B: the shift from row-operation power to column/logic power."""
    return [
        {
            "node_nm": point.node_nm,
            "row_share": point.row_power_share,
            "column_share": point.column_power_share,
            "background_share": point.background_power_share,
            "array_component_share": point.array_component_share,
        }
        for point in points
    ]
