"""Parameter sensitivity Pareto (paper §IV.B, Figure 10 and Table III).

Each named parameter — some single description fields, some composites
matching the paper's vocabulary ("Specific wire capacitance", "Number of
logic gates"…) — is varied by ±20 % and the change in pattern power is
recorded.  The pattern is the paper's: an Idd7-equivalent loop with half
of the reads replaced by writes.

A variation impact of 40 % would mean power is directly proportional to
the parameter; that holds only for the external supply voltage, which the
paper excludes from the chart — :func:`external_voltage_proportionality`
demonstrates it separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..description import DramDescription
from ..core.idd import idd7_mixed
from ..engine import EvaluationSession, Variant, ensure_session, scaling


def _scale_paths(paths: Sequence[str]) -> Callable[[DramDescription, float],
                                                   DramDescription]:
    def apply(device: DramDescription, factor: float) -> DramDescription:
        return scaling(paths, factor).apply(device)
    return apply


def _scale_logic(field: str) -> Callable[[DramDescription, float],
                                         DramDescription]:
    def apply(device: DramDescription, factor: float) -> DramDescription:
        return Variant().scaled_logic(field, factor).apply(device)
    return apply


@dataclass(frozen=True)
class SensitivityParameter:
    """One row of the Figure 10 Pareto."""

    name: str
    """Label matching the paper's Table III vocabulary."""
    apply: Callable[[DramDescription, float], DramDescription]
    """Returns a device with the parameter scaled by a factor."""
    group: str = "technology"
    """Loose grouping: voltage, array, wiring, logic, power."""


def _scale_efficiency(field: str) -> Callable[[DramDescription, float],
                                              DramDescription]:
    """Scale a generator efficiency, clamped to its physical ceiling of 1."""
    def apply(device: DramDescription, factor: float) -> DramDescription:
        volts = device.voltages
        value = min(1.0, getattr(volts, field) * factor)
        return device.evolve(voltages=volts.with_levels(**{field: value}))
    return apply


def _scale_rail(level_field: str,
                eff_field: str) -> Callable[[DramDescription, float],
                                            DramDescription]:
    """Scale a rail voltage with its supply *topology* held fixed.

    A linear regulator delivers the rail charge at the cost of the same
    current from Vdd, and a pump at a fixed current multiple — so the
    generator efficiency is proportional to the rail level.  Varying the
    rail therefore co-scales the efficiency (clamped at 1), making the
    power response linear in the rail voltage.  This matches the paper's
    accounting, where only the external supply voltage moves power fully
    proportionally (§IV.B).

    On old high-voltage generations Vint sits at Vdd (direct
    connection); there the supply is lifted along to keep the
    description valid, which — correctly — makes the response quadratic,
    since charge and voltage scale together.
    """
    def apply(device: DramDescription, factor: float) -> DramDescription:
        volts = device.voltages
        level = getattr(volts, level_field) * factor
        overrides = {level_field: level}
        efficiency = getattr(volts, eff_field)
        if efficiency < 1.0:
            overrides[eff_field] = min(1.0, efficiency * factor)
        if level_field == "vint" and level > volts.vdd:
            overrides["vdd"] = level
        if level_field == "vbl" and level > volts.vpp:
            overrides["vpp"] = level
        return device.evolve(voltages=volts.with_levels(**overrides))
    return apply


#: The parameter set of the Figure 10 study.
PARAMETERS: Tuple[SensitivityParameter, ...] = (
    SensitivityParameter("Internal voltage Vint",
                         _scale_rail("vint", "eff_vint"), "voltage"),
    SensitivityParameter("Bitline voltage",
                         _scale_rail("vbl", "eff_vbl"), "voltage"),
    SensitivityParameter("Wordline voltage Vpp",
                         _scale_rail("vpp", "eff_vpp"), "voltage"),
    SensitivityParameter("Vpp pump efficiency", _scale_efficiency("eff_vpp"),
                         "power"),
    SensitivityParameter("Bitline capacitance",
                         _scale_paths(["technology.c_bitline"]), "array"),
    SensitivityParameter("Cell capacitance",
                         _scale_paths(["technology.c_cell"]), "array"),
    SensitivityParameter(
        "Specific wire capacitance",
        _scale_paths(["technology.c_wire_signal",
                      "technology.c_wire_mwl",
                      "technology.c_wire_swl"]),
        "wiring",
    ),
    SensitivityParameter(
        "Gate oxide thickness",
        _scale_paths(["technology.tox_logic", "technology.tox_hv",
                      "technology.tox_cell"]),
        "technology",
    ),
    SensitivityParameter(
        "Junction capacitance logic",
        _scale_paths(["technology.cj_logic", "technology.cj_hv"]),
        "technology",
    ),
    SensitivityParameter(
        "Sense amplifier device width",
        _scale_paths(["technology.w_sa_n", "technology.w_sa_p",
                      "technology.w_eq", "technology.w_bitswitch",
                      "technology.w_nset", "technology.w_pset"]),
        "array",
    ),
    SensitivityParameter(
        "Sub-wordline driver width",
        _scale_paths(["technology.w_swd_n", "technology.w_swd_p",
                      "technology.w_swd_restore"]),
        "array",
    ),
    SensitivityParameter(
        "Cell access transistor size",
        _scale_paths(["technology.w_cell", "technology.l_cell"]),
        "array",
    ),
    SensitivityParameter("Number of logic gates",
                         _scale_logic("n_gates"), "logic"),
    SensitivityParameter("Width NFET logic", _scale_logic("w_n"), "logic"),
    SensitivityParameter("Width PFET logic", _scale_logic("w_p"), "logic"),
    SensitivityParameter("Logic device density",
                         _scale_logic("layout_density"), "logic"),
    SensitivityParameter("Logic wiring density",
                         _scale_logic("wiring_density"), "logic"),
    SensitivityParameter("Constant current adder",
                         _scale_paths(["constant_current"]), "power"),
)


@dataclass(frozen=True)
class SensitivityResult:
    """Impact of one parameter's ±variation on pattern power."""

    name: str
    group: str
    power_base: float
    """Pattern power at nominal (W)."""
    power_low: float
    """Pattern power at (1 - variation) (W)."""
    power_high: float
    """Pattern power at (1 + variation) (W)."""

    @property
    def impact(self) -> float:
        """(P(+v) − P(−v)) / P(nominal) — the Figure 10 y-axis."""
        return (self.power_high - self.power_low) / self.power_base

    @property
    def magnitude(self) -> float:
        """Absolute impact, used for ranking."""
        return abs(self.impact)


def _pattern_power(device: DramDescription,
                   session: Optional[EvaluationSession] = None) -> float:
    return idd7_mixed(ensure_session(session).model(device)).power


def _idd7_power(model) -> float:
    """Worker callable: Idd7-mixed pattern power of one built model.

    Module-level so the process backend can pickle it to workers.
    """
    return idd7_mixed(model).power


def sensitivity(device: DramDescription, variation: float = 0.2,
                parameters: Sequence[SensitivityParameter] = PARAMETERS,
                session: Optional[EvaluationSession] = None,
                jobs: Optional[int] = None,
                backend: Optional[str] = None) -> List[SensitivityResult]:
    """The Figure 10 study: vary each parameter ±``variation``.

    Returns results sorted by impact magnitude, largest first.  All
    device models route through ``session`` (a private one when
    omitted); ``jobs``/``backend`` evaluate the variants on a thread
    or process pool with results identical to the serial run.  With
    ``backend="auto"`` and numpy installed the sweep — one batchable
    family sharing the nominal floorplan — folds through the columnar
    vector kernel (:mod:`repro.engine.vector`), identical ordering
    and ~1e-15-relative powers.
    """
    if not 0.0 < variation < 1.0:
        raise ValueError("variation must be a fraction in (0, 1)")
    session = ensure_session(session)
    devices = [device]
    for parameter in parameters:
        devices.append(parameter.apply(device, 1.0 - variation))
        devices.append(parameter.apply(device, 1.0 + variation))
    powers = session.map(devices, _idd7_power, jobs=jobs,
                         backend=backend)
    base = powers[0]
    results = []
    for index, parameter in enumerate(parameters):
        results.append(SensitivityResult(
            name=parameter.name,
            group=parameter.group,
            power_base=base,
            power_low=powers[1 + 2 * index],
            power_high=powers[2 + 2 * index],
        ))
    results.sort(key=lambda result: -result.magnitude)
    return results


def top_ranking(device: DramDescription, count: int = 10,
                variation: float = 0.2,
                session: Optional[EvaluationSession] = None) -> List[str]:
    """The Table III column for one device: top-N parameter names."""
    return [result.name
            for result in sensitivity(device, variation,
                                      session=session)[:count]]


def external_voltage_proportionality(device: DramDescription,
                                     factor: float = 1.2,
                                     session: Optional[EvaluationSession]
                                     = None) -> float:
    """Relative power change when Vdd scales by ``factor``.

    The generators hold a fixed *current* ratio between Vdd and each
    internal rail, so raising Vdd by 20 % raises power by 20 % — the only
    parameter power is directly proportional to (paper §IV.B).  The rail
    efficiencies are rescaled accordingly (efficiency ∝ V_rail / Vdd).
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1 (efficiencies stay valid)")
    session = ensure_session(session)
    base = _pattern_power(device, session)
    volts = device.voltages
    scaled = volts.with_levels(
        vdd=volts.vdd * factor,
        eff_vint=(volts.eff_vint / factor if volts.eff_vint < 1.0
                  else volts.vint / (volts.vdd * factor)),
        eff_vbl=volts.eff_vbl / factor,
        eff_vpp=volts.eff_vpp / factor,
    )
    high = _pattern_power(device.evolve(voltages=scaled), session)
    return high / base - 1.0
