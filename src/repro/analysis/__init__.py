"""Analysis suite: the paper's evaluation experiments.

* :mod:`repro.analysis.verification` — model vs datasheet comparison
  (Figures 8 and 9);
* :mod:`repro.analysis.sensitivity` — ±20 % parameter variation Pareto
  and top-10 ranking (Figure 10, Table III);
* :mod:`repro.analysis.trends`      — generation sweep: voltages, timings,
  die area and energy per bit (Figures 11-13) and the array→logic power
  shift (§IV.B);
* :mod:`repro.analysis.reporting`   — plain-text table rendering shared by
  the examples and the benchmark harness.
"""

from .verification import (
    VerificationRow,
    verify_ddr2,
    verify_ddr3,
    verification_report,
)
from .sensitivity import (
    PARAMETERS,
    SensitivityParameter,
    SensitivityResult,
    external_voltage_proportionality,
    sensitivity,
    top_ranking,
)
from .trends import (
    GenerationPoint,
    energy_reduction_factors,
    generation_trend,
    power_shift,
    timing_trend,
    voltage_trend,
)
from .reporting import format_table
from .checks import CheckResult, check_device, is_feasible
from .calibration import (
    CalibrationResult,
    CalibrationTarget,
    calibrate_logic,
)
from .export import (
    export_all,
    export_schemes,
    export_sensitivity,
    export_trends,
    export_verification,
)
from .corners import (
    Corner,
    CornerBand,
    STANDARD_CORNERS,
    VENDOR_SPREAD_CORNERS,
    corner_sweep,
)
from .peak_current import (
    PeakCurrent,
    peak_current,
    peak_current_table,
    peak_to_average_ratio,
)
from .breakdown import breakdown_matrix, breakdown_report
from .compare import compare_report, diff_devices
from .montecarlo import Distribution, monte_carlo
from .optimizer import (
    DesignChoice,
    DesignPoint,
    best_design,
    design_space_report,
    explore_design_space,
)
from .whatif import sensitivity_slope, sweep_parameter, sweep_report

__all__ = [
    "CheckResult",
    "check_device",
    "is_feasible",
    "CalibrationResult",
    "CalibrationTarget",
    "calibrate_logic",
    "export_all",
    "export_schemes",
    "export_sensitivity",
    "export_trends",
    "export_verification",
    "Corner",
    "CornerBand",
    "STANDARD_CORNERS",
    "VENDOR_SPREAD_CORNERS",
    "corner_sweep",
    "PeakCurrent",
    "peak_current",
    "peak_current_table",
    "peak_to_average_ratio",
    "breakdown_matrix",
    "breakdown_report",
    "compare_report",
    "diff_devices",
    "Distribution",
    "monte_carlo",
    "DesignChoice",
    "DesignPoint",
    "best_design",
    "design_space_report",
    "explore_design_space",
    "sensitivity_slope",
    "sweep_parameter",
    "sweep_report",
    "VerificationRow",
    "verify_ddr2",
    "verify_ddr3",
    "verification_report",
    "PARAMETERS",
    "SensitivityParameter",
    "SensitivityResult",
    "external_voltage_proportionality",
    "sensitivity",
    "top_ranking",
    "GenerationPoint",
    "energy_reduction_factors",
    "generation_trend",
    "power_shift",
    "timing_trend",
    "voltage_trend",
    "format_table",
]
