"""Datasheet calibration: fit logic-block gate counts to IDD targets.

Paper §III.B.5: "The number of gates in these circuits is used as fit
parameter to fit the model output to known DRAM power values, e.g. from
DRAM data sheets."  This module automates that step: given a device and a
set of IDD targets, it searches multiplicative scale factors for the
peripheral logic blocks (and optionally the constant current) that
minimise the weighted squared log-error of the modeled currents.

The optimiser is a deterministic coordinate descent with a shrinking
step — the objective is smooth and low-dimensional, so nothing fancier
is warranted (and no external dependency is needed).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.idd import IddMeasure, measure as run_measure
from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from ..errors import ModelError

#: Blocks whose gate counts are considered free fit parameters.
DEFAULT_FIT_BLOCKS: Tuple[str, ...] = (
    "control", "rowlogic", "collogic", "datapath", "interface", "dll",
)


@dataclass(frozen=True)
class CalibrationTarget:
    """One datasheet value to fit against."""

    measure: IddMeasure
    milliamps: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "measure", IddMeasure(self.measure))
        if self.milliamps <= 0:
            raise ModelError("target current must be positive")
        if self.weight <= 0:
            raise ModelError("target weight must be positive")


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    device: DramDescription
    """The device with fitted gate counts."""
    scale_factors: Dict[str, float]
    """Fitted multiplier per logic block."""
    initial_error: float
    """RMS log-error before fitting."""
    final_error: float
    """RMS log-error after fitting."""
    residuals: Dict[IddMeasure, float]
    """model/target ratio per measure after fitting."""

    @property
    def improved(self) -> bool:
        """True when fitting reduced the error."""
        return self.final_error <= self.initial_error + 1e-12


def _apply_scales(device: DramDescription,
                  scales: Dict[str, float]) -> DramDescription:
    blocks = []
    for block in device.logic_blocks:
        factor = scales.get(block.name, 1.0)
        if factor == 1.0:
            blocks.append(block)
        else:
            gates = max(1, int(round(block.n_gates * factor)))
            blocks.append(dataclasses.replace(block, n_gates=gates))
    return device.evolve(logic_blocks=tuple(blocks))


def _error(device: DramDescription,
           targets: Sequence[CalibrationTarget],
           session: EvaluationSession) -> float:
    model = session.model(device)
    total = 0.0
    weight_sum = 0.0
    for target in targets:
        current = run_measure(model, target.measure).milliamps
        total += target.weight * math.log(current
                                          / target.milliamps) ** 2
        weight_sum += target.weight
    return math.sqrt(total / weight_sum)


def calibrate_logic(device: DramDescription,
                    targets: Iterable[CalibrationTarget],
                    blocks: Sequence[str] = DEFAULT_FIT_BLOCKS,
                    iterations: int = 20,
                    initial_step: float = 0.5,
                    bounds: Tuple[float, float] = (0.2, 5.0),
                    session: Optional[EvaluationSession] = None
                    ) -> CalibrationResult:
    """Fit the gate counts of ``blocks`` to the IDD ``targets``.

    Coordinate descent over log-scale multipliers: each sweep tries
    increasing and decreasing every block's multiplier by the current
    step and keeps improvements; the step halves whenever a full sweep
    makes no progress.  Multipliers are clamped to ``bounds`` — a fit
    wanting more than 5× the starting gate count indicates the
    description, not the periphery, is wrong.  The descent revisits
    coordinates as the step shrinks, so routing every point through a
    ``session`` model cache removes the repeated rebuilds.
    """
    targets = list(targets)
    if not targets:
        raise ModelError("calibration needs at least one target")
    session = ensure_session(session)
    names = [name for name in blocks
             if any(block.name == name for block in device.logic_blocks)]
    if not names:
        raise ModelError("no fit blocks present on the device")

    scales: Dict[str, float] = {name: 1.0 for name in names}
    initial = _error(device, targets, session)
    best = initial
    step = initial_step
    low, high = bounds

    for _ in range(iterations):
        improved = False
        for name in names:
            for factor in (1.0 + step, 1.0 / (1.0 + step)):
                candidate = dict(scales)
                candidate[name] = min(high, max(low,
                                                scales[name] * factor))
                if candidate[name] == scales[name]:
                    continue
                error = _error(_apply_scales(device, candidate),
                               targets, session)
                if error < best - 1e-12:
                    best = error
                    scales = candidate
                    improved = True
        if not improved:
            step /= 2.0
            if step < 0.01:
                break

    fitted = _apply_scales(device, scales)
    model = session.model(fitted)
    residuals = {
        target.measure:
            run_measure(model, target.measure).milliamps
            / target.milliamps
        for target in targets
    }
    return CalibrationResult(
        device=fitted,
        scale_factors=scales,
        initial_error=initial,
        final_error=best,
        residuals=residuals,
    )
