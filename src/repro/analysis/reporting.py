"""Plain-text report rendering shared by examples and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Numeric cells are right-aligned, text cells left-aligned; floats are
    shown with one decimal.
    """
    rendered_rows: List[List[str]] = []
    numeric = [True] * len(headers)
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            if isinstance(cell, float):
                cells.append(f"{cell:.1f}")
            else:
                cells.append(str(cell))
                if not isinstance(cell, (int, float)):
                    numeric[index] = False
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(headers)}"
            )
        rendered_rows.append(cells)
    widths = [len(header) for header in headers]
    for cells in rendered_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def render(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index] and cell != headers[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render(cells) for cells in rendered_rows)
    return "\n".join(lines)
