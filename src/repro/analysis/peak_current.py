"""Peak (instantaneous) rail-current estimation.

Average IDD values hide the fact that an activate delivers most of its
charge in a few nanoseconds: the bitline sensing charge flows within the
sensing window, the wordline charge during the wordline rise.  Peak
current drives the on-die power-grid and external-decoupling design — the
reason high-performance DRAMs spend a fourth metal level on power wiring
(paper §II).

The estimator assigns every per-operation charge event a delivery window
(a documented fraction of the operation's natural duration) and reports
the resulting rail currents; the worst case across operations is the
figure a power-grid designer would size for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..core import DramPowerModel
from ..core.operations import command_activity_time, firings_per_command
from ..description import Command, DramDescription, Rail
from ..engine import EvaluationSession, ensure_session

ModelOrDevice = Union[DramPowerModel, DramDescription]


def _as_model(target: ModelOrDevice,
              session: Optional[EvaluationSession] = None
              ) -> DramPowerModel:
    """Accept a built model or a description (routed via the engine)."""
    if isinstance(target, DramPowerModel):
        return target
    return ensure_session(session).model(target)

#: Charge-delivery windows as fractions of the operation duration:
#: sensing dumps the bitline charge in roughly a third of tRCD-ish time,
#: wordline and control edges are faster still.
DELIVERY_FRACTION: Dict[Rail, float] = {
    Rail.VBL: 0.30,
    Rail.VPP: 0.20,
    Rail.VINT: 0.50,
    Rail.VDD: 0.50,
}

#: Duration base per command: row commands deliver within tRCD, column
#: commands within the burst.
def _operation_window(model: DramPowerModel, command: Command) -> float:
    if command in (Command.ACT, Command.PRE):
        return model.device.timing.trcd
    return command_activity_time(model.device, command)


@dataclass(frozen=True)
class PeakCurrent:
    """Peak rail currents during one command."""

    command: Command
    rail_currents: Dict[Rail, float]
    """Peak current per internal rail (A at the rail)."""
    vdd_current: float
    """Total peak current referred to the external supply (A)."""

    @property
    def worst_rail(self) -> Rail:
        """The rail with the highest peak current."""
        return max(self.rail_currents, key=self.rail_currents.get)


def peak_current(model: ModelOrDevice, command: Command,
                 session: Optional[EvaluationSession] = None
                 ) -> PeakCurrent:
    """Estimate the peak rail currents of one command occurrence.

    ``model`` may be a built :class:`DramPowerModel` or a plain
    description; descriptions are built through ``session``.
    """
    model = _as_model(model, session)
    command = Command(command)
    window = _operation_window(model, command)
    rail_charge: Dict[Rail, float] = {rail: 0.0 for rail in Rail}
    for event in model.events:
        if event.is_background:
            continue
        firings = firings_per_command(model.device, event, command)
        if not firings:
            continue
        rail_charge[event.rail] += event.charge_per_firing * firings
    rail_currents = {}
    vdd_total = 0.0
    volts = model.device.voltages
    for rail, charge in rail_charge.items():
        if charge == 0.0:
            continue
        delivery = window * DELIVERY_FRACTION[rail]
        current = charge / delivery
        rail_currents[rail] = current
        # Refer through the generator: same energy over the same window.
        vdd_total += volts.vdd_energy(charge, rail) / volts.vdd / delivery
    return PeakCurrent(command=command, rail_currents=rail_currents,
                       vdd_current=vdd_total)


def peak_current_table(model: ModelOrDevice,
                       commands: Iterable[Command] = (
                           Command.ACT, Command.PRE, Command.RD,
                           Command.WR,
                       ),
                       session: Optional[EvaluationSession] = None
                       ) -> List[PeakCurrent]:
    """Peak currents for each command, worst first."""
    model = _as_model(model, session)
    results = [peak_current(model, command) for command in commands]
    results.sort(key=lambda result: -result.vdd_current)
    return results


def peak_to_average_ratio(model: ModelOrDevice,
                          session: Optional[EvaluationSession] = None
                          ) -> float:
    """Peak activate Vdd current over the IDD0 average current.

    The activate dumps its bitline charge in a fraction of the row
    cycle, so the instantaneous draw sits several times above the
    row-cycling average — the transient the decoupling network must ride
    out.
    """
    from ..core.idd import idd0

    model = _as_model(model, session)
    peak = peak_current(model, Command.ACT).vdd_current
    average = idd0(model).current
    return peak / average
