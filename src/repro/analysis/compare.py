"""Side-by-side device comparison.

Diffs two device descriptions (parameters that differ) and their power
figures — the quickest way to understand *why* one design draws more
than another.  Used by the CLI ``compare`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.idd import standard_idd_suite
from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from .reporting import format_table


@dataclass(frozen=True)
class ParameterDiff:
    """One differing parameter."""

    path: str
    left: object
    right: object

    @property
    def ratio(self) -> float:
        """right/left for numeric values, nan otherwise."""
        try:
            return float(self.right) / float(self.left)
        except (TypeError, ValueError, ZeroDivisionError):
            return float("nan")


_SCALAR_PATHS = (
    ["voltages." + name for name in
     ("vdd", "vint", "vbl", "vpp", "eff_vint", "eff_vbl", "eff_vpp")]
    + ["spec." + name for name in
       ("io_width", "datarate", "prefetch", "bank_bits", "row_bits",
        "col_bits", "f_ctrlclock")]
    + ["timing." + name for name in ("trc", "trrd", "tfaw")]
    + ["constant_current"]
)


def diff_devices(left: DramDescription,
                 right: DramDescription) -> List[ParameterDiff]:
    """All scalar description parameters that differ."""
    diffs: List[ParameterDiff] = []
    paths = list(_SCALAR_PATHS)
    paths.extend(f"technology.{name}" for name, _ in
                 left.technology.items())
    for path in paths:
        left_value = left.get_path(path)
        right_value = right.get_path(path)
        if left_value != right_value:
            diffs.append(ParameterDiff(path=path, left=left_value,
                                       right=right_value))
    if left.floorplan.array != right.floorplan.array:
        for field in ("bitline_arch", "bits_per_bitline", "bits_per_swl",
                      "wl_pitch", "bl_pitch"):
            left_value = getattr(left.floorplan.array, field)
            right_value = getattr(right.floorplan.array, field)
            if left_value != right_value:
                diffs.append(ParameterDiff(
                    path=f"floorplan.array.{field}",
                    left=left_value, right=right_value,
                ))
    return diffs


def compare_report(left: DramDescription,
                   right: DramDescription,
                   session: Optional[EvaluationSession] = None) -> str:
    """Render the parameter diff plus the IDD comparison."""
    session = ensure_session(session)
    sections: List[str] = []
    diffs = diff_devices(left, right)
    if diffs:
        rows: List[Tuple[object, ...]] = []
        for diff in diffs:
            ratio = diff.ratio
            ratio_text = f"{ratio:.3g}x" if ratio == ratio else "-"
            rows.append((diff.path, f"{diff.left}", f"{diff.right}",
                         ratio_text))
        sections.append(format_table(
            ["parameter", left.name, right.name, "ratio"],
            rows, title="Differing parameters",
        ))
    else:
        sections.append("The descriptions are parameter-identical.")
    sections.append("")

    left_suite = standard_idd_suite(session.model(left))
    right_suite = standard_idd_suite(session.model(right))
    rows = []
    for measure in left_suite:
        left_ma = left_suite[measure].milliamps
        right_ma = right_suite[measure].milliamps
        rows.append([measure.value, round(left_ma, 1),
                     round(right_ma, 1),
                     f"{right_ma / left_ma:.2f}x" if left_ma else "-"])
    sections.append(format_table(
        ["measure", f"{left.name} mA", f"{right.name} mA", "ratio"],
        rows, title="IDD comparison",
    ))
    return "\n".join(sections)
