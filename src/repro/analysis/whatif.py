"""Generic one-dimensional what-if sweeps.

The model's core use (paper §I: "directed optimization work") is asking
"what happens to power if X changes".  :func:`sweep_parameter` runs any
dotted-path parameter through a range of factors and returns the power
and current series — the building block behind quick design-space looks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core import DramPowerModel, PatternPower
from ..core.idd import idd7_mixed
from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from ..errors import ModelError
from .reporting import format_table


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a parameter sweep."""

    factor: float
    value: float
    power: float
    energy_per_bit: float

    @property
    def power_mw(self) -> float:
        return self.power * 1e3


def sweep_parameter(device: DramDescription, path: str,
                    factors: Sequence[float],
                    evaluate: Optional[Callable[[DramPowerModel],
                                                PatternPower]] = None,
                    session: Optional[EvaluationSession] = None,
                    jobs: Optional[int] = None) -> List[SweepPoint]:
    """Scale one parameter through ``factors`` and evaluate each point.

    ``evaluate`` defaults to the Idd7-style mixed pattern; pass any
    callable taking a model and returning a
    :class:`~repro.core.PatternPower`.  Models route through
    ``session``; ``jobs`` evaluates points on a thread pool.
    """
    if not factors:
        raise ModelError("sweep needs at least one factor")
    evaluate = evaluate or idd7_mixed
    session = ensure_session(session)
    base_value = device.get_path(path)
    if not isinstance(base_value, (int, float)) \
            or isinstance(base_value, bool):
        raise ModelError(f"parameter {path!r} is not numeric")
    devices = [device.scale_path(path, factor) for factor in factors]
    results = session.map(devices, evaluate, jobs=jobs)
    return [SweepPoint(
        factor=factor,
        value=float(base_value) * factor,
        power=result.power,
        energy_per_bit=result.energy_per_bit,
    ) for factor, result in zip(factors, results)]


def sweep_report(path: str, points: Sequence[SweepPoint],
                 unit: str = "") -> str:
    """Render a sweep as a table."""
    rows = [[f"x{point.factor:g}", f"{point.value:.4g}{unit}",
             round(point.power_mw, 1),
             round(point.energy_per_bit * 1e12, 2)]
            for point in points]
    return format_table(
        ["factor", path, "mW", "pJ/bit"], rows,
        title=f"What-if sweep of {path}",
    )


def sensitivity_slope(device: DramDescription, path: str,
                      delta: float = 0.05,
                      session: Optional[EvaluationSession] = None
                      ) -> float:
    """Local normalised slope d(ln P)/d(ln x) of power in a parameter.

    1.0 means power is locally proportional to the parameter; values
    near 0 mean insensitivity.
    """
    import math

    points = sweep_parameter(device, path,
                             [1.0 - delta, 1.0 + delta],
                             session=session)
    low, high = points[0].power, points[1].power
    return (math.log(high / low)
            / math.log((1.0 + delta) / (1.0 - delta)))
