"""Resilient HTTP client for the warm evaluation service.

A stdlib-only wrapper over the service endpoints
(:mod:`repro.service`), used by the test suite, the CI smokes and any
tool that wants cross-request model reuse without importing the model
itself::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    client.wait_until_ready()
    result = client.evaluate(device={"node": 55})["results"][0]
    print(result["power_w"], result["energy_per_bit_pj"])

Every failure — transport, HTTP status, server-side model error —
surfaces as one exception type, :class:`~repro.errors.ServiceError`,
whose ``status`` attribute carries the HTTP code (``0`` when the
service could not be reached at all) and whose ``retry_after``
attribute carries the server's backoff hint when one was sent.

Resilience: every evaluation request is a pure computation, so
retrying is always safe.  The client retries retryable failures
(connection errors and the service's load-shedding ``429``/``503``)
with **exponential backoff and full jitter**, honouring the server's
``Retry-After`` hint as a lower bound; a per-call ``deadline`` caps
the total time spent across attempts.  A small **circuit breaker**
counts consecutive transport/5xx failures, fails fast
(:class:`~repro.errors.CircuitOpenError`) once the threshold is hit,
and half-opens after a cooldown to let one probe through.  The
timing sources (``sleep``, ``clock``, ``rng``) are injectable so all
of this is unit-testable without waiting.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional

from .errors import CircuitOpenError, ServiceError

#: Statuses worth retrying: the service's load-shedding replies.
RETRYABLE_STATUSES = frozenset({429, 503})


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` delay-seconds as a float; None when absent or
    in the (unsupported) HTTP-date form."""
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter across retryable failures.

    The delay before attempt ``n`` (1-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * multiplier**n)]`` — "full
    jitter", which decorrelates colliding clients far better than
    truncated or equal jitter — and is floored by the server's
    ``Retry-After`` hint when one was sent.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    retryable_statuses: FrozenSet[int] = RETRYABLE_STATUSES
    retry_connection_errors: bool = True

    def is_retryable(self, error: ServiceError) -> bool:
        if error.status == 0:
            return self.retry_connection_errors
        return error.status in self.retryable_statuses

    def backoff(self, attempt: int, retry_after: Optional[float],
                rng: random.Random) -> float:
        cap = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        delay = rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


#: A policy that never retries — useful for probes and stress tests
#: that must observe raw statuses.
NO_RETRY = RetryPolicy(max_attempts=1)


class CircuitBreaker:
    """Fail fast after consecutive failures; half-open on cooldown.

    States: ``closed`` (normal), ``open`` (every call refused without
    touching the network), ``half-open`` (one probe allowed; success
    closes the circuit, failure re-opens it).  Only transport errors
    and server-side failures (status ``0`` or 5xx) count — a 400
    means the *request* was wrong, not the service, and a 429 means
    the service is healthy but shedding load (backoff handles that).
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if (self._probing
                or self._clock() - self._opened_at >= self.cooldown):
            return "half-open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True  # half-open: let one probe through
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        self._probing = False
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()

    @staticmethod
    def counts(error: ServiceError) -> bool:
        """Whether ``error`` is a service failure (vs a client bug
        or healthy load shedding)."""
        return error.status == 0 or error.status >= 500


#: Sentinel distinguishing "default breaker" from "no breaker".
_DEFAULT = object()


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8080``.

    ``retry`` is a :class:`RetryPolicy` (pass :data:`NO_RETRY` to see
    raw statuses); ``breaker`` a :class:`CircuitBreaker` (``None``
    disables it); ``deadline`` a default per-call budget in seconds
    across all attempts.  ``sleep``/``clock``/``rng`` exist for
    deterministic tests.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Any = _DEFAULT,
                 deadline: Optional[float] = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 rng: Optional[random.Random] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker() if breaker is _DEFAULT else breaker)
        self.deadline = deadline
        self.last_ready_error: Optional[str] = None
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[Any] = None,
                request_timeout: Optional[float] = None,
                deadline: Optional[float] = None,
                retry: Optional[RetryPolicy] = None,
                use_breaker: bool = True) -> Dict[str, Any]:
        """One JSON call with retries; :class:`ServiceError` on failure.

        ``request_timeout`` is forwarded to the server as its
        ``X-Request-Timeout`` budget; ``deadline`` caps this call's
        total time across retries (defaults to the client-level
        deadline).  Evaluations are pure, so retrying is always safe.
        """
        policy = retry if retry is not None else self.retry
        budget = deadline if deadline is not None else self.deadline
        expires = (self._clock() + budget
                   if budget is not None else None)
        breaker = self.breaker if use_breaker else None
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.base_url} after "
                    f"{breaker.consecutive_failures} consecutive "
                    f"failures; retry after "
                    f"{breaker.cooldown:.3g}s cooldown")
            try:
                reply = self._request_once(method, path, payload,
                                           request_timeout, expires)
            except ServiceError as error:
                failure = error
            else:
                if breaker is not None:
                    breaker.record_success()
                return reply
            if breaker is not None and CircuitBreaker.counts(failure):
                breaker.record_failure()
            attempt += 1
            if (not policy.is_retryable(failure)
                    or attempt >= policy.max_attempts):
                raise failure
            delay = policy.backoff(attempt, failure.retry_after,
                                   self._rng)
            if (expires is not None
                    and self._clock() + delay >= expires):
                raise ServiceError(
                    f"deadline exhausted after {attempt} attempts: "
                    f"{failure}", status=failure.status,
                    retry_after=failure.retry_after) from failure
            self._sleep(delay)

    def _request_once(self, method: str, path: str,
                      payload: Optional[Any],
                      request_timeout: Optional[float],
                      expires: Optional[float]) -> Dict[str, Any]:
        """One wire round-trip, no retries."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_timeout is not None:
            headers["X-Request-Timeout"] = f"{request_timeout:g}"
        timeout = self.timeout
        if expires is not None:
            timeout = min(timeout,
                          max(1e-3, expires - self._clock()))
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                self._error_detail(exc), status=exc.code,
                retry_after=_parse_retry_after(
                    exc.headers.get("Retry-After"))) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}", status=0) from exc
        except (http.client.HTTPException, OSError) as exc:
            # Mid-response connection loss (e.g. an injected reset)
            # surfaces raw from read(); treat it like any transport
            # failure.
            raise ServiceError(
                f"connection to {self.base_url} failed: "
                f"{type(exc).__name__}: {exc}", status=0) from exc

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        """The server's ``{"error": ...}`` message, or the bare code."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:
            return f"HTTP {exc.code}"

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats`` — engine counters + service bookkeeping."""
        return self.request("GET", "/stats")

    def evaluate(self, device: Optional[Any] = None,
                 devices: Optional[Iterable[Any]] = None,
                 pattern: Optional[str] = None,
                 request_timeout: Optional[float] = None
                 ) -> Dict[str, Any]:
        """``POST /evaluate`` for one device payload or a batch."""
        if (device is None) == (devices is None):
            raise ServiceError(
                "pass exactly one of device= or devices=")
        payload: Dict[str, Any] = {}
        if device is not None:
            payload["device"] = device
        if devices is not None:
            payload["devices"] = list(devices)
        if pattern is not None:
            payload["pattern"] = pattern
        return self.request("POST", "/evaluate", payload,
                            request_timeout=request_timeout)

    def sweep(self, kind: str, device: Optional[Any] = None,
              jobs: Optional[int] = None,
              backend: Optional[str] = None,
              request_timeout: Optional[float] = None,
              **params: Any) -> Dict[str, Any]:
        """``POST /sweep`` — a named sweep with parameters."""
        payload: Dict[str, Any] = dict(params)
        payload["kind"] = kind
        if device is not None:
            payload["device"] = device
        if jobs is not None:
            payload["jobs"] = jobs
        if backend is not None:
            payload["backend"] = backend
        return self.request("POST", "/sweep", payload,
                            request_timeout=request_timeout)

    # ------------------------------------------------------------------
    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05,
                         max_interval: float = 1.0) -> bool:
        """Poll ``/healthz`` until the service answers.

        Returns ``True`` as soon as a probe succeeds, ``False`` when
        ``timeout`` elapses first — the start-up handshake of the CI
        smokes and the subprocess tests.  Probes back off
        exponentially from ``interval`` up to ``max_interval`` (a
        start-up burst, then gentle polling), bypassing the retry
        policy and circuit breaker.  On failure
        :attr:`last_ready_error` says *how* the service was not ready:
        never reachable (connection refused) vs answering HTTP with an
        error.
        """
        deadline = self._clock() + timeout
        delay = max(interval, 1e-3)
        self.last_ready_error = None
        while True:
            try:
                self.request("GET", "/healthz", retry=NO_RETRY,
                             use_breaker=False)
                return True
            except ServiceError as error:
                if error.status == 0:
                    self.last_ready_error = (
                        f"no HTTP service reachable at "
                        f"{self.base_url}: {error}")
                else:
                    self.last_ready_error = (
                        f"service at {self.base_url} answered HTTP "
                        f"{error.status}: {error}")
            remaining = deadline - self._clock()
            if remaining <= 0:
                return False
            self._sleep(min(delay, remaining))
            delay = min(delay * 2.0, max_interval)
