"""HTTP client for the warm evaluation service (:mod:`repro.service`).

A thin, stdlib-only wrapper over the four endpoints, used by the test
suite, the CI smoke and any tool that wants cross-request model reuse
without importing the model itself::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    client.wait_until_ready()
    result = client.evaluate(device={"node": 55})["results"][0]
    print(result["power_w"], result["energy_per_bit_pj"])

Every failure — transport, HTTP status, server-side model error —
surfaces as one exception type, :class:`~repro.errors.ServiceError`,
whose ``status`` attribute carries the HTTP code (``0`` when the
service could not be reached at all).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, Optional

from .errors import ServiceError


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8080``."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[Any] = None) -> Dict[str, Any]:
        """One JSON round-trip; :class:`ServiceError` on any failure."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServiceError(self._error_detail(exc),
                               status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{exc.reason}", status=0) from exc

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        """The server's ``{"error": ...}`` message, or the bare code."""
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:
            return f"HTTP {exc.code}"

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats`` — engine counters + service bookkeeping."""
        return self.request("GET", "/stats")

    def evaluate(self, device: Optional[Any] = None,
                 devices: Optional[Iterable[Any]] = None,
                 pattern: Optional[str] = None) -> Dict[str, Any]:
        """``POST /evaluate`` for one device payload or a batch."""
        if (device is None) == (devices is None):
            raise ServiceError(
                "pass exactly one of device= or devices=")
        payload: Dict[str, Any] = {}
        if device is not None:
            payload["device"] = device
        if devices is not None:
            payload["devices"] = list(devices)
        if pattern is not None:
            payload["pattern"] = pattern
        return self.request("POST", "/evaluate", payload)

    def sweep(self, kind: str, device: Optional[Any] = None,
              jobs: Optional[int] = None,
              backend: Optional[str] = None,
              **params: Any) -> Dict[str, Any]:
        """``POST /sweep`` — a named sweep with parameters."""
        payload: Dict[str, Any] = dict(params)
        payload["kind"] = kind
        if device is not None:
            payload["device"] = device
        if jobs is not None:
            payload["jobs"] = jobs
        if backend is not None:
            payload["backend"] = backend
        return self.request("POST", "/sweep", payload)

    # ------------------------------------------------------------------
    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the service answers.

        Returns ``True`` as soon as a probe succeeds, ``False`` when
        ``timeout`` elapses first — the start-up handshake of the CI
        smoke and the subprocess tests.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.healthz()
                return True
            except ServiceError:
                if time.monotonic() >= deadline:
                    return False
                time.sleep(interval)
