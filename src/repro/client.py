"""Resilient HTTP client for the warm evaluation service.

A stdlib-only wrapper over the service endpoints
(:mod:`repro.service`), used by the test suite, the CI smokes and any
tool that wants cross-request model reuse without importing the model
itself::

    from repro.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    client.wait_until_ready()
    result = client.evaluate(device={"node": 55})["results"][0]
    print(result["power_w"], result["energy_per_bit_pj"])

Every failure — transport, HTTP status, server-side model error —
surfaces as one exception type, :class:`~repro.errors.ServiceError`,
whose ``status`` attribute carries the HTTP code (``0`` when the
service could not be reached at all) and whose ``retry_after``
attribute carries the server's backoff hint when one was sent.

Transport: persistent HTTP/1.1 keep-alive connections pooled per
thread and endpoint (``connections_opened`` stays at 1 across many
sequential requests), transparent gzip response decoding, optional
``api_key`` authentication, and one-hop following of the pre-fork
tier's affinity ``307`` redirects (``redirects_followed``) with
fallback to the original worker when the redirect target just died.
:meth:`ServiceClient.evaluate_stream` and
:meth:`ServiceClient.sweep_stream` consume the chunked NDJSON
streaming mode record by record on a dedicated connection;
:meth:`ServiceClient.trace_stream` uploads external memory traces
(files, blobs or chunk iterables, gzip forwarded as-is) with chunked
transfer encoding and yields the server's incremental aggregates.

Resilience: every evaluation request is a pure computation, so
retrying is always safe.  The client retries retryable failures
(connection errors and the service's load-shedding ``429``/``503``)
with **exponential backoff and full jitter**, honouring the server's
``Retry-After`` hint as a lower bound; a per-call ``deadline`` caps
the total time spent across attempts.  A small **circuit breaker**
counts consecutive transport/5xx failures, fails fast
(:class:`~repro.errors.CircuitOpenError`) once the threshold is hit,
and half-opens after a cooldown to let one probe through.  The
timing sources (``sleep``, ``clock``, ``rng``) are injectable so all
of this is unit-testable without waiting.
"""

from __future__ import annotations

import gzip
import http.client
import json
import os
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import (Any, Callable, Dict, FrozenSet, Iterable, Iterator,
                    Optional, Tuple)
from urllib.parse import urlencode, urlsplit

from .errors import (CircuitOpenError, JobError, JobNotFound,
                     ServiceError)

#: Statuses worth retrying: the service's load-shedding replies.
RETRYABLE_STATUSES = frozenset({429, 503})

#: Wire-protocol header names, mirroring ``repro.service.auth`` and
#: ``repro.service.routing`` — duplicated here so importing the thin
#: client never drags the whole model stack in.
API_KEY_HEADER = "X-Api-Key"
ROUTED_HEADER = "X-Repro-Routed"

#: Transport failures on a *reused* connection that mean the server
#: closed an idle keep-alive socket — safe to reconnect and resend.
_STALE_ERRORS = (http.client.RemoteDisconnected,
                 http.client.CannotSendRequest,
                 BrokenPipeError, ConnectionResetError)


def _trace_body(source: Any, gzipped: Optional[bool]
                ) -> Tuple[Iterable[bytes], bool]:
    """``(byte-chunk iterable, is_gzipped)`` for a trace upload.

    Paths stream from disk in 64 KiB chunks; blobs upload as one
    chunk; any other iterable passes through.  Gzip is sniffed from
    the magic bytes (or ``.gz`` suffix) unless ``gzipped`` says."""
    if isinstance(source, (str, os.PathLike)):
        if gzipped is None:
            with open(source, "rb") as handle:
                gzipped = handle.read(2) == b"\x1f\x8b"

        def file_chunks() -> Iterator[bytes]:
            with open(source, "rb") as handle:
                while True:
                    chunk = handle.read(65536)
                    if not chunk:
                        return
                    yield chunk

        return file_chunks(), bool(gzipped)
    if isinstance(source, (bytes, bytearray)):
        blob = bytes(source)
        if gzipped is None:
            gzipped = blob[:2] == b"\x1f\x8b"
        return [blob], bool(gzipped)
    return source, bool(gzipped)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """``Retry-After`` delay-seconds as a float; None when absent or
    in the (unsupported) HTTP-date form."""
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter across retryable failures.

    The delay before attempt ``n`` (1-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * multiplier**n)]`` — "full
    jitter", which decorrelates colliding clients far better than
    truncated or equal jitter — and is floored by the server's
    ``Retry-After`` hint when one was sent.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    retryable_statuses: FrozenSet[int] = RETRYABLE_STATUSES
    retry_connection_errors: bool = True

    def is_retryable(self, error: ServiceError) -> bool:
        if error.status == 0:
            return self.retry_connection_errors
        return error.status in self.retryable_statuses

    def backoff(self, attempt: int, retry_after: Optional[float],
                rng: random.Random) -> float:
        cap = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        delay = rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


#: A policy that never retries — useful for probes and stress tests
#: that must observe raw statuses.
NO_RETRY = RetryPolicy(max_attempts=1)


class CircuitBreaker:
    """Fail fast after consecutive failures; half-open on cooldown.

    States: ``closed`` (normal), ``open`` (every call refused without
    touching the network), ``half-open`` (one probe allowed; success
    closes the circuit, failure re-opens it).  Only transport errors
    and server-side failures (status ``0`` or 5xx) count — a 400
    means the *request* was wrong, not the service, and a 429 means
    the service is healthy but shedding load (backoff handles that).
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if (self._probing
                or self._clock() - self._opened_at >= self.cooldown):
            return "half-open"
        return "open"

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a request may proceed right now."""
        if self._opened_at is None:
            return True
        if self._probing:
            return False  # one probe at a time
        if self._clock() - self._opened_at >= self.cooldown:
            self._probing = True  # half-open: let one probe through
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._failures += 1
        self._probing = False
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()

    @staticmethod
    def counts(error: ServiceError) -> bool:
        """Whether ``error`` is a service failure (vs a client bug
        or healthy load shedding)."""
        return error.status == 0 or error.status >= 500


#: Sentinel distinguishing "default breaker" from "no breaker".
_DEFAULT = object()


class NDJSONStream:
    """Iterator over one streamed NDJSON response.

    Owns the dedicated (non-pooled) connection and closes it the
    moment the stream logically ends — the terminal ``done`` record,
    an in-band ``error`` record, EOF, or a transport failure — so an
    abandoned or error-terminated stream never lingers as an open
    socket waiting for garbage collection (and can never desync a
    pooled connection: streams don't use the pool at all).
    ``closed`` is observable for tests and callers.
    """

    def __init__(self, conn: http.client.HTTPConnection, url: str,
                 response: Any):
        self._conn = conn
        self._url = url
        self._response = response
        self.closed = False

    def __iter__(self) -> "NDJSONStream":
        return self

    def __next__(self) -> Dict[str, Any]:
        if self.closed:
            raise StopIteration
        try:
            line = self._response.readline()
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            raise ServiceError(
                f"stream from {self._url} broke: "
                f"{type(exc).__name__}: {exc}", status=0) from exc
        if not line:
            self.close()  # stream ended without a done record
            raise StopIteration
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self.close()
            raise ServiceError(
                f"invalid NDJSON from {self._url}: {exc}",
                status=0) from exc
        if not isinstance(record, dict) or record.get("done") \
                or "error" in record:
            self.close()
        return record

    def close(self) -> None:
        """Idempotently release the dedicated connection."""
        if not self.closed:
            self.closed = True
            self._conn.close()


class ServiceClient:
    """One service endpoint, e.g. ``http://127.0.0.1:8080``.

    ``retry`` is a :class:`RetryPolicy` (pass :data:`NO_RETRY` to see
    raw statuses); ``breaker`` a :class:`CircuitBreaker` (``None``
    disables it); ``deadline`` a default per-call budget in seconds
    across all attempts.  ``sleep``/``clock``/``rng`` exist for
    deterministic tests.
    """

    def __init__(self, base_url: str, timeout: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Any = _DEFAULT,
                 deadline: Optional[float] = None,
                 api_key: Optional[str] = None,
                 follow_redirects: bool = True,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 rng: Optional[random.Random] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker() if breaker is _DEFAULT else breaker)
        self.deadline = deadline
        self.api_key = api_key
        self.follow_redirects = follow_redirects
        self.last_ready_error: Optional[str] = None
        #: Connections dialled over this client's lifetime (all
        #: threads) — ``1`` after many keep-alive requests proves
        #: connection reuse is working.
        self.connections_opened = 0
        #: Affinity ``307`` redirects this client followed.
        self.redirects_followed = 0
        self._counter_lock = threading.Lock()
        self._local = threading.local()
        self._sleep = sleep
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def request(self, method: str, path: str,
                payload: Optional[Any] = None,
                request_timeout: Optional[float] = None,
                deadline: Optional[float] = None,
                retry: Optional[RetryPolicy] = None,
                use_breaker: bool = True) -> Dict[str, Any]:
        """One JSON call with retries; :class:`ServiceError` on failure.

        ``request_timeout`` is forwarded to the server as its
        ``X-Request-Timeout`` budget; ``deadline`` caps this call's
        total time across retries (defaults to the client-level
        deadline).  Evaluations are pure, so retrying is always safe.
        """
        policy = retry if retry is not None else self.retry
        budget = deadline if deadline is not None else self.deadline
        expires = (self._clock() + budget
                   if budget is not None else None)
        breaker = self.breaker if use_breaker else None
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for {self.base_url} after "
                    f"{breaker.consecutive_failures} consecutive "
                    f"failures; retry after "
                    f"{breaker.cooldown:.3g}s cooldown")
            try:
                reply = self._request_once(method, path, payload,
                                           request_timeout, expires)
            except ServiceError as error:
                failure = error
            else:
                if breaker is not None:
                    breaker.record_success()
                return reply
            if breaker is not None and CircuitBreaker.counts(failure):
                breaker.record_failure()
            attempt += 1
            if (not policy.is_retryable(failure)
                    or attempt >= policy.max_attempts):
                raise failure
            delay = policy.backoff(attempt, failure.retry_after,
                                   self._rng)
            if (expires is not None
                    and self._clock() + delay >= expires):
                raise ServiceError(
                    f"deadline exhausted after {attempt} attempts: "
                    f"{failure}", status=failure.status,
                    retry_after=failure.retry_after) from failure
            self._sleep(delay)

    def _build_headers(self, payload: Optional[Any],
                       request_timeout: Optional[float]
                       ) -> Tuple[Optional[bytes], Dict[str, str]]:
        body = None
        headers = {"Accept": "application/json",
                   "Accept-Encoding": "gzip"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_timeout is not None:
            headers["X-Request-Timeout"] = f"{request_timeout:g}"
        if self.api_key is not None:
            headers[API_KEY_HEADER] = self.api_key
        return body, headers

    def _request_timeout_budget(
            self, expires: Optional[float]) -> float:
        timeout = self.timeout
        if expires is not None:
            timeout = min(timeout,
                          max(1e-3, expires - self._clock()))
        return timeout

    # -- persistent-connection pool (one per thread and netloc) --------
    def _pool(self) -> Dict[str, http.client.HTTPConnection]:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        return pool

    def _connection(self, netloc: str, timeout: float
                    ) -> Tuple[http.client.HTTPConnection, bool]:
        """A pooled connection to ``netloc`` and whether it is fresh.

        Reused connections may have been closed server-side while
        idle; the caller resends once on a *stale* reuse but treats a
        fresh connection's failure as the service being down.
        """
        pool = self._pool()
        conn = pool.get(netloc)
        fresh = conn is None
        if fresh:
            host, _, raw_port = netloc.partition(":")
            conn = http.client.HTTPConnection(
                host, int(raw_port or 80), timeout=timeout)
            pool[netloc] = conn
            with self._counter_lock:
                self.connections_opened += 1
        conn.timeout = timeout
        if conn.sock is not None:
            conn.sock.settimeout(timeout)
            # Requests are small back-to-back writes; without
            # TCP_NODELAY, Nagle pairs with the peer's delayed ACK
            # into ~40 ms stalls on reused connections.
            conn.sock.setsockopt(socket.IPPROTO_TCP,
                                 socket.TCP_NODELAY, 1)
        return conn, fresh

    def _drop_connection(self, netloc: str) -> None:
        conn = self._pool().pop(netloc, None)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Close this thread's pooled connections (idempotent)."""
        pool = self._pool()
        for conn in pool.values():
            conn.close()
        pool.clear()

    # ------------------------------------------------------------------
    def _roundtrip(self, url: str, method: str,
                   body: Optional[bytes], headers: Dict[str, str],
                   timeout: float
                   ) -> Tuple[int, Dict[str, str], bytes]:
        """One exchange on a pooled keep-alive connection.

        Returns ``(status, headers, decoded body)``; raises a
        status-``0`` :class:`ServiceError` on transport failure.  A
        stale reused connection (server closed it while idle) is
        reconnected and resent exactly once — evaluations are pure,
        so the resend is safe.
        """
        parts = urlsplit(url)
        netloc = parts.netloc
        path = parts.path or "/"
        if parts.query:
            path += "?" + parts.query
        for attempt in (0, 1):
            conn, fresh = self._connection(netloc, timeout)
            try:
                conn.request(method, path, body=body,
                             headers=headers)
                response = conn.getresponse()
                data = response.read()
            except _STALE_ERRORS as exc:
                self._drop_connection(netloc)
                if fresh or attempt:
                    raise ServiceError(
                        f"service unreachable at http://{netloc}: "
                        f"{type(exc).__name__}: {exc}",
                        status=0) from exc
                continue  # stale keep-alive socket: resend once
            except (http.client.HTTPException, OSError) as exc:
                self._drop_connection(netloc)
                raise ServiceError(
                    f"connection to http://{netloc} failed: "
                    f"{type(exc).__name__}: {exc}", status=0) from exc
            reply_headers = dict(response.headers)
            if response.will_close:
                self._drop_connection(netloc)
            if reply_headers.get("Content-Encoding") == "gzip":
                data = gzip.decompress(data)
            return response.status, reply_headers, data
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      payload: Optional[Any],
                      request_timeout: Optional[float],
                      expires: Optional[float]) -> Dict[str, Any]:
        """One wire round-trip, no retries (plus 1 affinity hop).

        A ``307`` from a pre-fork worker is followed once to the
        preferred worker's direct port, marked with the routed header
        so routing terminates; if the redirect target is unreachable
        (it just died) the request falls back to the original URL,
        still marked routed so it is served locally.
        """
        body, headers = self._build_headers(payload, request_timeout)
        timeout = self._request_timeout_budget(expires)
        url = self.base_url + path
        hopped = False
        while True:
            try:
                status, reply_headers, data = self._roundtrip(
                    url, method, body, headers, timeout)
            except ServiceError:
                if hopped and not url.startswith(self.base_url):
                    url = self.base_url + path  # dead target: serve
                    continue                    # at the origin
                raise
            if (status in (307, 308) and not hopped
                    and self.follow_redirects):
                location = reply_headers.get("Location")
                if location:
                    url = location
                    headers[ROUTED_HEADER] = "1"
                    hopped = True
                    with self._counter_lock:
                        self.redirects_followed += 1
                    continue
            break
        if status >= 400:
            raise ServiceError(
                self._error_detail(status, data), status=status,
                retry_after=_parse_retry_after(
                    reply_headers.get("Retry-After")))
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"invalid JSON from {url}: {exc}", status=0) from exc

    @staticmethod
    def _error_detail(status: int, data: bytes) -> str:
        """The server's ``{"error": ...}`` message, or the bare code."""
        try:
            payload = json.loads(data.decode("utf-8"))
            return str(payload.get("error", payload))
        except Exception:
            return f"HTTP {status}"

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness."""
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats`` — engine counters + service bookkeeping."""
        return self.request("GET", "/stats")

    def evaluate(self, device: Optional[Any] = None,
                 devices: Optional[Iterable[Any]] = None,
                 pattern: Optional[str] = None,
                 request_timeout: Optional[float] = None
                 ) -> Dict[str, Any]:
        """``POST /evaluate`` for one device payload or a batch."""
        if (device is None) == (devices is None):
            raise ServiceError(
                "pass exactly one of device= or devices=")
        payload: Dict[str, Any] = {}
        if device is not None:
            payload["device"] = device
        if devices is not None:
            payload["devices"] = list(devices)
        if pattern is not None:
            payload["pattern"] = pattern
        return self.request("POST", "/evaluate", payload,
                            request_timeout=request_timeout)

    def sweep(self, kind: str, device: Optional[Any] = None,
              jobs: Optional[int] = None,
              backend: Optional[str] = None,
              request_timeout: Optional[float] = None,
              **params: Any) -> Dict[str, Any]:
        """``POST /sweep`` — a named sweep with parameters."""
        payload: Dict[str, Any] = dict(params)
        payload["kind"] = kind
        if device is not None:
            payload["device"] = device
        if jobs is not None:
            payload["jobs"] = jobs
        if backend is not None:
            payload["backend"] = backend
        return self.request("POST", "/sweep", payload,
                            request_timeout=request_timeout)

    # ------------------------------------------------------------------
    def evaluate_stream(self, device: Optional[Any] = None,
                        devices: Optional[Iterable[Any]] = None,
                        pattern: Optional[str] = None,
                        request_timeout: Optional[float] = None
                        ) -> Iterator[Dict[str, Any]]:
        """Streaming ``POST /evaluate``: yields records as they land.

        Each record is ``{"index": i, "result": {...}}`` (or an
        ``{"error": ...}`` record for a device that failed
        mid-batch), ending with ``{"done": true, "count": n}`` — the
        first device's result arrives while the rest of the batch is
        still evaluating.
        """
        if (device is None) == (devices is None):
            raise ServiceError(
                "pass exactly one of device= or devices=")
        payload: Dict[str, Any] = {"stream": True}
        if device is not None:
            payload["device"] = device
        if devices is not None:
            payload["devices"] = list(devices)
        if pattern is not None:
            payload["pattern"] = pattern
        return self._stream("/evaluate", payload, request_timeout)

    def sweep_stream(self, kind: str, device: Optional[Any] = None,
                     jobs: Optional[int] = None,
                     backend: Optional[str] = None,
                     request_timeout: Optional[float] = None,
                     **params: Any) -> Iterator[Dict[str, Any]]:
        """Streaming ``POST /sweep``: one record per sweep row."""
        payload: Dict[str, Any] = dict(params)
        payload["kind"] = kind
        payload["stream"] = True
        if device is not None:
            payload["device"] = device
        if jobs is not None:
            payload["jobs"] = jobs
        if backend is not None:
            payload["backend"] = backend
        return self._stream("/sweep", payload, request_timeout)

    def _stream(self, path: str, payload: Dict[str, Any],
                request_timeout: Optional[float]
                ) -> Iterator[Dict[str, Any]]:
        """Open a streaming POST on a dedicated connection.

        Streams bypass the pool (the connection is busy for the whole
        stream), the retry policy and the breaker: resending half a
        consumed stream is not safe to do silently.  Errors before
        the first record surface as :class:`ServiceError` from this
        call; a connection lost mid-stream raises from the iterator.
        Validation happens before the iterator is returned.
        """
        body, headers = self._build_headers(payload, request_timeout)
        headers.pop("Accept-Encoding", None)  # streams are never
        url = self.base_url + path            # compressed
        hopped = False
        while True:
            parts = urlsplit(url)
            host, _, raw_port = parts.netloc.partition(":")
            conn = http.client.HTTPConnection(
                host, int(raw_port or 80), timeout=self.timeout)
            with self._counter_lock:
                self.connections_opened += 1
            try:
                conn.request("POST", parts.path or "/", body=body,
                             headers=headers)
                response = conn.getresponse()
            except (http.client.HTTPException, OSError) as exc:
                conn.close()
                if hopped and not url.startswith(self.base_url):
                    url = self.base_url + path
                    continue
                raise ServiceError(
                    f"service unreachable at {url}: "
                    f"{type(exc).__name__}: {exc}", status=0) from exc
            if (response.status in (307, 308) and not hopped
                    and self.follow_redirects):
                location = response.headers.get("Location")
                if location:
                    response.read()
                    conn.close()
                    url = location
                    headers[ROUTED_HEADER] = "1"
                    hopped = True
                    with self._counter_lock:
                        self.redirects_followed += 1
                    continue
            break
        return self._ndjson_records(conn, url, response)

    def _ndjson_records(self, conn: http.client.HTTPConnection,
                        url: str, response: Any) -> "NDJSONStream":
        """Consume a chunked NDJSON response record by record.

        Raises :class:`ServiceError` for an error *status* before
        yielding anything; the returned :class:`NDJSONStream` owns
        the dedicated connection and closes it *eagerly* — on the
        terminal record, an in-band error record, EOF, or transport
        failure — not merely when the iterator is garbage-collected.
        """
        if response.status >= 400:
            data = response.read()
            conn.close()
            raise ServiceError(
                self._error_detail(response.status, data),
                status=response.status,
                retry_after=_parse_retry_after(
                    response.headers.get("Retry-After")))
        return NDJSONStream(conn, url, response)

    # ------------------------------------------------------------------
    def trace_stream(self, source: Any,
                     device: Optional[Dict[str, Any]] = None,
                     fmt: Optional[str] = None,
                     clock: Optional[float] = None,
                     strict: Optional[bool] = None,
                     snapshot_every: Optional[int] = None,
                     decoder: Optional[Dict[str, Any]] = None,
                     gzipped: Optional[bool] = None,
                     backend: Optional[str] = None,
                     request_timeout: Optional[float] = None
                     ) -> Iterator[Dict[str, Any]]:
        """Raw-mode ``POST /trace``: chunked upload, NDJSON records.

        ``source`` is a trace file path, a ``bytes`` blob, or any
        iterable of byte chunks; it is streamed to the server with
        ``Transfer-Encoding: chunked`` (constant memory on both
        sides).  Gzip is auto-detected for paths and blobs (pass
        ``gzipped`` to override) and forwarded compressed.  ``device``
        is a builder-key dict (``node``, ``io_width``, …), ``decoder``
        holds ``policy``/``channel_bits``/``rank_bits``/
        ``offset_bits``; all parameters travel in the query string.
        Yields ``{"index": i, "snapshot": {...}}`` records and a
        terminal ``{"done": true, "result": {...}}``.
        """
        query: Dict[str, Any] = dict(device or {})
        if fmt is not None:
            query["format"] = fmt
        if clock is not None:
            query["clock"] = f"{clock:g}"
        if strict is not None:
            query["strict"] = "1" if strict else "0"
        if snapshot_every is not None:
            query["snapshot_every"] = snapshot_every
        if backend is not None:
            query["backend"] = backend
        query.update(decoder or {})
        chunks, gzipped = _trace_body(source, gzipped)
        path = "/trace"
        if query:
            path += "?" + urlencode(query)
        _, headers = self._build_headers(None, request_timeout)
        headers["Content-Type"] = "application/octet-stream"
        headers["Transfer-Encoding"] = "chunked"
        if gzipped:
            headers["Content-Encoding"] = "gzip"
        parts = urlsplit(self.base_url)
        host, _, raw_port = parts.netloc.partition(":")
        conn = http.client.HTTPConnection(
            host, int(raw_port or 80), timeout=self.timeout)
        with self._counter_lock:
            self.connections_opened += 1
        url = self.base_url + path
        try:
            conn.request("POST", path, body=chunks, headers=headers,
                         encode_chunked=True)
            response = conn.getresponse()
        except (http.client.HTTPException, OSError) as exc:
            conn.close()
            raise ServiceError(
                f"trace upload to {url} failed: "
                f"{type(exc).__name__}: {exc}", status=0) from exc
        return self._ndjson_records(conn, url, response)

    def trace(self, source: Any, **options: Any) -> Dict[str, Any]:
        """``POST /trace`` returning just the final aggregate.

        Same parameters as :meth:`trace_stream`; snapshot records are
        consumed and discarded, in-band error records raise
        :class:`ServiceError`.
        """
        final: Optional[Dict[str, Any]] = None
        stream = self.trace_stream(source, **options)
        try:
            for record in stream:
                if "error" in record:
                    raise ServiceError(
                        record["error"],
                        status=record.get("status", 400),
                        retry_after=record.get("retry_after"))
                if record.get("done"):
                    final = record.get("result")
        finally:
            stream.close()
        if final is None:
            raise ServiceError("trace stream ended without a result",
                               status=0)
        return final

    # ------------------------------------------------------------------
    def submit_job(self, kind: str,
                   params: Optional[Dict[str, Any]] = None,
                   chunk_size: Optional[int] = None,
                   idempotency_key: Optional[str] = None,
                   request_timeout: Optional[float] = None
                   ) -> "JobHandle":
        """``POST /jobs``: submit a durable job, get a handle.

        With an ``idempotency_key`` the submit is safe to retry (and
        is retried, through the normal policy): a repeat lands on
        the same job instead of starting a second campaign.
        """
        payload: Dict[str, Any] = {"kind": kind,
                                   "params": params or {}}
        if chunk_size is not None:
            payload["chunk_size"] = chunk_size
        if idempotency_key is not None:
            payload["idempotency_key"] = idempotency_key
        status = self.request("POST", "/jobs", payload,
                              request_timeout=request_timeout)
        return JobHandle(self, status["job"], submitted=status)

    def job(self, job_id: str) -> "JobHandle":
        """A handle to an already-submitted job (no request made)."""
        return JobHandle(self, job_id)

    # ------------------------------------------------------------------
    def wait_until_ready(self, timeout: float = 10.0,
                         interval: float = 0.05,
                         max_interval: float = 1.0) -> bool:
        """Poll ``/healthz`` until the service answers.

        Returns ``True`` as soon as a probe succeeds, ``False`` when
        ``timeout`` elapses first — the start-up handshake of the CI
        smokes and the subprocess tests.  Probes back off
        exponentially from ``interval`` up to ``max_interval`` (a
        start-up burst, then gentle polling), bypassing the retry
        policy and circuit breaker.  On failure
        :attr:`last_ready_error` says *how* the service was not ready:
        never reachable (connection refused) vs answering HTTP with an
        error.
        """
        deadline = self._clock() + timeout
        delay = max(interval, 1e-3)
        self.last_ready_error = None
        while True:
            try:
                self.request("GET", "/healthz", retry=NO_RETRY,
                             use_breaker=False)
                return True
            except ServiceError as error:
                if error.status == 0:
                    self.last_ready_error = (
                        f"no HTTP service reachable at "
                        f"{self.base_url}: {error}")
                else:
                    self.last_ready_error = (
                        f"service at {self.base_url} answered HTTP "
                        f"{error.status}: {error}")
            remaining = deadline - self._clock()
            if remaining <= 0:
                return False
            self._sleep(min(delay, remaining))
            delay = min(delay * 2.0, max_interval)


# ----------------------------------------------------------------------
# Durable-job handle.
# ----------------------------------------------------------------------
#: Job states after which the status can no longer change.
JOB_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class JobHandle:
    """One durable job, addressed through a :class:`ServiceClient`.

    The handle is resume-aware: the job lives in the *service's*
    journal, not in this process, so a handle can be re-created from
    a bare job id after a client crash (``client.job(job_id)``) and
    :meth:`watch`/:meth:`result` keep polling straight through a
    service restart.  The error model distinguishes the two failure
    classes a poller must treat differently:

    * a ``404`` means the job id is *unknown* (expired via TTL GC or
      never submitted) — raised immediately as
      :class:`~repro.errors.JobNotFound`, never retried;
    * transport errors and shedding (status ``0``/``429``/``503``)
      are *transient* — a restarting fleet answers that way while it
      recovers the journal — so :meth:`watch` keeps polling them
      down, bounded by its own timeout.
    """

    def __init__(self, client: ServiceClient, job_id: str,
                 submitted: Optional[Dict[str, Any]] = None):
        self.client = client
        self.id = job_id
        #: The ``POST /jobs`` response when this handle was created
        #: by :meth:`ServiceClient.submit_job`, else ``None``.
        self.submitted = submitted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobHandle({self.id!r})"

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """``GET /jobs/<id>``: current state, progress and partials."""
        try:
            return self.client.request("GET", f"/jobs/{self.id}")
        except ServiceError as error:
            if error.status == 404:
                raise JobNotFound(
                    f"job {self.id!r} unknown at "
                    f"{self.client.base_url} (expired or never "
                    f"submitted)") from error
            raise

    def cancel(self) -> Dict[str, Any]:
        """``DELETE /jobs/<id>``: request cooperative cancellation."""
        try:
            return self.client.request("DELETE", f"/jobs/{self.id}")
        except ServiceError as error:
            if error.status == 404:
                raise JobNotFound(
                    f"job {self.id!r} unknown at "
                    f"{self.client.base_url}") from error
            raise

    # ------------------------------------------------------------------
    def watch(self, interval: float = 0.25,
              timeout: Optional[float] = None
              ) -> Iterator[Dict[str, Any]]:
        """Yield status payloads until the job reaches a terminal
        state.

        Transient poll failures (transport errors, ``429``/``503``
        shedding — the signature of a fleet restarting around a
        durable job) are absorbed and polling continues; ``timeout``
        bounds the *whole* watch, including such outages.  A ``404``
        escapes immediately as :class:`~repro.errors.JobNotFound`.
        """
        clock = self.client._clock
        expires = None if timeout is None else clock() + timeout
        while True:
            try:
                status = self.status()
            except JobNotFound:
                raise
            except ServiceError as error:
                if error.status not in (0, 429, 503):
                    raise
                if expires is not None and clock() >= expires:
                    raise
                self.client._sleep(interval)
                continue
            yield status
            if status.get("state") in JOB_TERMINAL_STATES:
                return
            if expires is not None and clock() >= expires:
                raise JobError(
                    f"watch timed out after {timeout:g}s; job "
                    f"{self.id!r} still {status.get('state')!r} at "
                    f"{status.get('chunks_done', 0)}/"
                    f"{status.get('chunks_total', '?')} chunks")
            self.client._sleep(interval)

    def wait(self, interval: float = 0.25,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until terminal; return the final status payload."""
        status: Dict[str, Any] = {}
        for status in self.watch(interval=interval, timeout=timeout):
            pass
        return status

    def result(self, interval: float = 0.25,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """The job's final result body, polling until it is durable.

        Raises :class:`~repro.errors.JobError` when the job ends
        ``failed`` (carrying the recorded error) or ``cancelled``,
        and :class:`~repro.errors.JobNotFound` when the id is
        unknown.
        """
        status = self.wait(interval=interval, timeout=timeout)
        state = status.get("state")
        if state == "failed":
            raise JobError(
                f"job {self.id!r} failed: "
                f"{status.get('error', 'unknown error')}")
        if state == "cancelled":
            raise JobError(f"job {self.id!r} was cancelled")
        payload = self.client.request("GET", f"/jobs/{self.id}/result")
        return payload["result"]
