"""Columnar fast path: batch parse, vectorized decode, batched fold.

The scalar pipeline walks a trace one line → one record → a handful of
commands at a time, all in interpreted Python; it is correct and
constant-memory but tops out around 0.2 M commands/s.  This module
processes the same pipeline in *batches of lines*:

* **parse** — a batch of k6/mase lines becomes three column arrays via
  one C-level tokenization pass: the lines are joined around a
  sentinel token and split once, which yields exactly four tokens per
  line (address, op, cycle, sentinel) *iff* every line is a
  well-formed three-token payload.  Any structural mismatch — blank
  lines, comments, wrong arity, unknown ops, bad numbers — drops the
  whole batch to the scalar parser, which raises the exact
  :class:`~repro.trace.formats.TraceFormatError` (same message, same
  global line number) the scalar path would have raised.  NDJSON
  always parses scalar (``json.loads`` dominates regardless) and only
  the decode/fold is columnar.

* **decode** — :meth:`AddressDecoder.field_layout` turns the bit-slice
  policy into shift/mask pairs applied to the whole address array.

* **fold** — open-page expansion reduces to per-bank row-transition
  detection: a stable argsort by flat bank turns the batch into
  per-bank runs, the previous-row array (seeded from the carried
  open-row registers at run starts) marks misses, and the lenient
  fold collapses to count deltas absorbed through
  :meth:`~repro.core.trace.TraceAccumulator.absorb_batch`.  Energy is
  derived from counts by the unchanged ``snapshot`` code, so columnar
  and scalar replay are bit-for-bit identical — the scalar path stays
  on as the oracle, and the parity suite holds them together.

numpy is optional (the ``repro[vector]`` extra), mirroring
:mod:`repro.engine.vector`: with numpy missing every caller degrades
to the scalar path and the one-time ``trace_downgrades`` marker fires,
results unchanged.  The columnar fold is lenient-only (``strict=False``)
— expanded external traces always replay leniently, and strict
legality needs per-command timing the batch reduction discards.
"""

from __future__ import annotations

from typing import (Dict, FrozenSet, Iterable, List, Optional,
                    Sequence)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

from ..core.trace import TraceAccumulator, TraceError
from ..description import Command
from .decoder import AddressDecoder
from .formats import K6_OPS, MASE_OPS, TraceRecord, iter_records

#: Lines per parse batch for file/stream replay — large enough to
#: amortize the per-batch array staging, small enough that a batch of
#: 80-char lines stays ~5 MB of working set.
LINES_PER_BATCH = 65_536

#: Records per batch when folding an in-memory record stream.
RECORDS_PER_BATCH = 65_536

#: Token that can never appear inside a whitespace-split trace line —
#: joining a batch around it makes per-line token arity checkable on
#: the flat token list.
_SENTINEL = "\x00"

#: Canonical record kinds as small integer codes for array work.
_READ, _WRITE, _REFRESH = 0, 1, 2

_KIND_CODES = {"read": _READ, "write": _WRITE, "refresh": _REFRESH}


def _op_codes(ops: Dict[str, str]) -> Dict[str, int]:
    """Vocabulary → kind-code map with upper-case aliases, so the hot
    loop skips ``str.lower`` for the common all-caps trace ops."""
    codes = {}
    for op, kind in ops.items():
        codes[op] = _KIND_CODES[kind]
        codes[op.upper()] = _KIND_CODES[kind]
    return codes


_CODE_MAPS = {"k6": _op_codes(K6_OPS), "mase": _op_codes(MASE_OPS)}

# ----------------------------------------------------------------------
# Degradation marker (the vector_downgrades idiom of repro.engine).
# ----------------------------------------------------------------------
_DOWNGRADES = 0


def columnar_available() -> bool:
    """Whether the columnar kernel can run in this process."""
    return _np is not None


def trace_downgrades() -> int:
    """One-time marker: 1 once any caller wanted the columnar path
    and degraded to scalar because numpy is missing, else 0."""
    return _DOWNGRADES


def record_downgrade() -> None:
    """Fire the downgrade marker (idempotent after the first call)."""
    global _DOWNGRADES
    if _DOWNGRADES == 0:
        _DOWNGRADES = 1


def reset_downgrades() -> None:
    """Test hook: clear the one-time downgrade marker."""
    global _DOWNGRADES
    _DOWNGRADES = 0


class _ColumnarOverflow(Exception):
    """A batch carries integers no int64 array can hold; the caller
    replays that batch through the scalar pipeline instead."""


# ----------------------------------------------------------------------
# Batch parsing.
# ----------------------------------------------------------------------
class TraceColumns:
    """One parsed batch as (addresses, kinds, cycles) int arrays."""

    def __init__(self, addresses, kinds, cycles):
        self.addresses = addresses
        self.kinds = kinds
        self.cycles = cycles

    def __len__(self) -> int:
        return int(self.addresses.shape[0])


def _columns_from_records(records: Iterable[TraceRecord]
                          ) -> TraceColumns:
    """Columns via the scalar record parser (the fallback path and
    the whole story for NDJSON).  Raises exactly what the scalar
    pipeline raises; raises :class:`_ColumnarOverflow` for integers
    beyond int64."""
    addresses: List[int] = []
    kinds: List[int] = []
    cycles: List[int] = []
    for record in records:
        addresses.append(record.address)
        kinds.append(_KIND_CODES[record.kind])
        cycles.append(record.cycle)
    try:
        return TraceColumns(
            _np.array(addresses, dtype=_np.int64),
            _np.array(kinds, dtype=_np.int8),
            _np.array(cycles, dtype=_np.int64))
    except OverflowError:
        raise _ColumnarOverflow() from None


def parse_columns(lines: Sequence[str], fmt: str,
                  source: str = "<trace>",
                  start: int = 1) -> TraceColumns:
    """Parse one batch of trace lines into column arrays.

    The fast path handles uniform three-token k6/mase batches in a
    single split; anything else (comments, blank lines, malformed
    payloads, NDJSON) re-parses the batch through the scalar parser —
    slower, but byte-identical in both results and errors.  ``start``
    is the global 1-based line number of ``lines[0]``.
    """
    if _np is None:
        raise TraceError("columnar parsing requires numpy "
                         "(the repro[vector] extra)", 0.0, None)
    n = len(lines)
    if n == 0:
        return TraceColumns(_np.empty(0, dtype=_np.int64),
                            _np.empty(0, dtype=_np.int8),
                            _np.empty(0, dtype=_np.int64))
    codes = _CODE_MAPS.get(fmt)
    if codes is not None:
        columns = _parse_tokenized(lines, n, codes)
        if columns is not None:
            return columns
    # Scalar fallback: exact errors, exact records, global numbering.
    return _columns_from_records(
        iter_records(iter(lines), fmt, source=source, start=start))


def _parse_tokenized(lines: Sequence[str], n: int,
                     codes: Dict[str, int]) -> Optional[TraceColumns]:
    """The sentinel-join fast path; ``None`` means "go scalar"."""
    flat = (" " + _SENTINEL + " ").join(lines).split()
    # A well-formed batch is exactly (addr op cycle sentinel)* — the
    # sentinel positions prove per-line arity on the flat list (a
    # blank line next to a six-token line keeps the total but shifts
    # a payload token into a sentinel slot).
    if len(flat) != 4 * n - 1:
        return None
    if n > 1 and set(flat[3::4]) != {_SENTINEL}:
        return None
    try:
        addresses = [int(token, 16) for token in flat[0::4]]
        cycles = [int(token, 0) for token in flat[2::4]]
    except ValueError:
        return None
    op_tokens = flat[1::4]
    try:
        kinds = [codes[token] for token in op_tokens]
    except KeyError:
        try:
            kinds = [codes[token.lower()] for token in op_tokens]
        except KeyError:
            return None
    try:
        address_array = _np.array(addresses, dtype=_np.int64)
        cycle_array = _np.array(cycles, dtype=_np.int64)
    except OverflowError:
        return None
    if int(address_array.min()) < 0 or int(cycle_array.min()) < 0:
        return None  # scalar parser raises the negative-value error
    return TraceColumns(address_array,
                        _np.array(kinds, dtype=_np.int8),
                        cycle_array)


# ----------------------------------------------------------------------
# Batched open-page expansion and fold.
# ----------------------------------------------------------------------
def fold_columns(accumulator: TraceAccumulator, columns: TraceColumns,
                 decoder: AddressDecoder, period: float,
                 open_rows: Dict[int, int],
                 shards: Optional[FrozenSet[int]] = None) -> None:
    """Expand and fold one parsed batch into ``accumulator``.

    Mirrors the scalar ``commands_from_records`` + ``feed`` pipeline
    exactly: per flat bank, a transaction to a row other than the open
    one costs PRE (when a row was open) + ACT, refresh costs PRE (when
    open) + REF, and every access to the already-open row is a row
    hit except the one its activate paid for.  ``open_rows`` is the
    carried open-row register, updated in place.  With ``shards`` the
    batch is first masked to the given (channel, rank) shard indices.
    """
    n = len(columns)
    if n == 0:
        return
    layout = decoder.field_layout()
    addresses = columns.addresses
    kinds = columns.kinds
    cycles = columns.cycles
    if shards is not None:
        rank_shift = layout["rank"][0]
        shard_index = ((addresses >> rank_shift)
                       & (decoder.num_shards - 1))
        mask = _np.isin(shard_index, _np.array(sorted(shards),
                                               dtype=_np.int64))
        addresses = addresses[mask]
        kinds = kinds[mask]
        cycles = cycles[mask]
        n = int(addresses.shape[0])
        if n == 0:
            return
    bank_shift, bank_bits = layout["bank"]
    row_shift, row_bits = layout["row"]
    rank_shift = layout["rank"][0]
    bank = (addresses >> bank_shift) & ((1 << bank_bits) - 1)
    row = (addresses >> row_shift) & ((1 << row_bits) - 1)
    shard_index = (addresses >> rank_shift) & (decoder.num_shards - 1)
    flat = (shard_index << bank_bits) | bank

    order = _np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    row_sorted = row[order]
    kind_sorted = kinds[order]
    is_refresh = kind_sorted == _REFRESH
    # Open row *after* each record: refresh closes the bank (-1).
    effective = _np.where(is_refresh, _np.int64(-1), row_sorted)
    previous = _np.empty(n, dtype=_np.int64)
    previous[1:] = effective[:-1]
    run_start = _np.empty(n, dtype=bool)
    run_start[0] = True
    run_start[1:] = flat_sorted[1:] != flat_sorted[:-1]
    start_positions = _np.flatnonzero(run_start)
    run_banks = flat_sorted[start_positions].tolist()
    carried = [open_rows.get(b, -1) for b in run_banks]
    carried = [-1 if value is None else value for value in carried]
    previous[start_positions] = carried

    access = ~is_refresh
    miss = access & (previous != row_sorted)
    precharge = (previous >= 0) & (miss | is_refresh)
    n_act = int(miss.sum())
    n_pre = int(precharge.sum())
    n_access = int(access.sum())
    reads = int((kind_sorted == _READ).sum())
    refreshes = int(is_refresh.sum())

    # Carry the open-row register (and the accumulator's bank view)
    # forward from each run's final record.
    end_positions = _np.append(start_positions[1:] - 1, n - 1)
    bank_rows: Dict[int, Optional[int]] = {}
    for bank_id, final in zip(run_banks,
                              effective[end_positions].tolist()):
        bank_id = int(bank_id)
        if final < 0:
            open_rows.pop(bank_id, None)
            bank_rows[bank_id] = None
        else:
            open_rows[bank_id] = int(final)
            bank_rows[bank_id] = int(final)

    counts = {Command.ACT: n_act, Command.PRE: n_pre,
              Command.RD: reads, Command.WR: n_access - reads,
              Command.REF: refreshes}
    # int * float in Python mirrors the scalar per-record time product
    # bit for bit (multiplication by a positive period is monotone, so
    # the max cycle carries the max time).
    last_time = int(cycles.max()) * period
    accumulator.absorb_batch(counts, row_hits=n_access - n_act,
                             commands=n + n_act + n_pre,
                             last_time=last_time, bank_rows=bank_rows)


# ----------------------------------------------------------------------
# Streaming drivers.
# ----------------------------------------------------------------------
class ColumnarReplayer:
    """Batched replay of one line stream into a
    :class:`TraceAccumulator`, with scalar fallbacks per batch.

    Feed line batches with :meth:`feed_lines`; the replayer tracks
    global line numbers (for exact error parity), carries the open-row
    register across batches and across any scalar-fallback batch, and
    optionally masks to a (channel, rank) shard set.
    """

    def __init__(self, accumulator: TraceAccumulator, fmt: str,
                 decoder: AddressDecoder, clock: float,
                 source: str = "<trace>",
                 shards: Optional[FrozenSet[int]] = None):
        if _np is None:
            raise TraceError("columnar replay requires numpy "
                             "(the repro[vector] extra)", 0.0, None)
        if accumulator.strict:
            raise TraceError(
                "columnar replay requires strict=False", 0.0, None)
        if clock <= 0:
            raise ValueError("clock must be positive")
        self.accumulator = accumulator
        self.fmt = fmt
        self.decoder = decoder
        self.period = 1.0 / clock
        self.clock = clock
        self.source = source
        self.shards = shards
        self.open_rows: Dict[int, int] = {}
        self._next_line = 1

    def feed_lines(self, lines: Sequence[str]) -> None:
        """Parse and fold one batch of lines."""
        start = self._next_line
        self._next_line += len(lines)
        try:
            columns = parse_columns(lines, self.fmt,
                                    source=self.source, start=start)
        except _ColumnarOverflow:
            self._feed_scalar(lines, start)
            return
        fold_columns(self.accumulator, columns, self.decoder,
                     self.period, self.open_rows, shards=self.shards)

    def _feed_scalar(self, lines: Sequence[str], start: int) -> None:
        """Replay one batch through the scalar pipeline, sharing the
        open-row register so the streams splice exactly."""
        from .ingest import commands_from_records
        records: Iterable[TraceRecord] = iter_records(
            iter(lines), self.fmt, source=self.source, start=start)
        if self.shards is not None:
            wanted = self.shards
            records = (record for record in records
                       if self.decoder.shard_of(record.address)
                       in wanted)
        self.accumulator.feed(commands_from_records(
            records, self.decoder, self.clock,
            open_rows=self.open_rows))


def replay_lines_columnar(accumulator: TraceAccumulator,
                          lines: Iterable[str], fmt: str,
                          decoder: AddressDecoder, clock: float,
                          source: str = "<trace>",
                          shards: Optional[FrozenSet[int]] = None,
                          batch_lines: int = LINES_PER_BATCH
                          ) -> TraceAccumulator:
    """Drive a whole line iterable through the columnar replayer."""
    replayer = ColumnarReplayer(accumulator, fmt, decoder, clock,
                                source=source, shards=shards)
    batch: List[str] = []
    for line in lines:
        batch.append(line)
        if len(batch) >= batch_lines:
            replayer.feed_lines(batch)
            batch = []
    if batch:
        replayer.feed_lines(batch)
    return accumulator


def replay_records_columnar(accumulator: TraceAccumulator,
                            records: Iterable[TraceRecord],
                            decoder: AddressDecoder, clock: float,
                            batch_records: int = RECORDS_PER_BATCH
                            ) -> TraceAccumulator:
    """Fold an already-parsed record stream in columnar batches."""
    if _np is None:
        raise TraceError("columnar replay requires numpy "
                         "(the repro[vector] extra)", 0.0, None)
    if accumulator.strict:
        raise TraceError(
            "columnar replay requires strict=False", 0.0, None)
    if clock <= 0:
        raise ValueError("clock must be positive")
    period = 1.0 / clock
    open_rows: Dict[int, int] = {}
    batch: List[TraceRecord] = []

    def flush() -> None:
        try:
            columns = _columns_from_records(batch)
        except _ColumnarOverflow:
            from .ingest import commands_from_records
            accumulator.feed(commands_from_records(
                iter(batch), decoder, clock, open_rows=open_rows))
            return
        fold_columns(accumulator, columns, decoder, period, open_rows)

    for record in records:
        batch.append(record)
        if len(batch) >= batch_records:
            flush()
            batch = []
    if batch:
        flush()
    return accumulator


# ----------------------------------------------------------------------
# Backend choice.
# ----------------------------------------------------------------------
#: Trace files below this size (bytes) never leave the serial path
#: under ``backend="auto"`` without numpy: forking workers costs more
#: than replaying a small file.
MIN_PROCESS_BYTES = 4 * 1024 * 1024


def choose_trace_backend(strict: bool, shards: int = 1,
                         jobs: Optional[int] = None,
                         size_bytes: Optional[int] = None) -> str:
    """The serial/vector/process decision behind ``backend="auto"``.

    Strict replay is always serial (per-command timing legality).
    With numpy present the columnar kernel wins on any host — it
    folds in-process, needs no fork and measured ~15× over scalar —
    so auto picks ``vector``.  Without numpy, rank-sharded process
    replay is the only speedup left; it pays one whole-file parse per
    worker, so it is chosen only when there are real shards, usable
    workers and enough trace to amortize (``size_bytes`` ≥
    :data:`MIN_PROCESS_BYTES`).  Everything else stays serial.
    """
    if strict:
        return "serial"
    if columnar_available():
        return "vector"
    record_downgrade()
    from ..engine.executor import default_jobs
    workers = jobs if jobs is not None else default_jobs()
    if (shards > 1 and workers > 1
            and size_bytes is not None
            and size_bytes >= MIN_PROCESS_BYTES):
        return "process"
    return "serial"
