"""Streaming ingestion of external memory traces (k6, mase, NDJSON).

Public surface: line parsers and gzip plumbing (:mod:`formats`), the
configurable physical-address bit-slice decoder (:mod:`decoder`) and
the lazy record → command → energy pipeline (:mod:`ingest`).
"""

from .decoder import POLICIES, AddressDecoder, DecodedAddress
from .formats import (FORMATS, TraceFormatError, TraceRecord,
                      detect_format, iter_decompressed, iter_jsonl,
                      iter_k6, iter_lines, iter_mase, iter_records,
                      open_trace_lines)
from .ingest import (DEFAULT_CLOCK, accumulate_records,
                     commands_from_records, evaluate_trace_file,
                     read_trace)

__all__ = [
    "POLICIES",
    "AddressDecoder",
    "DecodedAddress",
    "FORMATS",
    "TraceFormatError",
    "TraceRecord",
    "detect_format",
    "iter_decompressed",
    "iter_jsonl",
    "iter_k6",
    "iter_lines",
    "iter_mase",
    "iter_records",
    "open_trace_lines",
    "DEFAULT_CLOCK",
    "accumulate_records",
    "commands_from_records",
    "evaluate_trace_file",
    "read_trace",
]
