"""Streaming ingestion of external memory traces (k6, mase, NDJSON).

Public surface: line parsers and gzip plumbing (:mod:`formats`), the
configurable physical-address bit-slice decoder (:mod:`decoder`), the
lazy record → command → energy pipeline (:mod:`ingest`), the columnar
batch kernel (:mod:`columnar`, numpy-optional) and rank-sharded
process-parallel replay with exact merge (:mod:`parallel`).
"""

from .decoder import POLICIES, AddressDecoder, DecodedAddress
from .formats import (FORMATS, TraceFormatError, TraceRecord,
                      detect_format, iter_decompressed, iter_jsonl,
                      iter_k6, iter_lines, iter_mase, iter_records,
                      open_trace_lines)
from .ingest import (DEFAULT_CLOCK, TRACE_BACKENDS,
                     accumulate_records, commands_from_records,
                     evaluate_trace_file, read_trace,
                     replay_trace_file, resolve_trace_format)
from .columnar import (ColumnarReplayer, choose_trace_backend,
                       columnar_available, parse_columns,
                       replay_lines_columnar, replay_records_columnar,
                       trace_downgrades)
from .parallel import (evaluate_file_sharded, fold_file_shards,
                       replay_records_sharded, shard_assignments)

__all__ = [
    "POLICIES",
    "AddressDecoder",
    "DecodedAddress",
    "FORMATS",
    "TraceFormatError",
    "TraceRecord",
    "detect_format",
    "iter_decompressed",
    "iter_jsonl",
    "iter_k6",
    "iter_lines",
    "iter_mase",
    "iter_records",
    "open_trace_lines",
    "DEFAULT_CLOCK",
    "TRACE_BACKENDS",
    "accumulate_records",
    "commands_from_records",
    "evaluate_trace_file",
    "read_trace",
    "replay_trace_file",
    "resolve_trace_format",
    "ColumnarReplayer",
    "choose_trace_backend",
    "columnar_available",
    "parse_columns",
    "replay_lines_columnar",
    "replay_records_columnar",
    "trace_downgrades",
    "evaluate_file_sharded",
    "fold_file_shards",
    "replay_records_sharded",
    "shard_assignments",
]
