"""Physical-address decoding into channel/rank/bank/row/column slices.

External traces address memory with flat physical byte addresses; the
trace engine wants (bank, row) coordinates.  :class:`AddressDecoder`
carves an address into bit fields, LSB upward: ``offset_bits`` of
within-access offset first, then the policy-ordered core fields, then
rank and channel at the top.

Policies (naming reads MSB → LSB below channel/rank):

``row-bank-column`` (default, page-interleaved)
    ``| channel | rank | row | bank | column | offset |`` —
    consecutive cache lines walk one row, maximizing row hits.

``bank-row-column`` (bank-interleaved)
    ``| channel | rank | bank | row | column | offset |`` —
    consecutive rows sit in one bank; streams hop banks rarely.

``decode`` / ``encode`` round-trip exactly for in-range fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.trace import TraceError


#: Supported bit-slice orderings.
POLICIES = ("row-bank-column", "bank-row-column")


@dataclass(frozen=True)
class DecodedAddress:
    """One physical address split into coordinate fields."""

    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0


@dataclass(frozen=True)
class AddressDecoder:
    """Configurable bit-slice mapping from physical addresses."""

    bank_bits: int
    row_bits: int
    col_bits: int
    channel_bits: int = 0
    rank_bits: int = 0
    offset_bits: int = 0
    policy: str = "row-bank-column"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            known = ", ".join(POLICIES)
            raise TraceError(f"unknown decode policy {self.policy!r} "
                             f"(known: {known})", 0.0, None)
        for name in ("bank_bits", "row_bits", "col_bits"):
            if getattr(self, name) <= 0:
                raise TraceError(f"{name} must be positive", 0.0, None)
        for name in ("channel_bits", "rank_bits", "offset_bits"):
            if getattr(self, name) < 0:
                raise TraceError(f"{name} must not be negative",
                                 0.0, None)

    # ------------------------------------------------------------------
    @property
    def address_bits(self) -> int:
        """Total significant address bits (including the offset)."""
        return (self.offset_bits + self.col_bits + self.row_bits
                + self.bank_bits + self.rank_bits + self.channel_bits)

    def _fields(self) -> List[Tuple[str, int]]:
        """(name, width) pairs in LSB → MSB order above the offset."""
        if self.policy == "row-bank-column":
            core = [("column", self.col_bits),
                    ("bank", self.bank_bits),
                    ("row", self.row_bits)]
        else:
            core = [("column", self.col_bits),
                    ("row", self.row_bits),
                    ("bank", self.bank_bits)]
        return core + [("rank", self.rank_bits),
                       ("channel", self.channel_bits)]

    def field_layout(self) -> Dict[str, Tuple[int, int]]:
        """Field name → ``(lsb_shift, width)`` over the raw address.

        The flat shift/mask view of :meth:`decode` — the columnar
        kernel slices whole address arrays with it (``(addresses >>
        shift) & mask``) and lands bit-identical coordinates.
        """
        layout: Dict[str, Tuple[int, int]] = {}
        shift = self.offset_bits
        for name, bits in self._fields():
            layout[name] = (shift, bits)
            shift += bits
        return layout

    # ------------------------------------------------------------------
    @property
    def shard_bits(self) -> int:
        """Address bits identifying the (channel, rank) shard."""
        return self.channel_bits + self.rank_bits

    @property
    def num_shards(self) -> int:
        """Independent (channel, rank) replay shards this decoder
        produces.  Bank state and tFAW tracking never cross a rank
        boundary, so shards replay in parallel and merge exactly."""
        return 1 << self.shard_bits

    def shard_of(self, address: int) -> int:
        """The (channel, rank) shard index of one address.

        Equals ``flat_bank(decode(address)) >> bank_bits`` — rank and
        channel are always the top two fields regardless of policy —
        but computed with one shift and mask.
        """
        if address < 0:
            raise TraceError("address must not be negative", 0.0, None)
        shift = (self.offset_bits + self.col_bits + self.row_bits
                 + self.bank_bits)
        return (address >> shift) & (self.num_shards - 1)

    def decode(self, address: int) -> DecodedAddress:
        """Split a physical byte address into coordinates."""
        if address < 0:
            raise TraceError("address must not be negative", 0.0, None)
        value = address >> self.offset_bits
        fields = {}
        for name, bits in self._fields():
            fields[name] = value & ((1 << bits) - 1)
            value >>= bits
        return DecodedAddress(**fields)

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (offset bits encode as zero)."""
        value = 0
        shift = self.offset_bits
        for name, bits in self._fields():
            part = getattr(decoded, name)
            if part < 0 or part >= (1 << bits):
                raise TraceError(
                    f"{name} {part} does not fit in {bits} bits",
                    0.0, None,
                )
            value |= part << shift
            shift += bits
        return value

    def flat_bank(self, decoded: DecodedAddress) -> int:
        """Flatten (channel, rank, bank) into one bank index.

        With nonzero channel/rank bits each (channel, rank, bank)
        triple becomes a distinct bank for the replay engine — evaluate
        such traces with ``strict=False`` (the flat index can exceed
        the device's own bank count).
        """
        return (((decoded.channel << self.rank_bits) | decoded.rank)
                << self.bank_bits) | decoded.bank

    # ------------------------------------------------------------------
    @classmethod
    def from_device(cls, device, policy: str = "row-bank-column",
                    channel_bits: int = 0, rank_bits: int = 0,
                    offset_bits: Optional[int] = None) -> "AddressDecoder":
        """Decoder matching a device's own bank/row/column geometry.

        ``offset_bits`` defaults to the byte width of one column access
        (``bits_per_access / 8``), so consecutive accesses land on
        consecutive columns.
        """
        spec = device.spec
        if offset_bits is None:
            access_bytes = max(1, spec.bits_per_access // 8)
            offset_bits = max(0, access_bytes.bit_length() - 1)
        return cls(
            bank_bits=spec.bank_bits,
            row_bits=spec.row_bits,
            col_bits=spec.col_bits,
            channel_bits=channel_bits,
            rank_bits=rank_bits,
            offset_bits=offset_bits,
            policy=policy,
        )
