"""External trace-file formats: k6, gem5/mase and NDJSON lines.

All three formats carry memory *transactions* — a physical address, an
operation and an integer cycle stamp — one per line:

``k6`` (DRAMSim2 / Kill-Llama)
    ``0x7FF2C8A0 P_MEM_RD 186`` — ops ``P_MEM_RD`` / ``P_FETCH`` /
    ``P_LOCK_RD`` read, ``P_MEM_WR`` / ``P_LOCK_WR`` write, plus plain
    ``READ`` / ``WRITE`` and the ``REF`` extension.

``mase`` (gem5 / mase)
    ``0x2971CFA0 IFETCH 62`` — ops ``IFETCH`` / ``READ`` read,
    ``WRITE`` write.

``jsonl``
    One JSON object per line: ``{"address": "0x100", "op": "read",
    "cycle": 4}`` (``address`` may be an integer).

Parsers stream lazily — they accept any line iterable and yield
:class:`TraceRecord` objects one at a time; malformed lines raise
:class:`TraceFormatError` with 1-based line numbers.  Gzip input is
handled transparently: by magic-byte sniffing for files
(:func:`open_trace_lines`) and by incremental decompression for byte
streams (:func:`iter_decompressed`).
"""

from __future__ import annotations

import gzip
import io
import json
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator

from ..core.trace import TraceError
from ..errors import ModelError


#: Canonical operation kinds carried by :class:`TraceRecord`.
KINDS = ("read", "write", "refresh")

#: k6 / DRAMSim2 operation vocabulary → canonical kind.
K6_OPS: Dict[str, str] = {
    "p_mem_rd": "read",
    "p_fetch": "read",
    "p_lock_rd": "read",
    "p_mem_wr": "write",
    "p_lock_wr": "write",
    "read": "read",
    "rd": "read",
    "write": "write",
    "wr": "write",
    "ref": "refresh",
    "refresh": "refresh",
}

#: gem5 / mase operation vocabulary → canonical kind.
MASE_OPS: Dict[str, str] = {
    "ifetch": "read",
    "read": "read",
    "write": "write",
    "ref": "refresh",
    "refresh": "refresh",
}


class TraceFormatError(TraceError):
    """A trace line failed to parse; carries its 1-based line number."""

    def __init__(self, message: str, line: int = 0,
                 source: str = "<trace>"):
        self.line = line
        self.source = source
        self.time = 0.0
        self.index = line
        ModelError.__init__(self, f"{source}:{line}: {message}")


@dataclass(frozen=True)
class TraceRecord:
    """One parsed transaction of an external trace."""

    address: int
    """Physical byte address."""
    kind: str
    """Canonical operation: ``read``, ``write`` or ``refresh``."""
    cycle: int
    """Integer cycle stamp from the trace line."""
    line: int = 0
    """1-based source line number (for error reporting)."""


def _skip(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith(("#", ";", "//"))


def _parse_address(token: str, number: int, source: str) -> int:
    try:
        address = int(token, 16)
    except ValueError:
        raise TraceFormatError(f"bad address {token!r}", number, source)
    if address < 0:
        raise TraceFormatError(f"negative address {token!r}", number,
                               source)
    return address


def _parse_cycle(token: str, number: int, source: str) -> int:
    try:
        cycle = int(token, 0)
    except ValueError:
        raise TraceFormatError(f"bad cycle {token!r}", number, source)
    if cycle < 0:
        raise TraceFormatError(f"negative cycle {token!r}", number,
                               source)
    return cycle


def _iter_columns(lines: Iterable[str], ops: Dict[str, str],
                  source: str, start: int = 1) -> Iterator[TraceRecord]:
    for number, line in enumerate(lines, start=start):
        if _skip(line):
            continue
        tokens = line.split()
        if len(tokens) != 3:
            raise TraceFormatError(
                f"expected '<address> <op> <cycle>', got {line.strip()!r}",
                number, source,
            )
        kind = ops.get(tokens[1].lower())
        if kind is None:
            raise TraceFormatError(f"unknown operation {tokens[1]!r}",
                                   number, source)
        yield TraceRecord(
            address=_parse_address(tokens[0], number, source),
            kind=kind,
            cycle=_parse_cycle(tokens[2], number, source),
            line=number,
        )


def iter_k6(lines: Iterable[str], source: str = "<trace>",
            start: int = 1) -> Iterator[TraceRecord]:
    """Parse k6 / DRAMSim2 trace lines lazily.

    ``start`` is the 1-based source line number of the first line —
    batch parsers hand line windows here with their global offset so
    error messages keep whole-file line numbers.
    """
    return _iter_columns(lines, K6_OPS, source, start=start)


def iter_mase(lines: Iterable[str], source: str = "<trace>",
              start: int = 1) -> Iterator[TraceRecord]:
    """Parse gem5 / mase trace lines lazily."""
    return _iter_columns(lines, MASE_OPS, source, start=start)


def iter_jsonl(lines: Iterable[str], source: str = "<trace>",
               start: int = 1) -> Iterator[TraceRecord]:
    """Parse NDJSON trace lines lazily."""
    for number, line in enumerate(lines, start=start):
        if _skip(line):
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            raise TraceFormatError("line is not valid JSON", number,
                                   source)
        if not isinstance(payload, dict):
            raise TraceFormatError("line is not a JSON object", number,
                                   source)
        address = payload.get("address", payload.get("addr"))
        if isinstance(address, str):
            address = _parse_address(address, number, source)
        if not isinstance(address, int) or address < 0:
            raise TraceFormatError("missing or bad 'address'", number,
                                   source)
        op = str(payload.get("op", payload.get("kind", ""))).lower()
        kind = K6_OPS.get(op)
        if kind is None:
            raise TraceFormatError(f"unknown operation {op!r}", number,
                                   source)
        cycle = payload.get("cycle", payload.get("time"))
        if not isinstance(cycle, int) or cycle < 0:
            raise TraceFormatError("missing or bad 'cycle'", number,
                                   source)
        yield TraceRecord(address=address, kind=kind, cycle=cycle,
                          line=number)


#: Registered line parsers by format name.
FORMATS = {
    "k6": iter_k6,
    "mase": iter_mase,
    "jsonl": iter_jsonl,
}


def detect_format(line: str) -> str:
    """Best-effort format guess from the first payload line."""
    stripped = line.strip()
    if stripped.startswith("{"):
        return "jsonl"
    tokens = stripped.split()
    if len(tokens) == 3 and tokens[1].lower() in ("ifetch",):
        return "mase"
    return "k6"


def iter_records(lines: Iterable[str], fmt: str,
                 source: str = "<trace>",
                 start: int = 1) -> Iterator[TraceRecord]:
    """Dispatch to the parser registered for ``fmt``."""
    parser = FORMATS.get(fmt)
    if parser is None:
        known = ", ".join(sorted(FORMATS))
        raise TraceFormatError(f"unknown trace format {fmt!r} "
                               f"(known: {known})", 0, source)
    return parser(lines, source=source, start=start)


# ----------------------------------------------------------------------
# Byte-stream plumbing (files and chunked uploads).

def open_trace_lines(path) -> io.TextIOWrapper:
    """Open a trace file as text lines, gunzipping when the gzip magic
    (or a ``.gz`` suffix) is present.  Caller closes the handle."""
    raw = open(path, "rb")
    magic = raw.read(2)
    raw.seek(0)
    if magic == b"\x1f\x8b" or str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw),
                                encoding="utf-8", errors="replace")
    return io.TextIOWrapper(raw, encoding="utf-8", errors="replace")


def iter_decompressed(chunks: Iterable[bytes]) -> Iterator[bytes]:
    """Incrementally gunzip a byte-chunk stream (constant memory).

    Handles multi-member gzip streams (members are concatenated).
    """
    decomp = zlib.decompressobj(16 + zlib.MAX_WBITS)
    for chunk in chunks:
        data = bytes(chunk)
        while data:
            out = decomp.decompress(data)
            if out:
                yield out
            if decomp.eof:
                data = decomp.unused_data
                decomp = zlib.decompressobj(16 + zlib.MAX_WBITS)
            else:
                data = b""
    tail = decomp.flush()
    if tail:
        yield tail


def iter_lines(chunks: Iterable[bytes]) -> Iterator[str]:
    """Split a byte-chunk stream into text lines (constant memory)."""
    buffer = b""
    for chunk in chunks:
        buffer += chunk
        while True:
            cut = buffer.find(b"\n")
            if cut < 0:
                break
            yield buffer[:cut].decode("utf-8", "replace")
            buffer = buffer[cut + 1:]
    if buffer:
        yield buffer.decode("utf-8", "replace")
