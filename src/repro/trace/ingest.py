"""Streaming ingestion: external trace records → timed DRAM commands.

The pipeline is lazy end to end: file lines → :class:`TraceRecord`
stream → open-page command expansion → :class:`TraceAccumulator` fold.
Nothing materializes the trace, so multi-billion-command files evaluate
in bounded memory.

Open-page expansion keeps one open-row register per bank: a transaction
to a closed row emits ``PRE`` (when another row is open) + ``ACT``
before the column access, all stamped with the transaction's own time —
external traces carry no command-level timing, so expanded traces are
evaluated with ``strict=False``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Optional

from ..core.model import DramPowerModel
from ..core.trace import (TraceAccumulator, TraceCommand, TraceResult,
                          evaluate_trace)
from ..description import Command
from .decoder import AddressDecoder
from .formats import (TraceRecord, detect_format, iter_records,
                      open_trace_lines)


#: Default cycle clock (Hz) when a trace does not state one: 1 GHz, so
#: cycle stamps read directly as nanoseconds.
DEFAULT_CLOCK = 1e9


def commands_from_records(records: Iterable[TraceRecord],
                          decoder: AddressDecoder,
                          clock: float = DEFAULT_CLOCK
                          ) -> Iterator[TraceCommand]:
    """Expand transaction records into an open-page command stream."""
    if clock <= 0:
        raise ValueError("clock must be positive")
    period = 1.0 / clock
    open_rows: Dict[int, int] = {}
    for record in records:
        decoded = decoder.decode(record.address)
        bank = decoder.flat_bank(decoded)
        time = record.cycle * period
        if record.kind == "refresh":
            if open_rows.pop(bank, None) is not None:
                yield TraceCommand(time, Command.PRE, bank)
            yield TraceCommand(time, Command.REF, bank)
            continue
        row = decoded.row
        open_row = open_rows.get(bank)
        if open_row != row:
            if open_row is not None:
                yield TraceCommand(time, Command.PRE, bank)
            yield TraceCommand(time, Command.ACT, bank, row)
            open_rows[bank] = row
        kind = Command.RD if record.kind == "read" else Command.WR
        yield TraceCommand(time, kind, bank, row)


def read_trace(path, fmt: Optional[str] = None,
               source: Optional[str] = None) -> Iterator[TraceRecord]:
    """Yield records from a (possibly gzipped) trace file lazily.

    ``fmt`` of ``None`` or ``"auto"`` sniffs the format from the first
    payload line.
    """
    handle = open_trace_lines(path)
    try:
        lines: Iterator[str] = iter(handle)
        if fmt is None or fmt == "auto":
            fmt = "k6"
            head = []
            for line in lines:
                head.append(line)
                stripped = line.strip()
                if stripped and not stripped.startswith(("#", ";")):
                    fmt = detect_format(line)
                    break
            lines = itertools.chain(head, lines)
        yield from iter_records(lines, fmt, source=source or str(path))
    finally:
        handle.close()


def evaluate_trace_file(model: DramPowerModel, path,
                        fmt: Optional[str] = None,
                        decoder: Optional[AddressDecoder] = None,
                        clock: float = DEFAULT_CLOCK,
                        strict: bool = False) -> TraceResult:
    """One-call evaluation of an external trace file."""
    if decoder is None:
        decoder = AddressDecoder.from_device(model.device)
    commands = commands_from_records(read_trace(path, fmt), decoder,
                                     clock)
    return evaluate_trace(model, commands, strict=strict)


def accumulate_records(model: DramPowerModel,
                       records: Iterable[TraceRecord],
                       decoder: Optional[AddressDecoder] = None,
                       clock: float = DEFAULT_CLOCK,
                       strict: bool = False) -> TraceAccumulator:
    """Fold a record stream into a fresh :class:`TraceAccumulator`."""
    if decoder is None:
        decoder = AddressDecoder.from_device(model.device)
    accumulator = TraceAccumulator(model, strict=strict)
    accumulator.feed(commands_from_records(records, decoder, clock))
    return accumulator
