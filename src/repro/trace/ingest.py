"""Streaming ingestion: external trace records → timed DRAM commands.

The pipeline is lazy end to end: file lines → :class:`TraceRecord`
stream → open-page command expansion → :class:`TraceAccumulator` fold.
Nothing materializes the trace, so multi-billion-command files evaluate
in bounded memory.

Open-page expansion keeps one open-row register per bank: a transaction
to a closed row emits ``PRE`` (when another row is open) + ``ACT``
before the column access, all stamped with the transaction's own time —
external traces carry no command-level timing, so expanded traces are
evaluated with ``strict=False``.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, Iterable, Iterator, Optional, Tuple

from ..core.model import DramPowerModel
from ..core.trace import (TraceAccumulator, TraceCommand, TraceError,
                          TraceResult)
from ..description import Command
from .decoder import AddressDecoder
from .formats import (TraceRecord, detect_format, iter_records,
                      open_trace_lines)


#: Default cycle clock (Hz) when a trace does not state one: 1 GHz, so
#: cycle stamps read directly as nanoseconds.
DEFAULT_CLOCK = 1e9

#: Replay backends accepted by the file/record entry points.  ``auto``
#: defers to :func:`~repro.trace.columnar.choose_trace_backend`.
TRACE_BACKENDS = ("serial", "vector", "process")


def commands_from_records(records: Iterable[TraceRecord],
                          decoder: AddressDecoder,
                          clock: float = DEFAULT_CLOCK,
                          open_rows: Optional[Dict[int, int]] = None
                          ) -> Iterator[TraceCommand]:
    """Expand transaction records into an open-page command stream.

    ``open_rows`` optionally supplies (and keeps receiving) the
    per-bank open-row register, so a caller alternating between this
    scalar expansion and the columnar batch kernel hands the carried
    state back and forth and the combined stream stays bit-identical
    to a single-path run.
    """
    if clock <= 0:
        raise ValueError("clock must be positive")
    period = 1.0 / clock
    if open_rows is None:
        open_rows = {}
    for record in records:
        decoded = decoder.decode(record.address)
        bank = decoder.flat_bank(decoded)
        time = record.cycle * period
        if record.kind == "refresh":
            if open_rows.pop(bank, None) is not None:
                yield TraceCommand(time, Command.PRE, bank)
            yield TraceCommand(time, Command.REF, bank)
            continue
        row = decoded.row
        open_row = open_rows.get(bank)
        if open_row != row:
            if open_row is not None:
                yield TraceCommand(time, Command.PRE, bank)
            yield TraceCommand(time, Command.ACT, bank, row)
            open_rows[bank] = row
        kind = Command.RD if record.kind == "read" else Command.WR
        yield TraceCommand(time, kind, bank, row)


def read_trace(path, fmt: Optional[str] = None,
               source: Optional[str] = None) -> Iterator[TraceRecord]:
    """Yield records from a (possibly gzipped) trace file lazily.

    ``fmt`` of ``None`` or ``"auto"`` sniffs the format from the first
    payload line.
    """
    handle = open_trace_lines(path)
    try:
        lines: Iterator[str] = iter(handle)
        if fmt is None or fmt == "auto":
            fmt = "k6"
            head = []
            for line in lines:
                head.append(line)
                stripped = line.strip()
                if stripped and not stripped.startswith(("#", ";")):
                    fmt = detect_format(line)
                    break
            lines = itertools.chain(head, lines)
        yield from iter_records(lines, fmt, source=source or str(path))
    finally:
        handle.close()


def resolve_trace_format(path, fmt: Optional[str] = None) -> str:
    """The concrete format of a trace file: sniffed when ``fmt`` is
    ``None`` or ``"auto"``, passed through otherwise.

    Sharded replay needs the sniff done once in the parent so every
    worker parses with the same format.
    """
    if fmt is not None and fmt != "auto":
        return fmt
    handle = open_trace_lines(path)
    try:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith(("#", ";")):
                return detect_format(line)
    finally:
        handle.close()
    return "k6"


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        return "auto"
    if backend != "auto" and backend not in TRACE_BACKENDS:
        raise TraceError(
            f"unknown trace backend {backend!r}; choose from "
            + "/".join(TRACE_BACKENDS + ("auto",)), 0.0, None)
    return backend


def replay_trace_file(model: DramPowerModel, path,
                      fmt: Optional[str] = None,
                      decoder: Optional[AddressDecoder] = None,
                      clock: float = DEFAULT_CLOCK,
                      strict: bool = False,
                      backend: str = "auto",
                      jobs: Optional[int] = None
                      ) -> Tuple[TraceAccumulator, str]:
    """Replay an external trace file on the chosen backend.

    Returns ``(accumulator, backend_used)``.  ``backend="auto"``
    weighs serial vs the columnar kernel vs rank-sharded processes
    (:func:`~repro.trace.columnar.choose_trace_backend`); every
    backend produces bit-for-bit identical aggregates, so the choice
    is purely a throughput decision.  Strict replay needs per-command
    timing state the batched paths discard, so ``vector`` and
    ``process`` reject ``strict=True``; ``auto`` quietly stays
    serial.  An explicit ``vector`` request without numpy degrades to
    serial and fires the one-time downgrade marker, exactly like
    :mod:`repro.engine.vector`.
    """
    from .columnar import (choose_trace_backend, columnar_available,
                           record_downgrade, replay_lines_columnar)
    if decoder is None:
        decoder = AddressDecoder.from_device(model.device)
    resolved_fmt = resolve_trace_format(path, fmt)
    backend = _resolve_backend(backend)
    if backend == "auto":
        try:
            size: Optional[int] = os.path.getsize(path)
        except OSError:
            size = None
        backend = choose_trace_backend(strict=strict,
                                       shards=decoder.num_shards,
                                       jobs=jobs, size_bytes=size)
    elif backend in ("vector", "process") and strict:
        raise TraceError(
            f"the {backend} backend replays batched/sharded and "
            "cannot honour strict=True; use backend='serial' for "
            "strict legality checking", 0.0, None)
    if backend == "vector" and not columnar_available():
        record_downgrade()
        backend = "serial"
    if backend == "vector":
        accumulator = TraceAccumulator(model, strict=False)
        handle = open_trace_lines(path)
        try:
            replay_lines_columnar(accumulator, handle, resolved_fmt,
                                  decoder, clock, source=str(path))
        finally:
            handle.close()
        return accumulator, "vector"
    if backend == "process":
        from .parallel import evaluate_file_sharded
        accumulator = evaluate_file_sharded(model, path, resolved_fmt,
                                            decoder, clock, jobs=jobs)
        return accumulator, "process"
    accumulator = TraceAccumulator(model, strict=strict)
    accumulator.feed(commands_from_records(
        read_trace(path, resolved_fmt), decoder, clock))
    return accumulator, "serial"


def evaluate_trace_file(model: DramPowerModel, path,
                        fmt: Optional[str] = None,
                        decoder: Optional[AddressDecoder] = None,
                        clock: float = DEFAULT_CLOCK,
                        strict: bool = False,
                        backend: str = "auto",
                        jobs: Optional[int] = None) -> TraceResult:
    """One-call evaluation of an external trace file."""
    accumulator, _ = replay_trace_file(model, path, fmt=fmt,
                                       decoder=decoder, clock=clock,
                                       strict=strict, backend=backend,
                                       jobs=jobs)
    return accumulator.result()


def accumulate_records(model: DramPowerModel,
                       records: Iterable[TraceRecord],
                       decoder: Optional[AddressDecoder] = None,
                       clock: float = DEFAULT_CLOCK,
                       strict: bool = False,
                       backend: str = "auto",
                       jobs: Optional[int] = None
                       ) -> TraceAccumulator:
    """Fold a record stream into a fresh :class:`TraceAccumulator`.

    ``backend="auto"`` picks the columnar kernel for lenient replay
    when numpy is present and serial otherwise — never processes,
    which would have to materialize the stream; an explicit
    ``backend="process"`` accepts that cost and runs the rank-sharded
    pool over the materialized records.
    """
    from .columnar import (columnar_available, record_downgrade,
                           replay_records_columnar)
    if decoder is None:
        decoder = AddressDecoder.from_device(model.device)
    backend = _resolve_backend(backend)
    if backend == "auto":
        backend = ("vector" if not strict and columnar_available()
                   else "serial")
        if not strict and not columnar_available():
            record_downgrade()
    elif backend in ("vector", "process") and strict:
        raise TraceError(
            f"the {backend} backend replays batched/sharded and "
            "cannot honour strict=True; use backend='serial' for "
            "strict legality checking", 0.0, None)
    if backend == "vector" and not columnar_available():
        record_downgrade()
        backend = "serial"
    if backend == "vector":
        accumulator = TraceAccumulator(model, strict=False)
        return replay_records_columnar(accumulator, records, decoder,
                                       clock)
    if backend == "process":
        from .parallel import replay_records_sharded
        return replay_records_sharded(model, list(records), decoder,
                                      clock, jobs=jobs)
    accumulator = TraceAccumulator(model, strict=strict)
    accumulator.feed(commands_from_records(records, decoder, clock))
    return accumulator
