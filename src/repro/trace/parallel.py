"""Rank-sharded process-parallel trace replay with exact merge.

A trace decoded with nonzero ``channel_bits``/``rank_bits`` splits
into ``decoder.num_shards`` independent replays: the shard index
occupies the top bits of every flat bank, so bank state never crosses
a shard boundary and lenient replay of each shard is oblivious to the
others.  Each worker process opens the trace file itself, parses every
line (the parse cannot be sharded — shard membership needs the decoded
address) and folds only its shard set — columnar when numpy is
present, scalar otherwise.  The workers return
:meth:`~repro.core.trace.TraceAccumulator.export_state` dictionaries
and the parent merges them with
:meth:`~repro.core.trace.TraceAccumulator.merge_state`; counts sum as
integers, time watermarks take maxima, and energy is derived once from
the merged counts — so the merged result is byte-identical to a
serial one-shot replay of the same file.

Pool-loss handling mirrors :mod:`repro.engine.executor`: shard sets
lost to a broken pool degrade to in-process folding, results
unchanged.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.model import DramPowerModel
from ..core.trace import TraceAccumulator
from ..description import DramDescription
from ..engine.executor import default_jobs, shard
from .columnar import (columnar_available, replay_lines_columnar,
                       replay_records_columnar)
from .decoder import AddressDecoder
from .formats import open_trace_lines
from .ingest import commands_from_records, read_trace


def shard_assignments(shards: int,
                      workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard-id ranges, one per worker.

    Delegates to the engine's balanced :func:`~repro.engine.executor.
    shard` splitter so at most ``workers`` ranges cover all shard ids
    in order — merging per-range states in range order reproduces the
    serial result exactly.
    """
    return shard(shards, workers)


def fold_file_shards(model: DramPowerModel, path, fmt: str,
                     decoder: AddressDecoder, clock: float,
                     shard_ids: Iterable[int]) -> TraceAccumulator:
    """Replay only the given (channel, rank) shards of one file.

    The single-process shard fold shared by pool workers, the
    in-process degradation path and the durable ``trace`` job kind.
    Uses the columnar kernel with a shard mask when numpy is present;
    otherwise filters the scalar record stream by
    :meth:`AddressDecoder.shard_of`.
    """
    accumulator = TraceAccumulator(model, strict=False)
    wanted = frozenset(int(index) for index in shard_ids)
    if not wanted:
        return accumulator
    everything = len(wanted) >= decoder.num_shards
    if columnar_available():
        handle = open_trace_lines(path)
        try:
            replay_lines_columnar(
                accumulator, handle, fmt, decoder, clock,
                source=str(path),
                shards=None if everything else wanted)
        finally:
            handle.close()
        return accumulator
    records = read_trace(path, fmt)
    if not everything:
        records = (record for record in records
                   if decoder.shard_of(record.address) in wanted)
    accumulator.feed(commands_from_records(records, decoder, clock))
    return accumulator


def _replay_file_shards(device: DramDescription, path: str, fmt: str,
                        decoder: AddressDecoder, clock: float,
                        shard_ids: Tuple[int, ...]) -> Dict:
    """Worker entry point: fold one shard range, return its state."""
    model = DramPowerModel(device)
    accumulator = fold_file_shards(model, path, fmt, decoder, clock,
                                   shard_ids)
    return accumulator.export_state()


def evaluate_file_sharded(model: DramPowerModel, path, fmt: str,
                          decoder: AddressDecoder, clock: float,
                          jobs: Optional[int] = None
                          ) -> TraceAccumulator:
    """Shard-parallel replay of one trace file, merged exactly.

    Splits the decoder's (channel, rank) shards across process
    workers (each worker re-parses the file — parsing cannot be
    sharded — and folds only its shard set), then merges the worker
    states in shard order.  A broken pool degrades the lost ranges to
    in-process folding; either way the returned accumulator snapshots
    byte-identically to serial one-shot replay.
    """
    shards = decoder.num_shards
    workers = jobs if jobs is not None else default_jobs()
    workers = max(1, min(workers, shards))
    ranges = shard_assignments(shards, workers)
    if len(ranges) <= 1:
        return fold_file_shards(model, path, fmt, decoder, clock,
                                range(shards))
    states: Dict[int, Dict] = {}
    lost: List[int] = []
    try:
        with ProcessPoolExecutor(max_workers=len(ranges)) as pool:
            futures = {}
            for index, (low, high) in enumerate(ranges):
                futures[index] = pool.submit(
                    _replay_file_shards, model.device, str(path), fmt,
                    decoder, clock, tuple(range(low, high)))
            for index, future in futures.items():
                try:
                    states[index] = future.result()
                except BrokenExecutor:
                    lost.append(index)
    except (BrokenExecutor, OSError):
        lost = [index for index in range(len(ranges))
                if index not in states]
    for index in sorted(lost):
        low, high = ranges[index]
        states[index] = fold_file_shards(
            model, path, fmt, decoder, clock,
            range(low, high)).export_state()
    merged = TraceAccumulator(model, strict=False)
    for index in range(len(ranges)):
        merged.merge_state(states[index])
    return merged


def replay_records_sharded(model: DramPowerModel,
                           records: Sequence,
                           decoder: AddressDecoder, clock: float,
                           jobs: Optional[int] = None
                           ) -> TraceAccumulator:
    """Shard-parallel replay of an in-memory record sequence.

    Materializes and buckets the records by shard in the parent (a
    record stream cannot be re-read by workers the way a file can),
    ships each worker the per-shard buckets of its range in original
    order, and merges exactly like :func:`evaluate_file_sharded`.
    """
    records = list(records)
    shards = decoder.num_shards
    buckets: Dict[int, List] = {index: [] for index in range(shards)}
    for record in records:
        buckets[decoder.shard_of(record.address)].append(record)
    workers = jobs if jobs is not None else default_jobs()
    workers = max(1, min(workers, shards))
    ranges = shard_assignments(shards, workers)
    merged = TraceAccumulator(model, strict=False)
    if len(ranges) <= 1:
        from .ingest import accumulate_records
        return accumulate_records(model, iter(records),
                                  decoder=decoder, clock=clock,
                                  strict=False, backend="serial")
    states: Dict[int, Dict] = {}
    lost: List[int] = []
    payloads = []
    for low, high in ranges:
        chunk: List = []
        for shard_id in range(low, high):
            chunk.extend(buckets[shard_id])
        payloads.append(chunk)
    try:
        with ProcessPoolExecutor(max_workers=len(ranges)) as pool:
            futures = {}
            for index, chunk in enumerate(payloads):
                futures[index] = pool.submit(
                    _replay_record_shard, model.device, chunk,
                    decoder, clock)
            for index, future in futures.items():
                try:
                    states[index] = future.result()
                except BrokenExecutor:
                    lost.append(index)
    except (BrokenExecutor, OSError):
        lost = [index for index in range(len(ranges))
                if index not in states]
    for index in sorted(lost):
        states[index] = _replay_record_shard(
            model.device, payloads[index], decoder, clock)
    for index in range(len(ranges)):
        merged.merge_state(states[index])
    return merged


def _replay_record_shard(device: DramDescription, records: List,
                         decoder: AddressDecoder,
                         clock: float) -> Dict:
    """Worker entry point for in-memory record shards."""
    model = DramPowerModel(device)
    accumulator = TraceAccumulator(model, strict=False)
    if columnar_available():
        replay_records_columnar(accumulator, iter(records), decoder,
                                clock)
    else:
        accumulator.feed(commands_from_records(iter(records), decoder,
                                               clock))
    return accumulator.export_state()
