"""Process-technology options (paper §VI, the forward-looking trade).

"Power reduction techniques used in logic devices therefore become more
important for DRAMs in the future.  This could for example mean the use
of low-k dielectrics and an accelerated push for transistor improvements
to operate at lower voltages depending on the willingness to trade
reduced power consumption with increased process cost."

Each option is a :class:`~repro.schemes.base.Scheme` whose cost shows up
as a process-cost note rather than die area.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from ..errors import SchemeError
from .base import Scheme


class LowKDielectric(Scheme):
    """Low-k inter-metal dielectrics: all wire capacitances drop."""

    name = "low-k-dielectric"
    reference = "Vogelsang, MICRO 2010, Section VI"

    def __init__(self, capacitance_factor: float = 0.75):
        if not 0.0 < capacitance_factor <= 1.0:
            raise SchemeError("capacitance_factor must be in (0, 1]")
        self.capacitance_factor = capacitance_factor
        self.description = (
            f"Low-k dielectrics cut every specific wire capacitance to "
            f"{capacitance_factor:.0%}; costs extra process steps, not "
            "die area."
        )

    def transform_device(self, device: DramDescription) -> DramDescription:
        for path in ("technology.c_wire_signal", "technology.c_wire_mwl",
                     "technology.c_wire_swl"):
            device = device.scale_path(path, self.capacitance_factor)
        return device


class LowVoltageTransistors(Scheme):
    """Faster (logic-style) transistors allow a lower internal voltage.

    The paper: DRAM processes use "relatively high threshold voltage ...
    much less expensive than a logic process but also much lower
    performance.  It requires higher operating voltages."  Buying logic-
    grade devices buys voltage headroom — at process cost.
    """

    name = "low-voltage-transistors"
    reference = "Vogelsang, MICRO 2010, Sections II and VI"

    def __init__(self, vint_factor: float = 0.85):
        if not 0.5 <= vint_factor < 1.0:
            raise SchemeError("vint_factor must be in [0.5, 1)")
        self.vint_factor = vint_factor
        self.description = (
            f"Logic-grade peripheral transistors run Vint at "
            f"{vint_factor:.0%} of nominal; trades process cost for "
            "power."
        )

    def transform_device(self, device: DramDescription) -> DramDescription:
        volts = device.voltages
        vint = max(volts.vbl, volts.vint * self.vint_factor)
        ratio = vint / volts.vdd
        return device.evolve(voltages=volts.with_levels(
            vint=vint,
            eff_vint=1.0 if ratio > 0.97 else ratio,
        ))


class FourthMetalLayer(Scheme):
    """A fourth metal level for power/route relief (paper §II).

    High-performance DRAMs spend an extra metal level when that is
    cheaper than the area the dense lower levels would cost; wiring runs
    relax and the general signal capacitance falls moderately.
    """

    name = "fourth-metal-layer"
    reference = "Vogelsang, MICRO 2010, Section II"
    description = ("A fourth metal level relaxes signal routing "
                   "(c_wire_signal −10 %); pays one more mask/process "
                   "step.")

    def transform_device(self, device: DramDescription) -> DramDescription:
        return device.scale_path("technology.c_wire_signal", 0.9)


#: The §VI process-option set (evaluated like architecture schemes but
#: costed in process complexity, not area).
PROCESS_OPTIONS: Tuple[Scheme, ...] = (
    LowKDielectric(),
    LowVoltageTransistors(),
    FourthMetalLayer(),
)


def process_option_savings(device: DramDescription,
                           session: Optional[EvaluationSession] = None
                           ) -> dict:
    """Power saving of each §VI process option on a device."""
    session = ensure_session(session)
    savings = {}
    for option in PROCESS_OPTIONS:
        result = option.evaluate(device, session=session)
        savings[option.name] = result.power_saving
    return savings


def combined_process_stack(device: DramDescription,
                           session: Optional[EvaluationSession] = None
                           ) -> float:
    """Fractional saving of applying all §VI options together."""
    from ..core.idd import idd7_mixed

    session = ensure_session(session)
    base = idd7_mixed(session.model(device)).power
    stacked_device = device
    for option in PROCESS_OPTIONS:
        stacked_device = option.transform_device(stacked_device)
    stacked = idd7_mixed(session.model(stacked_device)).power
    return 1.0 - stacked / base
