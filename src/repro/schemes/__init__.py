"""Power-reduction scheme evaluation (paper Section V).

Each scheme is a transformation of the device description, of its charge
events, or of the command pattern — mirroring how the paper uses the model
to "evaluate proposals quickly to understand their power benefit" and to
quantify the die-size impact.

Schemes implemented:

* :class:`SelectiveBitlineActivation` — Udipi et al., SBA;
* :class:`SingleSubarrayAccess`       — Udipi et al., SSA;
* :class:`SegmentedDataLines`         — Jeong et al. (LPDDR2 cut-offs);
* :class:`LowVoltageOperation`        — Moon et al. (1.2 V DDR3);
* :class:`TsvStacking`                — Kang et al. (3-D with TSV);
* :class:`ThreadedModule`             — Ware & Hampel;
* :class:`MiniRank`                   — Zheng et al.;
* :class:`CslRatioReduction`          — the paper's own 8:1 CSL proposal.
"""

from .base import CompositeScheme, Scheme, SchemeResult
from .library import (
    ALL_SCHEMES,
    CslRatioReduction,
    LowVoltageOperation,
    MiniRank,
    SegmentedDataLines,
    SelectiveBitlineActivation,
    SingleSubarrayAccess,
    ThreadedModule,
    TsvStacking,
)
from .evaluator import compare_schemes, pareto_frontier, scheme_report
from .process_options import (
    FourthMetalLayer,
    LowKDielectric,
    LowVoltageTransistors,
    PROCESS_OPTIONS,
    combined_process_stack,
    process_option_savings,
)
from .power_management import (
    DutyCyclePower,
    RefreshPolicy,
    adaptive_refresh_savings,
    power_down_savings,
    power_down_scheduling,
    power_state_table,
    refresh_power,
    refresh_rate_for_temperature,
    temperature_refresh_power,
)

__all__ = [
    "CompositeScheme",
    "FourthMetalLayer",
    "LowKDielectric",
    "LowVoltageTransistors",
    "PROCESS_OPTIONS",
    "combined_process_stack",
    "process_option_savings",
    "DutyCyclePower",
    "RefreshPolicy",
    "adaptive_refresh_savings",
    "power_down_savings",
    "power_down_scheduling",
    "power_state_table",
    "refresh_power",
    "refresh_rate_for_temperature",
    "temperature_refresh_power",
    "Scheme",
    "SchemeResult",
    "ALL_SCHEMES",
    "CslRatioReduction",
    "LowVoltageOperation",
    "MiniRank",
    "SegmentedDataLines",
    "SelectiveBitlineActivation",
    "SingleSubarrayAccess",
    "ThreadedModule",
    "TsvStacking",
    "compare_schemes",
    "pareto_frontier",
    "scheme_report",
]
