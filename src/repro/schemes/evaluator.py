"""Scheme comparison harness (the quantitative side of Section V)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Iterable, List, Optional, Sequence

from ..description import DramDescription
from ..engine import EvaluationSession, ensure_session
from ..engine.executor import (AUTO, choose_backend, default_jobs,
                               estimate_build_seconds,
                               process_map_items, resolve_backend)
from .base import Scheme, SchemeResult
from .library import ALL_SCHEMES
from ..analysis.reporting import format_table


def _evaluate_scheme(session: EvaluationSession, scheme: Scheme,
                     device: DramDescription) -> SchemeResult:
    """Worker callable: one scheme on one device via one session.

    Module-level (pickled via :func:`functools.partial`) so the
    process backend can ship it to per-worker sessions; schemes and
    descriptions are plain picklable objects.
    """
    return scheme.evaluate(device, session=session)


def compare_schemes(device: DramDescription,
                    schemes: Sequence[Scheme] = ALL_SCHEMES,
                    session: Optional[EvaluationSession] = None,
                    jobs: Optional[int] = None,
                    backend: Optional[str] = None
                    ) -> List[SchemeResult]:
    """Evaluate every scheme on one device, sorted by power saving.

    One shared ``session`` means the unmodified baseline model is
    built once for the whole comparison instead of once per scheme.
    ``jobs``/``backend`` spread the schemes over a thread or process
    pool; the sorted result equals the serial run bit-for-bit.
    """
    session = ensure_session(session)
    schemes = list(schemes)
    backend = resolve_backend(backend, jobs)
    workers = jobs if jobs is not None else default_jobs()
    if backend == AUTO:
        # Every scheme builds at least a baseline and a modified
        # model, so the effective sweep width is twice the scheme
        # count for the serial-vs-process projection.
        backend = choose_backend(
            2 * len(schemes), jobs,
            estimate_build_seconds(session.stats))
    if backend == "process" and len(schemes) > 1 and workers > 1:
        results, worker_stats = process_map_items(
            schemes, partial(_evaluate_scheme, device=device),
            jobs=workers, capacity=session.cache.capacity,
            cache_dir=session.cache_dir)
        session.cache.absorb(worker_stats)
    elif (backend != "serial" and workers > 1
            and len(schemes) > 1):
        pool_size = min(workers, len(schemes))
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            results = list(pool.map(
                lambda scheme: _evaluate_scheme(session, scheme,
                                                device),
                schemes))
    else:
        results = [_evaluate_scheme(session, scheme, device)
                   for scheme in schemes]
    results.sort(key=lambda result: -result.power_saving)
    return results


def pareto_frontier(results: Iterable[SchemeResult]
                    ) -> List[SchemeResult]:
    """Non-dominated schemes in (power saving, area overhead) space.

    A scheme is dominated when another saves at least as much power at
    no more area cost (with at least one strict inequality).  The paper's
    §V argument is exactly this frontier: SSA is dominated by SBA, the
    CSL-ratio architecture anchors the zero-area end.
    """
    candidates = list(results)
    frontier = []
    for result in candidates:
        dominated = False
        for other in candidates:
            if other is result:
                continue
            at_least_as_good = (other.power_saving >= result.power_saving
                                and other.area_overhead
                                <= result.area_overhead)
            strictly_better = (other.power_saving > result.power_saving
                               or other.area_overhead
                               < result.area_overhead)
            if at_least_as_good and strictly_better:
                dominated = True
                break
        if not dominated:
            frontier.append(result)
    frontier.sort(key=lambda result: result.area_overhead)
    return frontier


def scheme_report(results: Iterable[SchemeResult], title: str = "") -> str:
    """Render a scheme comparison as a plain-text table."""
    rows = []
    for result in results:
        rows.append([
            result.scheme,
            round(result.baseline.energy_per_bit_pj, 1),
            round(result.modified.energy_per_bit_pj, 1),
            f"{result.power_saving:+.1%}",
            f"{result.act_energy_saving:+.1%}",
            f"{result.area_overhead:+.1%}",
        ])
    headers = ["scheme", "base pJ/bit", "new pJ/bit", "power saving",
               "act-energy saving", "area overhead"]
    return format_table(headers, rows, title=title)
