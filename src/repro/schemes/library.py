"""The Section V scheme library.

The activation-narrowing schemes (SBA, SSA, threaded modules, the paper's
CSL-ratio proposal) scale the activate-gated array events: fewer local
wordlines rise, fewer bitline pairs split, fewer sense amplifiers fire.
The wiring schemes rescale data-path capacitances.  The voltage scheme
replaces the voltage set.  The system-level schemes change the workload.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from ..description import Command, DramDescription
from ..core import Component, DramPowerModel
from ..core.events import ChargeEvent
from ..core.idd import idd7_counts
from ..errors import SchemeError
from .base import Scheme

#: Activate-gated event names that shrink when the activation narrows.
_ACTIVATION_EVENTS = frozenset({
    "bitline swing",
    "cell restore",
    "sense-amp set lines",
    "sense-amp source node",
    "equalize control lines",
    "bitline mux control lines",
    "local wordlines",
})


def _scale_activation(events: Tuple[ChargeEvent, ...],
                      fraction: float) -> Tuple[ChargeEvent, ...]:
    """Scale the counts of the activation-width-proportional events."""
    if not 0.0 < fraction <= 1.0:
        raise SchemeError(
            f"activation fraction must be in (0, 1], got {fraction}"
        )
    scaled = []
    for event in events:
        if event.name in _ACTIVATION_EVENTS:
            scaled.append(event.scaled(count=event.count * fraction))
        else:
            scaled.append(event)
    return tuple(scaled)


class SelectiveBitlineActivation(Scheme):
    """Udipi et al. [15]: store the activate until the column command is
    known, then raise only the sub-wordlines holding the accessed bits."""

    name = "selective-bitline-activation"
    reference = "Udipi et al., ISCA 2010 (SBA)"
    description = ("Posted activate raises only the sub-wordlines covering "
                   "the accessed cache line; costs row-address latches and "
                   "a posted-RAS delay.")

    def activation_fraction(self, model: DramPowerModel) -> float:
        """Fraction of the page that still gets activated."""
        device = model.device
        needed_swls = math.ceil(device.spec.bits_per_access
                                / device.floorplan.array.bits_per_swl)
        return needed_swls / device.swls_per_activate

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        return _scale_activation(model.events,
                                 self.activation_fraction(model))

    def area_overhead(self, model: DramPowerModel) -> float:
        # Row-address latches and per-stripe gating in the row logic.
        return 0.02


class SingleSubarrayAccess(SelectiveBitlineActivation):
    """Udipi et al. [15]: fetch the whole cache line from one sub-array.

    Energy behaves like SBA with a single sub-array activated; the area
    cost is far larger because every sense-amplifier stripe needs many
    more local-to-master data connections (the paper argues this breaks
    today's 64:1 / 128:1 CSL-to-master-data-line ratio).
    """

    name = "single-subarray-access"
    reference = "Udipi et al., ISCA 2010 (SSA)"
    description = ("One sub-array supplies the full cache line; requires "
                   "re-architecting the array block data path (bitline "
                   "sense-amplifier stripe area grows).")

    def activation_fraction(self, model: DramPowerModel) -> float:
        return 1.0 / model.device.swls_per_activate

    def area_overhead(self, model: DramPowerModel) -> float:
        # The on-pitch stripes grow to host the widened data path: the
        # paper's §II warns changes here have the largest area impact.
        return 0.30 * model.geometry.sa_stripe_share


class SegmentedDataLines(Scheme):
    """Jeong et al. [8]: cut-off switches segment the main data lines so
    only the section towards the active bank toggles."""

    name = "segmented-data-lines"
    reference = "Jeong et al., ISSCC 2009 (LPDDR2)"

    def __init__(self, remaining_fraction: float = 0.6):
        if not 0.0 < remaining_fraction <= 1.0:
            raise SchemeError("remaining_fraction must be in (0, 1]")
        self.remaining_fraction = remaining_fraction
        self.description = (
            "Controllable repeaters cut the central data buses; on average "
            f"{remaining_fraction:.0%} of the bus capacitance still "
            "toggles."
        )

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        scaled = []
        for event in model.events:
            if (event.component is Component.DATAPATH
                    and event.name.startswith("net ")):
                scaled.append(event.scaled(
                    capacitance=event.capacitance * self.remaining_fraction
                ))
            else:
                scaled.append(event)
        return tuple(scaled)

    def area_overhead(self, model: DramPowerModel) -> float:
        return 0.01


class LowVoltageOperation(Scheme):
    """Moon et al. [10]: a more advanced process runs the DRAM at 1.2 V."""

    name = "low-voltage-operation"
    reference = "Moon et al., ISSCC 2009 (1.2 V DDR3)"

    def __init__(self, vdd: float = 1.2):
        self.vdd = vdd
        self.description = (
            f"Run the device at Vdd = {vdd:g} V with internal rails scaled "
            "along; requires a more advanced (more expensive) process."
        )

    def transform_device(self, device: DramDescription) -> DramDescription:
        volts = device.voltages
        if self.vdd >= volts.vdd:
            raise SchemeError(
                f"low-voltage scheme needs a target below Vdd="
                f"{volts.vdd:g} V"
            )
        factor = self.vdd / volts.vdd
        return device.evolve(voltages=volts.with_levels(
            vdd=self.vdd,
            vint=volts.vint * factor,
            vbl=volts.vbl * factor,
            # The wordline boost shrinks less: the cell still needs full
            # write-back over the access-transistor threshold.
            vpp=volts.vpp * factor ** 0.5,
        ))


class TsvStacking(Scheme):
    """Kang et al. [9]: 3-D stacking with through-silicon vias shortens
    wires and buffers the I/O load."""

    name = "tsv-stacking"
    reference = "Kang et al., JSSC 2010 (8 Gb 3-D DDR3)"
    description = ("A master die buffers the interface; slave dies see "
                   "short TSVs instead of long on-die buses and heavy "
                   "external loads.")

    def __init__(self, wire_fraction: float = 0.6,
                 io_fraction: float = 0.5):
        self.wire_fraction = wire_fraction
        self.io_fraction = io_fraction

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        scaled = []
        for event in model.events:
            if event.component is Component.IO:
                scaled.append(event.scaled(
                    capacitance=event.capacitance * self.io_fraction
                ))
            elif (event.component is Component.DATAPATH
                    and event.name.startswith("net ")):
                scaled.append(event.scaled(
                    capacitance=event.capacitance * self.wire_fraction
                ))
            else:
                scaled.append(event)
        return tuple(scaled)

    def area_overhead(self, model: DramPowerModel) -> float:
        # TSV keep-out area on every die.
        return 0.03


class ThreadedModule(Scheme):
    """Ware & Hampel [13]: threaded modules increase addressing
    flexibility so each access activates a smaller page slice."""

    name = "threaded-module"
    reference = "Ware & Hampel, ICCD 2006"

    def __init__(self, threads: int = 2):
        if threads < 1:
            raise SchemeError("threads must be >= 1")
        self.threads = threads
        self.description = (
            f"{threads}-way threading localises accesses; page activation "
            "size shrinks accordingly at a given data rate."
        )

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        return _scale_activation(model.events, 1.0 / self.threads)


class MiniRank(Scheme):
    """Zheng et al. [14]: narrower rank portions let fewer devices
    activate for a given access stream (modelled as a reduced activate
    rate per device)."""

    name = "mini-rank"
    reference = "Zheng et al., MICRO 2008"

    def __init__(self, rank_divisor: int = 2):
        if rank_divisor < 1:
            raise SchemeError("rank_divisor must be >= 1")
        self.rank_divisor = rank_divisor
        self.description = (
            f"Rank split {rank_divisor}-ways: each device sees 1/"
            f"{rank_divisor} of the row activations of the access stream."
        )

    def pattern_counts(self, model: DramPowerModel
                       ) -> Tuple[Dict[Command, float], float]:
        counts, window = idd7_counts(model, write_fraction=0.5)
        counts[Command.ACT] /= self.rank_divisor
        counts[Command.PRE] /= self.rank_divisor
        return counts, window


class CslRatioReduction(Scheme):
    """The paper's own §V proposal: an architecture with an 8:1 ratio of
    page size to simultaneously accessible data, using the dense metal-3
    tracks as master array data lines, so a 64 B cache line needs a 512 B
    page instead of 4-8 kB."""

    name = "csl-ratio-reduction"
    reference = "Vogelsang, MICRO 2010, Section V"
    description = ("8:1 page-to-access ratio: a 64 B line needs a 512 B "
                   "page; master data lines reuse column-select metal "
                   "tracks, keeping the sense-amplifier stripe unchanged.")

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        device = model.device
        target_page_bits = 8 * device.spec.bits_per_access
        fraction = min(1.0, target_page_bits / device.spec.page_bits)
        return _scale_activation(model.events, fraction)


#: One instance of every scheme, for sweep-style comparisons.
ALL_SCHEMES: Tuple[Scheme, ...] = (
    SelectiveBitlineActivation(),
    SingleSubarrayAccess(),
    SegmentedDataLines(),
    LowVoltageOperation(),
    TsvStacking(),
    ThreadedModule(),
    MiniRank(),
    CslRatioReduction(),
)
