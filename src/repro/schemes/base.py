"""Scheme abstraction: a proposal = transformations + area impact."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..description import Command, DramDescription
from ..core import DramPowerModel, PatternPower
from ..core.events import ChargeEvent
from ..core.idd import idd7_counts
from ..engine import EvaluationSession, ensure_session


@dataclass(frozen=True)
class SchemeResult:
    """Evaluation of one scheme on one device."""

    scheme: str
    device: str
    baseline: PatternPower
    """The reference Idd7-style mixed pattern on the unmodified device."""
    modified: PatternPower
    """The same workload on the modified device."""
    baseline_act_energy: float
    """Activate energy per operation before (J)."""
    modified_act_energy: float
    """Activate energy per operation after (J)."""
    area_overhead: float
    """Estimated die-area overhead as a fraction of the original die."""
    notes: str = ""

    @property
    def power_saving(self) -> float:
        """Fractional pattern-power saving (positive = saves power)."""
        return 1.0 - self.modified.power / self.baseline.power

    @property
    def energy_per_bit_saving(self) -> float:
        """Fractional energy-per-bit saving."""
        base = self.baseline.energy_per_bit
        new = self.modified.energy_per_bit
        return 1.0 - new / base

    @property
    def act_energy_saving(self) -> float:
        """Fractional activate-energy saving."""
        if self.baseline_act_energy == 0:
            return 0.0
        return 1.0 - self.modified_act_energy / self.baseline_act_energy


class Scheme:
    """Base class: identity transformation, zero area cost.

    Subclasses override any of the three hooks:

    * :meth:`transform_device` — change the description (voltages, page
      organisation…);
    * :meth:`transform_events` — rescale charge events (activation
      narrowing, wire segmentation…);
    * :meth:`pattern_counts`   — change the workload itself (system-level
      schemes that avoid activates).
    """

    name = "identity"
    reference = ""
    description = ""

    def transform_device(self, device: DramDescription) -> DramDescription:
        """Return the modified device description."""
        return device

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        """Return the modified charge-event list of the transformed model."""
        return model.events

    def pattern_counts(self, model: DramPowerModel
                       ) -> Tuple[Dict[Command, float], float]:
        """Return (command counts, window) of the evaluation workload."""
        return idd7_counts(model, write_fraction=0.5)

    def area_overhead(self, model: DramPowerModel) -> float:
        """Estimated die-area overhead (fraction of the original die)."""
        return 0.0

    # ------------------------------------------------------------------
    def evaluate(self, device: DramDescription,
                 session: Optional[EvaluationSession] = None
                 ) -> SchemeResult:
        """Evaluate the scheme against the unmodified device.

        All models route through ``session`` — sharing one session
        across several scheme evaluations builds the unmodified
        baseline exactly once.
        """
        session = ensure_session(session)
        base_model = session.model(device)
        base_counts, base_window = idd7_counts(base_model,
                                               write_fraction=0.5)
        baseline = base_model.counts_power(base_counts, base_window,
                                           label="IDD7-mixed")
        new_device = self.transform_device(device)
        new_model = session.model(new_device)
        new_events = self.transform_events(new_model)
        if new_events is not new_model.events:
            new_model = session.with_events(new_model, new_events)
        counts, window = self.pattern_counts(new_model)
        modified = new_model.counts_power(counts, window,
                                          label=f"IDD7-mixed+{self.name}")
        return SchemeResult(
            scheme=self.name,
            device=device.name,
            baseline=baseline,
            modified=modified,
            baseline_act_energy=base_model.operation_energy(Command.ACT),
            modified_act_energy=new_model.operation_energy(Command.ACT),
            area_overhead=self.area_overhead(new_model),
            notes=self.description,
        )


class CompositeScheme(Scheme):
    """Several schemes applied together (§V proposals stack).

    Device transformations compose in order; event transformations chain;
    the workload counts come from the *last* scheme that overrides them;
    area overheads add.
    """

    def __init__(self, schemes, name: str = ""):
        self.schemes = tuple(schemes)
        if not self.schemes:
            raise ValueError("composite needs at least one scheme")
        self.name = name or "+".join(scheme.name
                                     for scheme in self.schemes)
        self.reference = "; ".join(scheme.reference
                                   for scheme in self.schemes
                                   if scheme.reference)
        self.description = " / ".join(scheme.description
                                      for scheme in self.schemes
                                      if scheme.description)

    def transform_device(self, device: DramDescription) -> DramDescription:
        for scheme in self.schemes:
            device = scheme.transform_device(device)
        return device

    def transform_events(self, model: DramPowerModel
                         ) -> Tuple[ChargeEvent, ...]:
        session = ensure_session(None)
        events = model.events
        for scheme in self.schemes:
            if events is not model.events:
                model = session.with_events(model, events)
            events = scheme.transform_events(model)
        return events

    def pattern_counts(self, model: DramPowerModel
                       ) -> Tuple[Dict[Command, float], float]:
        counts, window = super().pattern_counts(model)
        for scheme in self.schemes:
            if type(scheme).pattern_counts is not Scheme.pattern_counts:
                counts, window = scheme.pattern_counts(model)
        return counts, window

    def area_overhead(self, model: DramPowerModel) -> float:
        return sum(scheme.area_overhead(model)
                   for scheme in self.schemes)
