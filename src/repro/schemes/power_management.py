"""System-side power management (paper §V references [11] and [12]).

Hur & Lin [11] schedule the DRAM power-down modes from the memory
controller; Emma et al. [12] adaptively reduce refresh rates for DRAM
caches.  Both act on the *duty cycle* of the device rather than its
circuits, so they are modeled as occupancy mixes over the pattern and
power-state results rather than description transformations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core import DramPowerModel
from ..core.idd import idd2n, idd2p, idd5b, idd6, idd7_mixed
from ..errors import SchemeError


@dataclass(frozen=True)
class DutyCyclePower:
    """Average power of a utilization/power-mode mix."""

    device_name: str
    utilization: float
    """Fraction of time spent actively transferring data."""
    idle_in_power_down: float
    """Fraction of the *idle* time spent in power-down."""
    active_power: float
    """Power while active (W)."""
    standby_power: float
    """Power while idle but not powered down (W)."""
    power_down_power: float
    """Power while in power-down (W)."""
    entry_exit_overhead: float
    """Extra energy per second for mode transitions (W)."""

    @property
    def average_power(self) -> float:
        """Duty-cycle-weighted average power (W)."""
        idle = 1.0 - self.utilization
        in_pd = idle * self.idle_in_power_down
        in_standby = idle - in_pd
        return (self.utilization * self.active_power
                + in_standby * self.standby_power
                + in_pd * self.power_down_power
                + self.entry_exit_overhead)


def power_down_scheduling(model: DramPowerModel,
                          utilization: float,
                          idle_in_power_down: float = 0.0,
                          transitions_per_second: float = 0.0
                          ) -> DutyCyclePower:
    """Average power under Hur & Lin-style power-down scheduling.

    The active phase runs the Idd7-style mixed pattern; idle time splits
    between normal standby and precharge power-down.  Each power-down
    entry/exit costs roughly one standby clock period of extra energy —
    the throttling-delay trade-off the paper's reference studies.
    """
    if not 0.0 <= utilization <= 1.0:
        raise SchemeError("utilization must be a fraction")
    if not 0.0 <= idle_in_power_down <= 1.0:
        raise SchemeError("idle_in_power_down must be a fraction")
    if transitions_per_second < 0:
        raise SchemeError("transitions_per_second must not be negative")
    active = idd7_mixed(model).power
    standby = idd2n(model).power.power
    powered_down = idd2p(model).power.power
    transition_energy = standby / model.device.spec.f_ctrlclock
    return DutyCyclePower(
        device_name=model.device.name,
        utilization=utilization,
        idle_in_power_down=idle_in_power_down,
        active_power=active,
        standby_power=standby,
        power_down_power=powered_down,
        entry_exit_overhead=transitions_per_second * transition_energy,
    )


def power_down_savings(model: DramPowerModel, utilization: float,
                       idle_in_power_down: float = 0.9,
                       transitions_per_second: float = 1e5) -> float:
    """Fractional power saving of aggressive power-down scheduling."""
    base = power_down_scheduling(model, utilization, 0.0, 0.0)
    managed = power_down_scheduling(model, utilization,
                                    idle_in_power_down,
                                    transitions_per_second)
    return 1.0 - managed.average_power / base.average_power


@dataclass(frozen=True)
class RefreshPolicy:
    """An adaptive-refresh operating point (Emma et al. [12])."""

    name: str
    rate_factor: float
    """Refresh rate relative to the nominal tREFI (1.0 = nominal)."""

    def __post_init__(self) -> None:
        if self.rate_factor < 0:
            raise SchemeError("rate_factor must not be negative")


def refresh_power(model: DramPowerModel,
                  policy: RefreshPolicy = RefreshPolicy("nominal", 1.0),
                  self_refresh: bool = False) -> float:
    """Standby-plus-refresh power under a refresh policy (W).

    With ``self_refresh`` the device refreshes itself in the gated
    low-power state; otherwise the controller issues distributed
    auto-refresh on top of normal standby.
    """
    if self_refresh:
        base = idd6(model).power
        refresh_part = base.operation_power["refresh"]
        background = base.operation_power["background"]
        return background + refresh_part * policy.rate_factor
    standby = idd2n(model).power.power
    refresh_part = idd5b(model).power.power - standby
    return standby + refresh_part * policy.rate_factor


def adaptive_refresh_savings(model: DramPowerModel,
                             rate_factor: float,
                             self_refresh: bool = True) -> float:
    """Fractional standby-power saving of a reduced refresh rate.

    Emma et al. reduce refresh by exploiting retention-time slack and
    cache semantics; ``rate_factor`` = 0.25 means refreshing four times
    less often.
    """
    nominal = refresh_power(model, RefreshPolicy("nominal", 1.0),
                            self_refresh)
    reduced = refresh_power(model,
                            RefreshPolicy("reduced", rate_factor),
                            self_refresh)
    return 1.0 - reduced / nominal


#: Retention time roughly halves per this many kelvin of temperature
#: increase — the standard DRAM retention/temperature rule of thumb that
#: makes refresh rate a function of operating temperature.
RETENTION_HALVING_KELVIN = 10.0

#: Temperature at which the nominal tREFI is specified (°C).
NOMINAL_REFRESH_TEMPERATURE = 85.0


def refresh_rate_for_temperature(t_celsius: float) -> float:
    """Refresh-rate factor relative to the nominal 85 °C rate.

    Cooler devices retain longer and may refresh slower (factor < 1);
    hotter devices need faster refresh.  Clamped below at 1/8 — vendors
    do not specify slower than 8× tREFI.
    """
    factor = 2.0 ** ((t_celsius - NOMINAL_REFRESH_TEMPERATURE)
                     / RETENTION_HALVING_KELVIN)
    return max(0.125, factor)


def temperature_refresh_power(model: DramPowerModel, t_celsius: float,
                              self_refresh: bool = True) -> float:
    """Standby-plus-refresh power at an operating temperature (W)."""
    factor = refresh_rate_for_temperature(t_celsius)
    return refresh_power(model, RefreshPolicy(f"{t_celsius:g}C", factor),
                         self_refresh=self_refresh)


def power_state_table(model: DramPowerModel) -> Dict[str, float]:
    """All standby/low-power state powers (W) — for reports."""
    return {
        "standby (IDD2N)": idd2n(model).power.power,
        "power-down (IDD2P)": idd2p(model).power.power,
        "self-refresh (IDD6)": idd6(model).power.power,
        "auto-refresh standby (IDD5B)": idd5b(model).power.power,
    }
