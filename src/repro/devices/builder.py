"""Construct calibrated DRAM descriptions for any generation.

:func:`build_device` assembles a complete :class:`DramDescription` from a
technology node, interface family, density and I/O width, pulling

* the 39 technology parameters from the scaling engine,
* cell architecture and cells-per-line from the Table II staircase,
* voltages and timings from the roadmap (adjusted when the interface is
  not the node's mainstream pairing, e.g. a DDR2 built at 65 nm),
* a standard eight-block commodity floorplan (Figure 1),
* the standard signal nets (clock, command/address, row/column fan-out,
  core data buses, interface wiring),
* peripheral logic blocks whose gate counts are the model's datasheet fit
  parameters, scaled with the interface complexity factor.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..description import (
    DramDescription,
    LogicBlock,
    Command,
    PhysicalFloorplan,
    Rail,
    SignalingFloorplan,
    Specification,
    TimingParameters,
    VoltageSet,
)
from ..description.floorplan import ArrayArchitecture, BitlineArchitecture
from ..description.signaling import (
    SegmentKind,
    SignalNet,
    SignalSegment,
    Trigger,
)
from ..errors import DescriptionError
from ..technology.disruptions import (
    cell_architecture_for_node,
    cells_per_line_for_node,
)
from ..technology.roadmap import COMPLEXITY, PREFETCH, roadmap_entry
from ..technology.scaling import auxiliary_for_node, technology_for_node

#: Standard supply voltage of each interface family (V).
INTERFACE_VDD: Dict[str, float] = {
    "SDR": 3.3,
    "DDR": 2.5,
    "DDR2": 1.8,
    "DDR3": 1.5,
    "DDR4": 1.2,
    "DDR5": 1.1,
}

#: Fitted gate-count bases of the peripheral logic blocks (at complexity
#: 1.0 = SDR); see the calibration notes in DESIGN.md.  These are the
#: paper's §III.B.5 datasheet fit parameters.
LOGIC_FIT = {
    "control_base": 8000,
    "rowlogic_base": 12000,
    "collogic_base": 7000,
    "datapath_per_bit": 280,
    "interface_per_pin": 400,
    "dll_base": 3000,
    "iodrv_per_pin": 45,
}

_ROW_OPS = frozenset({Command.ACT, Command.PRE})
_COL_OPS = frozenset({Command.RD, Command.WR})


def default_page_bits(interface: str, io_width: int) -> int:
    """Typical page size: 2 KB for wide modern parts, 1 KB otherwise."""
    if io_width >= 16 and PREFETCH[interface] >= 4:
        return 16384
    return 8192


def default_bank_count(interface: str, density_bits: int) -> int:
    """Typical bank count of an interface family."""
    if interface in ("SDR", "DDR"):
        return 4
    if interface == "DDR2":
        return 8 if density_bits >= (1 << 30) else 4
    if interface == "DDR3":
        return 8
    if interface == "DDR4":
        return 16
    if interface == "DDR5":
        return 32
    raise DescriptionError(f"unknown interface family {interface!r}")


def _log2_exact(value: int, what: str) -> int:
    bits = int(round(math.log2(value)))
    if (1 << bits) != value:
        raise DescriptionError(f"{what} ({value}) must be a power of two")
    return bits


def _voltages(node_nm: float, interface: str) -> VoltageSet:
    """Voltage set for an interface built at a given node.

    Vbl and Vpp are technology properties and come from the node's roadmap
    entry.  Vdd is fixed by the interface standard; when it differs from
    the node's mainstream pairing the internal logic voltage follows the
    supply part way (a 65 nm DDR2 runs its periphery higher than a 65 nm
    DDR3).
    """
    entry = roadmap_entry(node_nm)
    vdd = INTERFACE_VDD[interface]
    vint = entry.vint + 0.6 * (vdd - entry.vdd)
    vint = min(vint, vdd)
    vint = max(vint, entry.vbl)
    ratio = vint / vdd
    eff_vint = 1.0 if ratio > 0.97 else ratio
    return VoltageSet(
        vdd=vdd,
        vint=vint,
        vbl=entry.vbl,
        vpp=entry.vpp,
        eff_vint=eff_vint,
        eff_vbl=entry.vbl / vdd,
        eff_vpp=min(1.0, 0.8 * entry.vpp / (2.0 * vdd)),
    )


def _floorplan(node_nm: float, interface: str) -> PhysicalFloorplan:
    """The standard eight-block commodity floorplan of Figure 1."""
    arch, wl_f, bl_f = cell_architecture_for_node(node_nm)
    cells = cells_per_line_for_node(node_nm)
    aux = auxiliary_for_node(node_nm)
    feature = node_nm * 1e-9
    shrink = (node_nm / 55.0) ** 0.6
    complexity = COMPLEXITY[interface]
    array = ArrayArchitecture(
        bitline_direction="v",
        bits_per_bitline=cells,
        bits_per_swl=cells,
        bitline_arch=BitlineArchitecture(arch),
        blocks_per_csl=1,
        wl_pitch=wl_f * feature,
        bl_pitch=bl_f * feature,
        width_sa_stripe=aux["width_sa_stripe"],
        width_swd_stripe=aux["width_swd_stripe"],
    )
    row_stripe = 150e-6 * shrink
    column_stripe = 200e-6 * shrink
    center_stripe = 530e-6 * (node_nm / 55.0) ** 0.5 \
        * (complexity / COMPLEXITY["DDR3"]) ** 0.25
    return PhysicalFloorplan(
        array=array,
        horizontal=("A1", "R1", "A1", "R1", "A1", "R1", "A1"),
        vertical=("A1", "P1", "P2", "P1", "A1"),
        widths={"R1": row_stripe},
        heights={"P1": column_stripe, "P2": center_stripe},
        array_types=frozenset({"A1"}),
    )


def _specification(interface: str, density_bits: int, io_width: int,
                   datarate: float, page_bits: int,
                   banks: int) -> Specification:
    prefetch = PREFETCH[interface]
    bank_bits = _log2_exact(banks, "bank count")
    col_bits = _log2_exact(page_bits // io_width, "columns per page")
    rows_total = density_bits // (banks * page_bits)
    row_bits = _log2_exact(rows_total, "rows per bank")
    if interface == "SDR":
        f_clock = datarate
    else:
        f_clock = datarate / 2.0
    bank_groups = {"DDR4": 4, "DDR5": 8}.get(interface, 1)
    return Specification(
        io_width=io_width,
        datarate=datarate,
        n_clock_wires=4 if interface == "DDR5" else 2,
        f_dataclock=f_clock,
        f_ctrlclock=f_clock,
        bank_bits=bank_bits,
        row_bits=row_bits,
        col_bits=col_bits,
        n_misc_control=8,
        prefetch=prefetch,
        bank_groups=bank_groups,
    )


def _signal_nets(spec: Specification, interface: str) -> SignalingFloorplan:
    """The standard signal nets on the 7×5 block grid.

    Coordinates: array blocks at x ∈ {0, 2, 4, 6} and y ∈ {0, 4}; row
    logic stripes at odd x; column logic at y ∈ {1, 3}; the centre stripe
    (pads, control, serialisers) at y = 2 around x = 3.
    """
    is_ddr = interface != "SDR"
    bits = spec.bits_per_access
    half = max(1, bits // 2)
    addr_row = spec.row_bits + spec.bank_bits
    addr_col = spec.col_bits + spec.bank_bits
    cmd_wires = addr_row + spec.col_bits + spec.n_misc_control

    def span(start, end, wires, toggle, w_n=0.0, w_p=0.0, mux=1.0):
        return SignalSegment(
            kind=SegmentKind.SPAN, start=start, end=end, wires=wires,
            toggle=toggle, buffer_w_n=w_n, buffer_w_p=w_p, mux_ratio=mux,
        )

    def inside(at, fraction, wires, toggle, w_n=0.0, w_p=0.0, mux=1.0):
        return SignalSegment(
            kind=SegmentKind.INSIDE, start=at, fraction=fraction,
            direction="h", wires=wires, toggle=toggle, buffer_w_n=w_n,
            buffer_w_p=w_p, mux_ratio=mux,
        )

    nets: List[SignalNet] = [
        # Clock distribution along the centre stripe, re-driven mid-way.
        SignalNet(
            name="ClockTree",
            segments=(
                span((3, 2), (0, 2), spec.n_clock_wires, 1.0,
                     w_n=10e-6, w_p=20e-6),
                span((3, 2), (6, 2), spec.n_clock_wires, 1.0,
                     w_n=10e-6, w_p=20e-6),
            ),
            trigger=Trigger.PER_CTRL_CLOCK,
            operations=frozenset(),
            rail=Rail.VINT,
            component="clock",
        ),
        # Command/address bus from the centre pads to both die ends.
        SignalNet(
            name="CmdAddr",
            segments=(
                span((3, 2), (0, 2), cmd_wires, 0.1, w_n=2e-6, w_p=4e-6),
                span((3, 2), (6, 2), cmd_wires, 0.1, w_n=2e-6, w_p=4e-6),
            ),
            trigger=Trigger.PER_CTRL_CLOCK,
            operations=frozenset(),
            rail=Rail.VINT,
            component="control",
        ),
        # Row address fan-out to the row logic of the addressed bank.
        SignalNet(
            name="RowAddr",
            segments=(
                span((3, 2), (1, 0), max(1, addr_row // 2), 0.5),
                span((3, 2), (5, 4), max(1, addr_row // 2), 0.5),
            ),
            trigger=Trigger.PER_ROW_OP,
            operations=frozenset({Command.ACT}),
            rail=Rail.VINT,
            component="row_logic",
        ),
        # Column address fan-out to the column logic of the bank.
        SignalNet(
            name="ColAddr",
            segments=(
                span((3, 2), (1, 1), max(1, addr_col // 2), 0.5),
                span((3, 2), (5, 3), max(1, addr_col // 2), 0.5),
            ),
            trigger=Trigger.PER_ACCESS,
            operations=_COL_OPS,
            rail=Rail.VINT,
            component="column",
        ),
        # Core-speed read data: bank column logic to the centre stripe,
        # along it, and into the serialiser (the paper's DataW* example,
        # direction reversed).
        SignalNet(
            name="DataReadCore",
            segments=(
                span((0, 1), (3, 2), half, 0.5, w_n=3e-6, w_p=6e-6),
                span((2, 1), (3, 2), bits - half, 0.5, w_n=3e-6, w_p=6e-6),
                inside((3, 2), 0.15, bits, 0.5, w_n=2e-6, w_p=4e-6,
                       mux=float(spec.prefetch)),
            ),
            trigger=Trigger.PER_ACCESS,
            operations=frozenset({Command.RD}),
            rail=Rail.VINT,
            component="datapath",
        ),
        SignalNet(
            name="DataWriteCore",
            segments=(
                inside((3, 2), 0.15, bits, 0.5, w_n=2e-6, w_p=4e-6,
                       mux=float(spec.prefetch)),
                span((3, 2), (0, 1), half, 0.5, w_n=3e-6, w_p=6e-6),
                span((3, 2), (2, 1), bits - half, 0.5, w_n=3e-6, w_p=6e-6),
            ),
            trigger=Trigger.PER_ACCESS,
            operations=frozenset({Command.WR}),
            rail=Rail.VINT,
            component="datapath",
        ),
        # Interface-speed data wiring: serialiser to the output
        # pre-drivers (read) and receivers to the de-serialiser (write).
        # Two beats per data clock on a DDR interface.
        SignalNet(
            name="DataReadIO",
            segments=(
                inside((3, 2), 0.10, spec.io_width,
                       1.0 if is_ddr else 0.5, w_n=10e-6, w_p=20e-6),
            ),
            trigger=Trigger.PER_DATA_CLOCK,
            operations=frozenset({Command.RD}),
            rail=Rail.VDD,
            component="io",
        ),
        SignalNet(
            name="DataWriteIO",
            segments=(
                inside((3, 2), 0.10, spec.io_width,
                       1.0 if is_ddr else 0.5, w_n=4e-6, w_p=8e-6),
            ),
            trigger=Trigger.PER_DATA_CLOCK,
            operations=frozenset({Command.WR}),
            rail=Rail.VDD,
            component="io",
        ),
    ]
    return SignalingFloorplan(tuple(nets))


def _logic_blocks(spec: Specification, interface: str,
                  node_nm: float) -> List[LogicBlock]:
    """The peripheral logic blocks with complexity-scaled gate counts."""
    complexity = COMPLEXITY[interface]
    aux = auxiliary_for_node(node_nm)
    w_misc = aux["w_logic_misc"]
    w_n, w_p = w_misc, 2.0 * w_misc

    def block(name, gates, toggle, operations, trigger, component,
              width_factor=1.0):
        return LogicBlock(
            name=name,
            n_gates=max(1, int(gates)),
            w_n=w_n * width_factor,
            w_p=w_p * width_factor,
            transistors_per_gate=4.0,
            layout_density=0.25,
            wiring_density=0.5,
            operations=operations,
            toggle=toggle,
            trigger=trigger,
            rail=Rail.VINT,
            component=component,
        )

    # The gated (per-access / interface-speed) blocks are anchored at the
    # calibrated DDR3 values and scale superlinearly with interface
    # complexity: an SDR column path is a handful of gates, a DDR5 one a
    # deep pipeline.  This drives the §IV.B shift of power into logic.
    relative = complexity / COMPLEXITY["DDR3"]
    column_scale = relative ** 1.1
    blocks = [
        block("control", LOGIC_FIT["control_base"] * complexity, 0.10,
              frozenset(), Trigger.PER_CTRL_CLOCK, "control"),
        block("rowlogic", LOGIC_FIT["rowlogic_base"] * complexity ** 0.5,
              0.5, _ROW_OPS, Trigger.PER_ROW_OP, "row_logic"),
        block("collogic",
              LOGIC_FIT["collogic_base"] * 4.0 ** 0.7 * column_scale,
              0.5, _COL_OPS, Trigger.PER_ACCESS, "column"),
        block("datapath",
              LOGIC_FIT["datapath_per_bit"] * spec.bits_per_access
              * column_scale,
              0.5, _COL_OPS, Trigger.PER_ACCESS, "datapath"),
        block("interface",
              LOGIC_FIT["interface_per_pin"] * spec.io_width * 2.0
              * column_scale,
              0.4, _COL_OPS, Trigger.PER_DATA_CLOCK, "io"),
        block("iodrv",
              LOGIC_FIT["iodrv_per_pin"] * spec.io_width
              * relative ** 0.5,
              0.5, _COL_OPS, Trigger.PER_DATA_CLOCK, "io",
              width_factor=6.0),
    ]
    if interface != "SDR":
        blocks.append(
            block("dll", LOGIC_FIT["dll_base"] * complexity ** 0.6, 0.25,
                  frozenset(), Trigger.PER_DATA_CLOCK, "clock")
        )
    return blocks


def build_device(node_nm: float,
                 interface: Optional[str] = None,
                 density_bits: Optional[int] = None,
                 io_width: int = 16,
                 datarate: Optional[float] = None,
                 page_bits: Optional[int] = None,
                 banks: Optional[int] = None,
                 name: Optional[str] = None) -> DramDescription:
    """Build a calibrated DRAM description.

    Parameters default to the node's roadmap entry: ``build_device(55)``
    is the mainstream 2 Gb DDR3-1600 x16 of 2009.  Any combination can be
    overridden, e.g. the Figure 8 verification parts::

        build_device(75, interface="DDR2", density_bits=2**30,
                     io_width=8, datarate=800e6)
    """
    entry = roadmap_entry(node_nm)
    interface = interface or entry.interface
    if interface not in INTERFACE_VDD:
        raise DescriptionError(f"unknown interface family {interface!r}")
    density_bits = density_bits or entry.density_bits
    datarate = datarate or entry.datarate
    page_bits = page_bits or default_page_bits(interface, io_width)
    banks = banks or default_bank_count(interface, density_bits)

    tech = technology_for_node(node_nm)
    tech = tech.scaled(
        bits_per_csl=min(tech.bits_per_csl, io_width * PREFETCH[interface])
    )
    spec = _specification(interface, density_bits, io_width, datarate,
                          page_bits, banks)
    voltages = _voltages(node_nm, interface)
    floorplan = _floorplan(node_nm, interface)
    signaling = _signal_nets(spec, interface)
    logic_blocks = _logic_blocks(spec, interface, node_nm)
    timing = TimingParameters(
        trc=entry.trc,
        trrd=entry.trrd,
        tfaw=entry.tfaw,
        # Bank-grouped interfaces pay a longer same-group tRRD_L.
        trrd_l=(entry.trrd * 1.6
                if interface in ("DDR4", "DDR5") else 0.0),
    )
    if name is None:
        density_label = (f"{density_bits >> 30}G" if density_bits >= 1 << 30
                         else f"{density_bits >> 20}M")
        rate_label = f"{datarate / 1e6:.0f}"
        name = (f"{density_label}-{interface}-{rate_label}-x{io_width}-"
                f"{node_nm:g}nm")
    complexity = COMPLEXITY[interface]
    return DramDescription(
        name=name,
        interface=interface,
        node=node_nm * 1e-9,
        technology=tech,
        voltages=voltages,
        floorplan=floorplan,
        signaling=signaling,
        spec=spec,
        timing=timing,
        logic_blocks=tuple(logic_blocks),
        constant_current=2e-3 * complexity ** 0.5,
    )
