"""Prebuilt, calibrated device descriptions.

:func:`build_device` constructs a description for any node / interface /
density / width combination; :mod:`repro.devices.catalog` names the
specific devices the paper evaluates (the Figure 8/9 verification parts,
the three Figure 10 / Table III sensitivity devices and the Figure 13
generation sweep).
"""

from .builder import (
    INTERFACE_VDD,
    LOGIC_FIT,
    build_device,
    default_bank_count,
    default_page_bits,
)
from .catalog import (
    ddr2_1g,
    ddr3_1g,
    ddr3_2g_55nm,
    ddr5_16g_18nm,
    generation_sweep,
    sdr_128m_170nm,
    sensitivity_trio,
)
from .mobile import build_mobile_device
from .speed_bins import (
    SPEED_BINS,
    SpeedBin,
    bins_for_interface,
    build_binned_device,
    speed_bin,
)

__all__ = [
    "build_mobile_device",
    "SPEED_BINS",
    "SpeedBin",
    "bins_for_interface",
    "build_binned_device",
    "speed_bin",
    "INTERFACE_VDD",
    "LOGIC_FIT",
    "build_device",
    "default_bank_count",
    "default_page_bits",
    "ddr2_1g",
    "ddr3_1g",
    "ddr3_2g_55nm",
    "ddr5_16g_18nm",
    "generation_sweep",
    "sdr_128m_170nm",
    "sensitivity_trio",
]
