"""JEDEC-style speed bins: named data-rate/timing presets.

The verification parts of Figures 8/9 are speed-binned products
(DDR2-400 … DDR2-800, DDR3-800 … DDR3-1600); a bin fixes the per-pin
data rate and the guaranteed row timings.  This module provides the
era-typical bins so devices can be built by their market name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..description import DramDescription, TimingParameters
from ..errors import DescriptionError
from .builder import build_device


@dataclass(frozen=True)
class SpeedBin:
    """One JEDEC-style speed grade."""

    name: str
    interface: str
    datarate: float
    trc: float
    trcd: float
    trp: float
    trrd: float
    tfaw: float

    def timing(self) -> TimingParameters:
        """The bin's timing parameters."""
        return TimingParameters(
            trc=self.trc, trrd=self.trrd, tfaw=self.tfaw,
            trcd=self.trcd, trp=self.trp,
        )


def _bin(name, interface, mbps, trc, trcd, trp, trrd, tfaw) -> SpeedBin:
    return SpeedBin(name=name, interface=interface, datarate=mbps * 1e6,
                    trc=trc * 1e-9, trcd=trcd * 1e-9, trp=trp * 1e-9,
                    trrd=trrd * 1e-9, tfaw=tfaw * 1e-9)


#: Era-typical speed bins (timings in ns, mainstream CL grades).
SPEED_BINS: Dict[str, SpeedBin] = {
    bin.name: bin for bin in (
        # DDR2 (JESD79-2 style)
        _bin("DDR2-400", "DDR2", 400, 55.0, 15.0, 15.0, 7.5, 37.5),
        _bin("DDR2-533", "DDR2", 533, 57.0, 15.0, 15.0, 7.5, 37.5),
        _bin("DDR2-667", "DDR2", 667, 57.0, 15.0, 15.0, 7.5, 37.5),
        _bin("DDR2-800", "DDR2", 800, 57.5, 12.5, 12.5, 7.5, 35.0),
        # DDR3 (JESD79-3 style)
        _bin("DDR3-800", "DDR3", 800, 52.5, 15.0, 15.0, 10.0, 40.0),
        _bin("DDR3-1066", "DDR3", 1066, 50.6, 13.1, 13.1, 7.5, 37.5),
        _bin("DDR3-1333", "DDR3", 1333, 49.5, 13.5, 13.5, 6.0, 30.0),
        _bin("DDR3-1600", "DDR3", 1600, 48.8, 13.8, 13.8, 6.0, 30.0),
        _bin("DDR3-1866", "DDR3", 1866, 47.9, 13.9, 13.9, 5.0, 27.0),
        # DDR4 (JESD79-4 style)
        _bin("DDR4-2400", "DDR4", 2400, 46.2, 14.2, 14.2, 5.3, 21.0),
        _bin("DDR4-3200", "DDR4", 3200, 45.8, 13.8, 13.8, 5.0, 21.0),
        # DDR5 (forecast-era grades)
        _bin("DDR5-4800", "DDR5", 4800, 46.0, 14.0, 14.0, 5.0, 17.0),
        _bin("DDR5-6400", "DDR5", 6400, 45.8, 13.8, 13.8, 5.0, 13.3),
    )
}


def speed_bin(name: str) -> SpeedBin:
    """Look up a bin by its market name (case-insensitive)."""
    key = name.upper()
    if key not in SPEED_BINS:
        known = ", ".join(sorted(SPEED_BINS))
        raise DescriptionError(
            f"unknown speed bin {name!r} (known: {known})"
        )
    return SPEED_BINS[key]


def build_binned_device(bin_name: str, node_nm: float,
                        density_bits: Optional[int] = None,
                        io_width: int = 16) -> DramDescription:
    """Build a device for a named speed bin at a technology node.

    The bin fixes interface, data rate and the guaranteed timings; the
    node fixes the technology, voltages and geometry.
    """
    chosen = speed_bin(bin_name)
    device = build_device(node_nm, interface=chosen.interface,
                          density_bits=density_bits, io_width=io_width,
                          datarate=chosen.datarate)
    return device.evolve(
        name=f"{device.density_label}-{chosen.name}-x{io_width}-"
             f"{node_nm:g}nm",
        timing=chosen.timing(),
    )


def bins_for_interface(interface: str) -> Tuple[SpeedBin, ...]:
    """All bins of one interface family, slowest first."""
    return tuple(sorted(
        (bin for bin in SPEED_BINS.values()
         if bin.interface == interface),
        key=lambda bin: bin.datarate,
    ))
