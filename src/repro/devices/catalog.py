"""Named devices of the paper's evaluation.

* :func:`ddr2_1g` / :func:`ddr3_1g` — the Figure 8/9 verification parts
  (1 Gb DDR2 built in typical 75/65 nm technology, 1 Gb DDR3 in 65/55 nm);
* :func:`sdr_128m_170nm`, :func:`ddr3_2g_55nm`, :func:`ddr5_16g_18nm` —
  the three sensitivity devices of Figure 10 / Table III, spanning the
  years ≈2000 to ≈2017;
* :func:`generation_sweep` — one mainstream device per roadmap node for
  the Figure 11-13 trends.
"""

from __future__ import annotations

from typing import List, Tuple

from ..description import DramDescription
from ..technology.roadmap import nodes
from .builder import build_device

_GBIT = 1 << 30
_MBIT = 1 << 20


def ddr2_1g(datarate: float = 800e6, io_width: int = 16,
            node_nm: float = 75) -> DramDescription:
    """A 1 Gb DDR2 verification part (Figure 8).

    The paper models typical 75 nm and 65 nm technologies for the DDR2
    comparison; datasheet points run 400-800 Mbit/s/pin at x4/x8/x16.
    """
    return build_device(node_nm, interface="DDR2", density_bits=_GBIT,
                        io_width=io_width, datarate=datarate)


def ddr3_1g(datarate: float = 1333e6, io_width: int = 16,
            node_nm: float = 65) -> DramDescription:
    """A 1 Gb DDR3 verification part (Figure 9).

    The paper models typical 65 nm and 55 nm technologies for the DDR3
    comparison; datasheet points run 800-1600 Mbit/s/pin at x4/x8/x16.
    """
    return build_device(node_nm, interface="DDR3", density_bits=_GBIT,
                        io_width=io_width, datarate=datarate)


def sdr_128m_170nm(io_width: int = 16) -> DramDescription:
    """The 128 Mb SDR device in 170 nm technology (Figure 10, Table III)."""
    return build_device(170, interface="SDR", density_bits=128 * _MBIT,
                        io_width=io_width, datarate=166e6)


def ddr3_2g_55nm(io_width: int = 16) -> DramDescription:
    """The 2 Gb DDR3 device in 55 nm technology (Table III).

    Figure 10's middle device is labelled 1G DDR3 55 nm in the figure and
    2G DDR3 55 nm in Table III; we follow the table (the roadmap's 55 nm
    mainstream part is 2 Gb).
    """
    return build_device(55, interface="DDR3", density_bits=2 * _GBIT,
                        io_width=io_width, datarate=1600e6)


def ddr5_16g_18nm(io_width: int = 16) -> DramDescription:
    """The hypothetical 16 Gb DDR5 device in 18 nm (Figure 10, Table III)."""
    return build_device(18, interface="DDR5", density_bits=16 * _GBIT,
                        io_width=io_width, datarate=6400e6)


def sensitivity_trio() -> Tuple[DramDescription, DramDescription,
                                DramDescription]:
    """The three devices of Figure 10 / Table III, oldest first."""
    return sdr_128m_170nm(), ddr3_2g_55nm(), ddr5_16g_18nm()


def generation_sweep(io_width: int = 16) -> List[DramDescription]:
    """One mainstream device per roadmap node (Figures 11-13).

    The density at each node keeps the die between roughly 40 and 60 mm²;
    the data rate is the high end typically available (paper §IV.C).
    """
    return [build_device(node_nm, io_width=io_width) for node_nm in nodes()]
