"""Mobile (LPDDR-style) device variants (paper §II).

"Mobile DRAMs are optimized for low standby current with data rates
similar to commodity DRAMs.  Their architecture ... places I/O pads at
the chip edge to satisfy the packaging requirements ... The optimization
for low standby current is not visible in the global architecture but
influences technology and circuit optimization to reduce leakage current
as much as possible."

The mobile builder therefore starts from the commodity device of the same
node and applies the three visible differences:

* **edge pads** — the data has to be wired from the centre stripe to the
  die edge: an extra signal-net section per direction;
* **lower supply** — LPDDR-class Vdd (1.8 V for LPDDR1-era nodes, 1.2 V
  from LPDDR2 on) with the internal rails following;
* **standby optimisation** — a leaner always-on control block and a
  smaller constant current sink.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..description import DramDescription, Rail
from ..description.signaling import (
    SegmentKind,
    SignalNet,
    SignalSegment,
    Trigger,
)
from ..description.pattern import Command
from .builder import build_device

#: LPDDR-class supply voltage by node era.
def _mobile_vdd(node_nm: float) -> float:
    return 1.8 if node_nm > 80 else 1.2


#: Standby-optimisation factors (paper: circuit optimisation for low
#: standby current).
_CONTROL_GATE_FACTOR = 0.7
_CONSTANT_CURRENT_FACTOR = 0.5


def build_mobile_device(node_nm: float,
                        density_bits: Optional[int] = None,
                        io_width: int = 32,
                        datarate: Optional[float] = None
                        ) -> DramDescription:
    """Build an LPDDR-style mobile derivative of a node's device.

    Mobile parts favour wide, moderately clocked interfaces (x32) and a
    low supply; the floorplan gains the centre-to-edge pad wiring.
    """
    base = build_device(node_nm, density_bits=density_bits,
                        io_width=io_width, datarate=datarate)

    # Lower supply with rails following proportionally (but never below
    # the technology's bitline voltage).
    volts = base.voltages
    vdd = _mobile_vdd(node_nm)
    factor = vdd / volts.vdd
    vint = max(volts.vbl, volts.vint * factor)
    ratio = vint / vdd
    voltages = volts.with_levels(
        vdd=vdd,
        vint=vint,
        eff_vint=1.0 if ratio > 0.97 else ratio,
        eff_vbl=min(1.0, volts.vbl / vdd),
        eff_vpp=min(1.0, 0.8 * volts.vpp / (2.0 * vdd)),
    )

    # Edge pads: route the interface-speed data from the centre stripe
    # to the die edge (half the centre-stripe block height each way).
    edge_nets = []
    for name, op in (("EdgePadRead", Command.RD),
                     ("EdgePadWrite", Command.WR)):
        edge_nets.append(SignalNet(
            name=name,
            segments=(
                SignalSegment(
                    kind=SegmentKind.SPAN, start=(3, 2), end=(3, 0),
                    wires=io_width, toggle=1.0,
                    buffer_w_n=6e-6, buffer_w_p=12e-6,
                ),
            ),
            trigger=Trigger.PER_DATA_CLOCK,
            operations=frozenset({op}),
            rail=Rail.VDD,
            component="io",
        ))
    signaling = dataclasses.replace(
        base.signaling, nets=base.signaling.nets + tuple(edge_nets)
    )

    # Standby optimisation: leaner always-on control, smaller reference
    # current.
    blocks = []
    for block in base.logic_blocks:
        if block.is_background and block.name == "control":
            gates = max(1, int(block.n_gates * _CONTROL_GATE_FACTOR))
            blocks.append(dataclasses.replace(block, n_gates=gates))
        else:
            blocks.append(block)

    density_label = base.density_label
    return base.evolve(
        name=f"{density_label}-LP-mobile-x{io_width}-{node_nm:g}nm",
        interface=base.interface,
        voltages=voltages,
        signaling=signaling,
        logic_blocks=tuple(blocks),
        constant_current=base.constant_current
        * _CONSTANT_CURRENT_FACTOR,
    )
