"""Rank and module composition of device power models.

A rank is ``devices_per_rank`` identical DRAMs operated in lockstep: a
64-bit channel is eight x8 devices or four x16 devices.  A cache-line
access touches every device of the (sub-)rank, so device row/column
operations multiply accordingly; idle ranks sit in standby or power-down.

The mini-rank evaluation follows Zheng et al.: splitting the rank by k
means only 1/k of the devices activate per access while each transfers k
times the data (k bursts) — row energy divides by k, column energy stays,
and the per-access latency grows (not modeled: latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.idd import idd2n, idd2p, idd7_counts
from ..description import Command, DramDescription
from ..engine import EvaluationSession, ensure_session
from ..errors import ModelError


@dataclass(frozen=True)
class RankConfig:
    """One memory-module organisation."""

    device: DramDescription
    devices_per_rank: int
    ranks: int = 1

    def __post_init__(self) -> None:
        if self.devices_per_rank <= 0:
            raise ModelError("devices_per_rank must be positive")
        if self.ranks <= 0:
            raise ModelError("ranks must be positive")

    @property
    def channel_width(self) -> int:
        """Data-bus width of the module (bits)."""
        return self.devices_per_rank * self.device.spec.io_width

    @property
    def line_bits_per_device(self) -> int:
        """Bits one device contributes to a single burst access."""
        return self.device.spec.bits_per_access


@dataclass(frozen=True)
class ModulePower:
    """Channel-level power result."""

    config_label: str
    power: float
    """Total module power (W)."""
    bandwidth: float
    """Channel data bandwidth of the workload (bit/s)."""
    active_devices: int
    parked_devices: int

    @property
    def energy_per_bit(self) -> float:
        """Module energy per transferred bit (J)."""
        if self.bandwidth <= 0:
            return float("inf")
        return self.power / self.bandwidth


class ModulePowerModel:
    """Evaluates a rank configuration under a mixed workload."""

    def __init__(self, config: RankConfig,
                 session: Optional[EvaluationSession] = None):
        self.config = config
        self.session = ensure_session(session)
        self.device_model = self.session.model(config.device)

    # ------------------------------------------------------------------
    def lockstep_power(self, write_fraction: float = 0.5,
                       park_idle_ranks: bool = True) -> ModulePower:
        """Full-bandwidth mixed workload on one rank, others idle.

        Every device of the active rank runs the Idd7-style pattern in
        lockstep; the remaining ranks sit in power-down (or plain
        standby when ``park_idle_ranks`` is false).
        """
        counts, window = idd7_counts(self.device_model, write_fraction)
        active = self.device_model.counts_power(counts, window).power
        idle = (idd2p(self.device_model).power.power if park_idle_ranks
                else idd2n(self.device_model).power.power)
        devices = self.config.devices_per_rank
        idle_devices = devices * (self.config.ranks - 1)
        power = devices * active + idle_devices * idle
        accesses = counts[Command.RD] + counts[Command.WR]
        device_bits = accesses * self.config.device.spec.bits_per_access
        bandwidth = device_bits * devices / window
        return ModulePower(
            config_label=f"{self.config.ranks}R x "
                         f"{devices}dev lockstep",
            power=power,
            bandwidth=bandwidth,
            active_devices=devices,
            parked_devices=idle_devices,
        )

    def mini_rank_power(self, divisor: int,
                        write_fraction: float = 0.5) -> ModulePower:
        """The same channel traffic delivered by 1/divisor-wide
        sub-ranks.

        Per cache-line access only ``devices/divisor`` devices activate,
        each bursting ``divisor`` times as long: across the module the
        column (data) energy is conserved, the row (activate/precharge)
        energy divides by the divisor, and every device keeps its
        background running — exactly Zheng et al.'s energy argument.
        """
        devices = self.config.devices_per_rank
        if divisor <= 0 or devices % divisor:
            raise ModelError(
                f"divisor {divisor} must evenly split "
                f"{devices} devices"
            )
        counts, window = idd7_counts(self.device_model, write_fraction)
        base = self.device_model.counts_power(counts, window)
        ops = base.operation_power
        background = ops.get("background", 0.0)
        row_part = ops.get("act", 0.0) + ops.get("pre", 0.0)
        column_part = ops.get("rd", 0.0) + ops.get("wr", 0.0)
        per_device = background + row_part / divisor + column_part
        idle_devices = devices * (self.config.ranks - 1)
        parked = idd2p(self.device_model).power.power
        power = devices * per_device + idle_devices * parked
        accesses = counts[Command.RD] + counts[Command.WR]
        device_bits = accesses * self.config.device.spec.bits_per_access
        return ModulePower(
            config_label=f"mini-rank /{divisor}",
            power=power,
            bandwidth=device_bits * devices / window,
            active_devices=devices // divisor,
            parked_devices=idle_devices,
        )


def mini_rank_study(device: DramDescription, devices_per_rank: int = 8,
                    divisors: List[int] = (1, 2, 4),
                    session: Optional[EvaluationSession] = None
                    ) -> Dict[int, ModulePower]:
    """Module energy per bit across mini-rank splits (Zheng et al.)."""
    model = ModulePowerModel(RankConfig(device, devices_per_rank),
                             session=session)
    results: Dict[int, ModulePower] = {}
    for divisor in divisors:
        if divisor == 1:
            results[divisor] = model.lockstep_power(
                park_idle_ranks=False)
        else:
            results[divisor] = model.mini_rank_power(divisor)
    return results
