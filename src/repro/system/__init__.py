"""Module- and rank-level power modeling.

The paper's Section V references act at the memory-*module* level:
mini-rank (Zheng et al.) splits a 64-bit rank into narrower portions,
threaded modules (Ware & Hampel) add addressing flexibility, and
controller power management (Hur & Lin) parks idle ranks.  This package
composes per-device power models into channel-level figures so those
proposals can be evaluated where they actually live.
"""

from .module import ModulePowerModel, RankConfig, mini_rank_study

__all__ = ["ModulePowerModel", "RankConfig", "mini_rank_study"]
