"""Signal-wire charge events from the signaling floorplan (§III.B.2).

For each segment of each net the wire capacitance is the segment length
(measured on the physical floorplan) times the specific wire capacitance,
plus the gate and junction load of any buffer or multiplexer inserted at
the segment's end.  One event is emitted per segment so the breakdown can
attribute power to individual bus sections.
"""

from __future__ import annotations

from typing import List

from ..description import DramDescription
from ..core.events import (ChargeEvent, Component, EventSkeleton,
                           resolve_skeletons)
from ..floorplan import FloorplanGeometry
from .devices import buffer_total_load


def segment_capacitance(device: DramDescription,
                        geometry: FloorplanGeometry,
                        segment) -> float:
    """Wire plus inserted-device capacitance of one segment wire (F)."""
    tech = device.technology
    wire = geometry.segment_length(segment) * tech.c_wire_signal
    devices = buffer_total_load(tech, segment.buffer_w_n, segment.buffer_w_p)
    return wire + devices


def skeletons(device: DramDescription,
              geometry: FloorplanGeometry) -> List[EventSkeleton]:
    """Voltage-free event skeletons for every signal-net segment."""
    produced: List[EventSkeleton] = []
    for net in device.signaling:
        component = Component(net.component)
        for index, segment in enumerate(net.segments):
            capacitance = segment_capacitance(device, geometry, segment)
            produced.append(EventSkeleton(
                name=f"net {net.name}[{index}]",
                component=component,
                capacitance=capacitance,
                swing_rail=net.rail,
                swing_divisor=1.0,
                rail=net.rail,
                count=segment.wires * segment.toggle,
                trigger=net.trigger,
                operations=net.operations,
            ))
    return produced


def events(device: DramDescription,
           geometry: FloorplanGeometry) -> List[ChargeEvent]:
    """Charge events for every signal-net segment of the device."""
    return list(resolve_skeletons(skeletons(device, geometry),
                                  device.voltages))
