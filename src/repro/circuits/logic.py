"""Peripheral logic-block charge events (paper Section III.B.5).

Each miscellaneous block contributes ``n_gates × toggle`` switching gates
per clock of its domain.  The capacitance per gate is the average device
load (gate plus junction of the average-width transistors) times the
transistors per gate, plus a local-wiring load derived from the block area
— "the wire load as function of the block size which is calculated based
on the number of gates".
"""

from __future__ import annotations

from typing import List

from ..description import DramDescription, LogicBlock
from ..core.events import (ChargeEvent, Component, EventSkeleton,
                           resolve_skeletons)
from ..floorplan import FloorplanGeometry


def gate_capacitance(device: DramDescription, block: LogicBlock) -> float:
    """Switched capacitance of one average gate in the block (F)."""
    tech = device.technology
    width = (block.w_n + block.w_p) / 2.0
    device_load = block.transistors_per_gate * (
        tech.logic_gate_cap(width) + tech.logic_junction_cap(width)
    )
    wire_load = (block.wire_length_per_gate(tech.lmin_logic)
                 * tech.c_wire_signal)
    return device_load + wire_load


def skeletons(device: DramDescription,
              geometry: FloorplanGeometry) -> List[EventSkeleton]:
    """Voltage-free event skeletons for every peripheral logic block."""
    produced: List[EventSkeleton] = []
    for block in device.iter_logic_blocks():
        produced.append(EventSkeleton(
            name=f"logic {block.name}",
            component=Component(block.component),
            capacitance=gate_capacitance(device, block),
            swing_rail=block.rail,
            swing_divisor=1.0,
            rail=block.rail,
            count=block.n_gates * block.toggle,
            trigger=block.trigger,
            operations=block.operations,
        ))
    return produced


def events(device: DramDescription,
           geometry: FloorplanGeometry) -> List[ChargeEvent]:
    """Charge events for every peripheral logic block."""
    return list(resolve_skeletons(skeletons(device, geometry),
                                  device.voltages))


def total_block_area(device: DramDescription) -> float:
    """Total laid-out area of all peripheral logic blocks (m²)."""
    length = device.technology.lmin_logic
    return sum(block.block_area(length)
               for block in device.iter_logic_blocks())
