"""Circuit-level capacitance models.

Each module turns one slice of the DRAM description into
:class:`~repro.core.ChargeEvent` objects:

* :mod:`repro.circuits.array`     — bitlines, cells, sense-amplifier control
  (Figure 2 of the paper);
* :mod:`repro.circuits.wordline`  — local/master wordlines, sub-wordline
  drivers (Figure 3) and the row decoder;
* :mod:`repro.circuits.column`    — column select lines, local and master
  data lines, write-back;
* :mod:`repro.circuits.signaling` — the long signal wires of the signaling
  floorplan (data/address/control buses, clock wiring);
* :mod:`repro.circuits.logic`     — miscellaneous peripheral logic blocks.

Modeling constants that are not description parameters (e.g. the number of
wordline phase signals) live in :mod:`repro.circuits.constants`.
"""

from . import array, column, constants, logic, signaling, wordline
from .devices import buffer_input_load, buffer_total_load

__all__ = [
    "array",
    "column",
    "constants",
    "logic",
    "signaling",
    "wordline",
    "buffer_input_load",
    "buffer_total_load",
]
