"""Device-load helpers shared by the circuit models.

Device capacitance is determined by gate capacitance (gate area over
equivalent dielectric thickness) plus junction capacitance (junction width
times specific capacitance) — paper Section III.B.2.  The per-family
calculations live on :class:`~repro.description.TechnologyParameters`;
this module adds the composite loads for buffers/re-drivers inserted into
signal wires.
"""

from __future__ import annotations

from ..description import TechnologyParameters


def buffer_input_load(tech: TechnologyParameters, w_n: float,
                      w_p: float) -> float:
    """Input (gate) capacitance of a CMOS buffer stage (F).

    The previous wire segment must charge both gates.
    """
    load = 0.0
    if w_n > 0:
        load += tech.logic_gate_cap(w_n)
    if w_p > 0:
        load += tech.logic_gate_cap(w_p)
    return load


def buffer_output_load(tech: TechnologyParameters, w_n: float,
                       w_p: float) -> float:
    """Output (junction) capacitance a buffer adds to its own segment (F)."""
    load = 0.0
    if w_n > 0:
        load += tech.logic_junction_cap(w_n)
    if w_p > 0:
        load += tech.logic_junction_cap(w_p)
    return load


def buffer_total_load(tech: TechnologyParameters, w_n: float,
                      w_p: float) -> float:
    """Gate plus junction load of an inserted buffer/multiplexer (F).

    When a buffer is inserted into a bus, each toggle charges the input
    gates (driven by the upstream segment) and the output junctions (part
    of the downstream segment).  Attributing both to the segment carrying
    the buffer keeps the accounting local and conservative.
    """
    return buffer_input_load(tech, w_n, w_p) \
        + buffer_output_load(tech, w_n, w_p)
