"""Modeling constants that are architecture conventions, not parameters.

These values are fixed properties of the commodity-DRAM circuit style the
paper describes (Section II) rather than per-device description inputs.
They are collected here so every assumption is visible and testable.
"""

#: Wordline phase (FX) signals per master wordline.  In a hierarchical
#: wordline scheme one master wordline selects a group of local wordlines
#: and the phase signals pick one of them; four phases is the common
#: commodity choice.
WORDLINE_PHASES = 4

#: Distributed sense-amplifier set devices (NSET/PSET switches) per
#: sense-amplifier stripe.  The set transistors of Figure 2 are shared by
#: groups of sense amplifiers; one pair per 32 bitline pairs is typical.
SET_DEVICE_GROUP = 32

#: Transistors per bitline pair in a bitline sense-amplifier stripe:
#: 2 NMOS sense + 2 PMOS sense + 3 equalize/precharge + 2 bit switch,
#: plus 2 bitline multiplexers in folded architectures (paper §II gives
#: 11 for a typical — folded — stripe).
SA_TRANSISTORS_OPEN = 9
SA_TRANSISTORS_FOLDED = 11

#: Transistors per local wordline in a sub-wordline driver stripe
#: (Figure 3: driver PMOS + driver NMOS + restore NMOS).
SWD_TRANSISTORS = 3

#: Average probability that a written bit differs from the bit currently
#: latched in the sense amplifier (random data).
WRITE_FLIP_PROBABILITY = 0.5

#: Average fraction of cells storing a one, i.e. needing a full restore
#: from the bitline supply after destructive readout (random data).
ONES_FRACTION = 0.5

#: Fraction of the external-data-bit energy attributed to the on-die
#: pre-driver and receiver circuitry per pin toggle; the off-chip link
#: itself (Vddq) is excluded per the paper.
IO_INTERNAL_TOGGLE = 0.5
