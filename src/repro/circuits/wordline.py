"""Wordline-path charge events (paper Figure 3 and Section III.B.3).

The hierarchical row path: a master wordline (metal, full array-block
width) selects a group of local wordline drivers in every sub-wordline
driver stripe it crosses; a phase (FX) line carries the Vpp pulse to the
selected driver; the local wordline — the gate poly of the cell access
transistors — rises to Vpp in each sub-array the page spans.

All wordline-domain charges draw from the Vpp pump.  Discharges (wordline
falling at precharge) return charge to ground, not to the pump, so only
the rising edges appear as events; they are attached to the activate
command.
"""

from __future__ import annotations

from typing import List

from ..description import Command, DramDescription, Rail
from ..description.signaling import Trigger
from ..core.events import (ChargeEvent, Component, EventSkeleton,
                           resolve_skeletons)
from ..floorplan import FloorplanGeometry
from . import constants


def local_wordline_capacitance(device: DramDescription) -> float:
    """Capacitance of one local wordline (F).

    Gate poly of ``bits_per_swl`` cell access transistors, the poly wire
    itself, the coupling share of the crossing bitlines, and the output
    junctions of its driver.
    """
    tech = device.technology
    array = device.floorplan.array
    gate_load = array.bits_per_swl * tech.cell_gate_cap()
    wire_load = array.local_wordline_length * tech.c_wire_swl
    # Each bitline couples a share of its total capacitance to the
    # wordlines crossing it; one wordline sees that share divided by the
    # number of wordlines along the bitline.
    coupling_per_crossing = (tech.c_bitline * tech.share_bl_wl
                             / array.rows_per_subarray)
    coupling_load = array.bits_per_swl * coupling_per_crossing
    driver_load = (tech.hv_junction_cap(tech.w_swd_n)
                   + tech.hv_junction_cap(tech.w_swd_p)
                   + tech.hv_junction_cap(tech.w_swd_restore))
    return gate_load + wire_load + coupling_load + driver_load


def master_wordline_capacitance(device: DramDescription,
                                geometry: FloorplanGeometry) -> float:
    """Capacitance of one master wordline (F).

    Metal wire across the array block plus the input gates of the local
    wordline drivers in every stripe it crosses and the junctions of its
    own decoder.
    """
    tech = device.technology
    block = geometry.array_block
    wire_load = block.master_wordline_length * tech.c_wire_mwl
    driver_gates = block.subarray_cols * (
        tech.hv_gate_cap(tech.w_swd_n) + tech.hv_gate_cap(tech.w_swd_p)
    )
    decoder_load = (tech.hv_junction_cap(tech.w_mwl_dec_n)
                    + tech.hv_junction_cap(tech.w_mwl_dec_p))
    return wire_load + driver_gates + decoder_load


def phase_line_capacitance(device: DramDescription,
                           geometry: FloorplanGeometry) -> float:
    """Capacitance of one wordline phase (FX) line (F).

    The phase line runs parallel to the master wordline and feeds the
    source of the selected driver PMOS in every stripe; it also drives the
    restore-device gates of the non-selected drivers and is buffered by the
    wordline-controller load devices.
    """
    tech = device.technology
    block = geometry.array_block
    wire_load = block.master_wordline_length * tech.c_wire_mwl
    stripe_load = block.subarray_cols * (
        tech.hv_junction_cap(tech.w_swd_p)
        + tech.hv_gate_cap(tech.w_swd_restore)
    )
    controller_load = (tech.hv_device_load(tech.w_wl_ctrl_load_n)
                       + tech.hv_device_load(tech.w_wl_ctrl_load_p))
    return wire_load + stripe_load + controller_load


def skeletons(device: DramDescription,
              geometry: FloorplanGeometry) -> List[EventSkeleton]:
    """Voltage-free event skeletons of the row (wordline) path."""
    tech = device.technology
    block = geometry.array_block

    produced = [
        EventSkeleton(
            name="local wordlines",
            component=Component.WORDLINE,
            capacitance=local_wordline_capacitance(device),
            swing_rail=Rail.VPP,
            swing_divisor=1.0,
            rail=Rail.VPP,
            count=float(device.swls_per_activate),
            trigger=Trigger.PER_ROW_OP,
            operations=frozenset({Command.ACT}),
        ),
        # A page split over several blocks drives one master wordline and
        # one phase line in each of them.
        EventSkeleton(
            name="master wordline",
            component=Component.WORDLINE,
            capacitance=master_wordline_capacitance(device, geometry),
            swing_rail=Rail.VPP,
            swing_divisor=1.0,
            rail=Rail.VPP,
            count=float(device.blocks_per_bank),
            trigger=Trigger.PER_ROW_OP,
            operations=frozenset({Command.ACT}),
        ),
        EventSkeleton(
            name="wordline phase line",
            component=Component.WORDLINE,
            capacitance=phase_line_capacitance(device, geometry),
            swing_rail=Rail.VPP,
            swing_divisor=1.0,
            rail=Rail.VPP,
            count=float(device.blocks_per_bank),
            trigger=Trigger.PER_ROW_OP,
            operations=frozenset({Command.ACT}),
        ),
    ]

    # Row predecode: a handful of predecode lines toggle per activate.
    # Each line runs along the row-logic stripe (the block height) and
    # fans out to the master-wordline decoders it serves.
    master_wordlines = (device.spec.rows_per_bank
                        // constants.WORDLINE_PHASES)
    decoders_per_line = max(1.0, master_wordlines / tech.predecode_mwl)
    predecode_cap = (
        block.column_line_length * tech.c_wire_signal
        + decoders_per_line * (tech.hv_gate_cap(tech.w_mwl_dec_n)
                               + tech.hv_gate_cap(tech.w_mwl_dec_p))
    )
    produced.append(EventSkeleton(
        name="row predecode lines",
        component=Component.WORDLINE,
        capacitance=predecode_cap,
        swing_rail=Rail.VINT,
        swing_divisor=1.0,
        rail=Rail.VINT,
        count=tech.predecode_mwl * tech.mwl_dec_activity,
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    ))

    return produced


def events(device: DramDescription,
           geometry: FloorplanGeometry) -> List[ChargeEvent]:
    """Charge events of the row (wordline) path."""
    return list(resolve_skeletons(skeletons(device, geometry),
                                  device.voltages))
