"""Column-path charge events (paper Sections II and III).

A column access asserts one or more column select lines (CSLs).  Each CSL
runs parallel to the bitlines over the full array block (or several blocks
sharing it), loaded by the bit-switch gates in every sense-amplifier stripe
it crosses.  The selected bit switches connect sense amplifiers to the
local data lines, which feed the differential master array data lines
running to the secondary sense amplifiers at the column logic.

Writes additionally flip, on average, half of the accessed sense
amplifiers and their cells — the only array charge of a column write.
"""

from __future__ import annotations

from typing import List

from ..description import Command, DramDescription, Rail
from ..description.signaling import Trigger
from ..core.events import (ChargeEvent, Component, EventSkeleton,
                           resolve_skeletons)
from ..floorplan import FloorplanGeometry
from . import constants

_COLUMN_OPS = frozenset({Command.RD, Command.WR})


def csl_capacitance(device: DramDescription,
                    geometry: FloorplanGeometry) -> float:
    """Capacitance of one column select line (F)."""
    tech = device.technology
    array = device.floorplan.array
    block = geometry.array_block
    wire_per_block = block.column_line_length * tech.c_wire_signal
    # In every stripe the CSL controls the bit switches of the pairs it
    # can connect (two devices per differential pair).
    gates_per_block = (block.subarray_rows * tech.bits_per_csl * 2
                       * tech.logic_gate_cap(tech.w_bitswitch,
                                             tech.l_bitswitch))
    return array.blocks_per_csl * (wire_per_block + gates_per_block)


def local_dataline_capacitance(device: DramDescription) -> float:
    """Capacitance of one local data line (F).

    The line runs along the sense-amplifier stripe and carries the bit
    switch junctions of every CSL column in the sub-array.
    """
    tech = device.technology
    array = device.floorplan.array
    wire = array.local_wordline_length * tech.c_wire_signal
    switch_junctions = (array.bits_per_swl // tech.bits_per_csl) \
        * tech.logic_junction_cap(tech.w_bitswitch)
    return wire + switch_junctions


def master_dataline_capacitance(device: DramDescription,
                                geometry: FloorplanGeometry) -> float:
    """Capacitance of one master array data line (F)."""
    tech = device.technology
    block = geometry.array_block
    wire = block.column_line_length * tech.c_wire_signal
    # Local-to-master switches in every stripe plus the secondary
    # sense-amplifier input at the end of the line.
    stripe_junctions = block.subarray_rows \
        * tech.logic_junction_cap(tech.w_bitswitch)
    ssa_input = 2 * tech.logic_gate_cap(2 * tech.lmin_logic * 10,
                                        tech.lmin_logic)
    return wire + stripe_junctions + ssa_input


def skeletons(device: DramDescription,
              geometry: FloorplanGeometry) -> List[EventSkeleton]:
    """Voltage-free event skeletons of the column path."""
    tech = device.technology
    spec = device.spec

    produced = [
        EventSkeleton(
            name="column select lines",
            component=Component.COLUMN,
            capacitance=csl_capacitance(device, geometry),
            swing_rail=Rail.VINT,
            swing_divisor=1.0,
            rail=Rail.VINT,
            count=float(device.csls_per_access),
            trigger=Trigger.PER_ACCESS,
            operations=_COLUMN_OPS,
        ),
        EventSkeleton(
            name="local data lines",
            component=Component.COLUMN,
            capacitance=local_dataline_capacitance(device),
            swing_rail=Rail.VBL,
            swing_divisor=2.0,
            rail=Rail.VBL,
            count=float(spec.bits_per_access),
            trigger=Trigger.PER_ACCESS,
            operations=_COLUMN_OPS,
        ),
        EventSkeleton(
            name="master data lines",
            component=Component.DATAPATH,
            capacitance=master_dataline_capacitance(device, geometry),
            swing_rail=Rail.VINT,
            swing_divisor=1.0,
            rail=Rail.VINT,
            count=float(spec.bits_per_access),
            trigger=Trigger.PER_ACCESS,
            operations=_COLUMN_OPS,
        ),
        # Writing random data flips on average half of the latched sense
        # amplifiers: the rising bitline of each flipped pair is charged
        # through the write driver, and the cell is rewritten.
        EventSkeleton(
            name="write bitline flip",
            component=Component.BITLINE,
            capacitance=tech.c_bitline + tech.c_cell,
            swing_rail=Rail.VBL,
            swing_divisor=1.0,
            rail=Rail.VBL,
            count=spec.bits_per_access * constants.WRITE_FLIP_PROBABILITY,
            trigger=Trigger.PER_ACCESS,
            operations=frozenset({Command.WR}),
        ),
    ]
    return produced


def events(device: DramDescription,
           geometry: FloorplanGeometry) -> List[ChargeEvent]:
    """Charge events of the column path (reads and writes)."""
    return list(resolve_skeletons(skeletons(device, geometry),
                                  device.voltages))
