"""Bitline, cell and sense-amplifier charge events (paper Figure 2).

Row activation is the dominant array energy: one local wordline per
spanned sub-array rises to Vpp, every bitline pair of the page splits from
the Vbl/2 precharge level (one line charges to Vbl from the bitline
supply, the other discharges to ground), and the cells storing a one are
restored through the sense amplifier.  Precharge equalises true and
complement bitlines by shorting them — adiabatic, no supply charge — so the
only precharge-side array events are the control lines of the equalise
devices.
"""

from __future__ import annotations

from typing import List

from ..description import Command, DramDescription, Rail
from ..description.signaling import Trigger
from ..core.events import (ChargeEvent, Component, EventSkeleton,
                           resolve_skeletons)
from ..floorplan import FloorplanGeometry
from . import constants


def skeletons(device: DramDescription,
              geometry: FloorplanGeometry) -> List[EventSkeleton]:
    """Voltage-free event skeletons of the array and SA stripes."""
    tech = device.technology
    array = device.floorplan.array
    page_bits = device.spec.page_bits
    stripes = device.swls_per_activate

    produced: List[EventSkeleton] = []

    # One bitline of every pair charges from the Vbl/2 precharge level to
    # Vbl during sensing; its complement discharges to ground.  Only the
    # charging line draws supply current.
    produced.append(EventSkeleton(
        name="bitline swing",
        component=Component.BITLINE,
        capacitance=tech.c_bitline,
        swing_rail=Rail.VBL,
        swing_divisor=2.0,
        rail=Rail.VBL,
        count=float(page_bits),
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    ))

    # Destructive readout: cells that stored a one are refilled from the
    # bitline supply (from the shared level ~Vbl/2 back up to Vbl).
    produced.append(EventSkeleton(
        name="cell restore",
        component=Component.BITLINE,
        capacitance=tech.c_cell,
        swing_rail=Rail.VBL,
        swing_divisor=2.0,
        rail=Rail.VBL,
        count=page_bits * constants.ONES_FRACTION,
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    ))

    # NSET / PSET control lines: one pair per activated stripe, loaded by
    # the distributed set transistors and the stripe-length wire.
    pairs_per_stripe = array.bits_per_swl
    set_devices = max(1, pairs_per_stripe // constants.SET_DEVICE_GROUP)
    set_line_cap = (
        array.local_wordline_length * tech.c_wire_signal
        + set_devices * tech.logic_device_load(tech.w_nset, tech.l_nset)
        + set_devices * tech.logic_device_load(tech.w_pset, tech.l_pset)
    )
    produced.append(EventSkeleton(
        name="sense-amp set lines",
        component=Component.SENSE_AMP,
        capacitance=set_line_cap,
        swing_rail=Rail.VINT,
        swing_divisor=1.0,
        rail=Rail.VINT,
        count=float(stripes),
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    ))

    # The PMOS common source node of each activated stripe is pulled from
    # the Vbl/2 precharge level up to Vbl to power the sense amplifiers.
    pcs_cap = (pairs_per_stripe * tech.logic_junction_cap(tech.w_sa_p)
               + array.local_wordline_length * tech.c_wire_signal)
    produced.append(EventSkeleton(
        name="sense-amp source node",
        component=Component.SENSE_AMP,
        capacitance=pcs_cap,
        swing_rail=Rail.VBL,
        swing_divisor=2.0,
        rail=Rail.VBL,
        count=float(stripes),
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.ACT}),
    ))

    # Equalise control lines: three gates per pair (equalise plus two
    # precharge devices), driven in the wordline voltage domain.  The line
    # falls at activate (discharge) and is recharged at precharge.
    eq_line_cap = (
        array.local_wordline_length * tech.c_wire_signal
        + pairs_per_stripe * 3 * tech.hv_device_load(tech.w_eq, tech.l_eq)
    )
    produced.append(EventSkeleton(
        name="equalize control lines",
        component=Component.SENSE_AMP,
        capacitance=eq_line_cap,
        swing_rail=Rail.VPP,
        swing_divisor=1.0,
        rail=Rail.VPP,
        count=float(stripes),
        trigger=Trigger.PER_ROW_OP,
        operations=frozenset({Command.PRE}),
    ))

    # Folded architectures share each sense amplifier between the left and
    # right sub-array through bitline multiplexers whose control lines
    # switch on every activate.
    if array.is_folded:
        mux_line_cap = (
            array.local_wordline_length * tech.c_wire_signal
            + pairs_per_stripe * 2
            * tech.hv_device_load(tech.w_blmux, tech.l_blmux)
        )
        produced.append(EventSkeleton(
            name="bitline mux control lines",
            component=Component.SENSE_AMP,
            capacitance=mux_line_cap,
            swing_rail=Rail.VPP,
            swing_divisor=1.0,
            rail=Rail.VPP,
            count=float(stripes),
            trigger=Trigger.PER_ROW_OP,
            operations=frozenset({Command.ACT}),
        ))

    return produced


def events(device: DramDescription,
           geometry: FloorplanGeometry) -> List[ChargeEvent]:
    """Charge events of the cell array and sense-amplifier stripes."""
    return list(resolve_skeletons(skeletons(device, geometry),
                                  device.voltages))


def transistors_per_pair(device: DramDescription) -> int:
    """Sense-amplifier transistors per bitline pair (9 open, 11 folded)."""
    if device.floorplan.array.is_folded:
        return constants.SA_TRANSISTORS_FOLDED
    return constants.SA_TRANSISTORS_OPEN
