"""Projection to arbitrary (off-roadmap) technology nodes.

The paper's core claim is that "extrapolation to future DRAM generations
is therefore possible".  The roadmap table carries fourteen named nodes;
this module interpolates between them — and extrapolates beyond the
16 nm endpoint — so a device can be built at *any* feature size:

* voltages and row timings interpolate geometrically between the
  bracketing roadmap nodes (they are smooth, slowly-varying trends);
* interface family, data rate and density snap to the nearest roadmap
  node (they are stepwise market decisions);
* beyond the endpoints the last trend segment continues, with voltages
  floored at the 16 nm values — the voltage-scaling stall of §IV.C is
  precisely why no further headroom is assumed.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..errors import TechnologyError
from .roadmap import ROADMAP, RoadmapEntry, nodes


def _bracket(node_nm: float) -> Tuple[float, float]:
    """The two roadmap nodes bracketing ``node_nm`` (clamped)."""
    ordered = nodes()  # large → small
    if node_nm >= ordered[0]:
        return ordered[0], ordered[1]
    if node_nm <= ordered[-1]:
        return ordered[-2], ordered[-1]
    for larger, smaller in zip(ordered, ordered[1:]):
        if smaller <= node_nm <= larger:
            return larger, smaller
    raise TechnologyError(f"cannot bracket node {node_nm}")  # pragma: no cover


def _geometric(value_a: float, value_b: float, node_a: float,
               node_b: float, node: float) -> float:
    """Log-log interpolation between two roadmap points."""
    if value_a <= 0 or value_b <= 0:
        raise TechnologyError("geometric interpolation needs positives")
    t = (math.log(node) - math.log(node_a)) \
        / (math.log(node_b) - math.log(node_a))
    return math.exp(math.log(value_a)
                    + t * (math.log(value_b) - math.log(value_a)))


def projected_entry(node_nm: float) -> RoadmapEntry:
    """A roadmap entry for any node, interpolated or extrapolated."""
    if node_nm <= 0:
        raise TechnologyError("node must be positive")
    if node_nm in ROADMAP:
        return ROADMAP[node_nm]
    larger, smaller = _bracket(node_nm)
    a, b = ROADMAP[larger], ROADMAP[smaller]
    nearest = a if abs(node_nm - larger) <= abs(node_nm - smaller) else b

    def interp(field: str) -> float:
        return _geometric(getattr(a, field), getattr(b, field),
                          larger, smaller, node_nm)

    floor = ROADMAP[nodes()[-1]]
    vdd = max(interp("vdd"), floor.vdd) if node_nm < nodes()[-1] \
        else interp("vdd")
    vint = max(interp("vint"), floor.vint) if node_nm < nodes()[-1] \
        else interp("vint")
    vbl = max(interp("vbl"), floor.vbl) if node_nm < nodes()[-1] \
        else interp("vbl")
    vpp = max(interp("vpp"), floor.vpp) if node_nm < nodes()[-1] \
        else interp("vpp")
    vint = min(vint, vdd)
    vbl = min(vbl, vint)

    year = int(round(a.year + (b.year - a.year)
                     * (math.log(node_nm) - math.log(larger))
                     / (math.log(smaller) - math.log(larger))))
    return RoadmapEntry(
        node_nm=node_nm,
        year=year,
        interface=nearest.interface,
        datarate=nearest.datarate,
        density_bits=nearest.density_bits,
        vdd=round(vdd, 3),
        vint=round(vint, 3),
        vbl=round(vbl, 3),
        vpp=round(vpp, 3),
        trc=interp("trc"),
    )


def build_projected_device(node_nm: float, io_width: int = 16,
                           **overrides):
    """Build a device at an arbitrary node via the projected roadmap.

    For nodes present in the roadmap this is exactly
    :func:`repro.devices.build_device`; in between (or beyond) the
    projected entry is registered temporarily so the whole builder
    stack — technology scaling, cell architecture staircase, voltage
    derivation — works unchanged.
    """
    from ..devices.builder import build_device

    if node_nm in ROADMAP:
        return build_device(node_nm, io_width=io_width, **overrides)
    entry = projected_entry(node_nm)
    ROADMAP[node_nm] = entry
    try:
        return build_device(node_nm, io_width=io_width, **overrides)
    finally:
        del ROADMAP[node_nm]
