"""The DRAM generation roadmap (paper §IV.C, Figures 11 and 12).

One entry per technology node from 170 nm (the year-2000 SDR generation)
to 16 nm (the 2018 DDR5 forecast).  Each entry fixes the mainstream
interface at the node's peak-usage time, the per-pin data rate at the high
end of typically available devices, the density that keeps the die between
roughly 40 and 60 mm², the four voltages (ITRS-guided; the flattening of
the voltage curves is the paper's headline result) and the row timings.

The paper's interface assumptions: the data rate per pin doubles at each
interface transition while the maximum core frequency stays constant, so
the prefetch doubles (SDR 1 → DDR 2 → DDR2 4 → DDR3 8 → DDR4 16 →
DDR5 32).

Generator efficiencies follow the supply style: Vint and Vbl come from
linear regulators (efficiency = V_rail / Vdd, or direct connection at the
lowest supplies), Vpp from a charge pump (ideal doubler efficiency
V_pp / 2·Vdd times a 0.8 implementation factor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import TechnologyError

#: Prefetch depth per interface family (paper §IV.C assumption).
PREFETCH: Dict[str, int] = {
    "SDR": 1,
    "DDR": 2,
    "DDR2": 4,
    "DDR3": 8,
    "DDR4": 16,
    "DDR5": 32,
}

#: Peripheral-logic complexity relative to SDR.  The paper: peripheral
#: logic "becomes more complex in more advanced DRAM generations"; this
#: factor scales the fitted gate counts of the logic blocks and drives the
#: sensitivity shift of Table III.
COMPLEXITY: Dict[str, float] = {
    "SDR": 1.0,
    "DDR": 1.8,
    "DDR2": 3.0,
    "DDR3": 4.0,
    "DDR4": 6.5,
    "DDR5": 10.0,
}

#: Interface families in roadmap order.
INTERFACE_ORDER: Tuple[str, ...] = ("SDR", "DDR", "DDR2", "DDR3", "DDR4",
                                    "DDR5")


@dataclass(frozen=True)
class RoadmapEntry:
    """One generation of the commodity DRAM roadmap."""

    node_nm: float
    """Feature size (nm)."""
    year: int
    """Approximate year of peak usage."""
    interface: str
    """Mainstream interface family at peak usage."""
    datarate: float
    """Per-pin data rate at the high end of available devices (bit/s)."""
    density_bits: int
    """Mainstream monolithic density (bits)."""
    vdd: float
    """External supply voltage (V)."""
    vint: float
    """Internal logic voltage (V)."""
    vbl: float
    """Bitline voltage (V)."""
    vpp: float
    """Wordline boost voltage (V)."""
    trc: float
    """Row cycle time (s)."""

    @property
    def prefetch(self) -> int:
        """Prefetch depth of the interface family."""
        return PREFETCH[self.interface]

    @property
    def complexity(self) -> float:
        """Peripheral-logic complexity factor relative to SDR."""
        return COMPLEXITY[self.interface]

    @property
    def f_ctrlclock(self) -> float:
        """Control clock: the interface clock (Hz)."""
        if self.interface == "SDR":
            return self.datarate
        return self.datarate / 2.0

    @property
    def f_dataclock(self) -> float:
        """Data clock (Hz); data toggles on both edges for DDR families."""
        return self.f_ctrlclock

    @property
    def core_frequency(self) -> float:
        """Internal column-access rate at full bandwidth (Hz)."""
        return self.datarate / self.prefetch

    @property
    def eff_vint(self) -> float:
        """Vint generator efficiency (linear regulator or direct)."""
        ratio = self.vint / self.vdd
        return 1.0 if ratio > 0.97 else ratio

    @property
    def eff_vbl(self) -> float:
        """Vbl generator efficiency (linear regulator from Vdd)."""
        return self.vbl / self.vdd

    @property
    def eff_vpp(self) -> float:
        """Vpp pump efficiency: ideal doubler × 0.8 implementation factor."""
        return 0.8 * self.vpp / (2.0 * self.vdd)

    @property
    def trrd(self) -> float:
        """Activate-to-activate (different banks) delay (s)."""
        return self.trc / 8.0

    @property
    def tfaw(self) -> float:
        """Four-activate window (s)."""
        return self.trc * 0.8

    @property
    def banks(self) -> int:
        """Bank count typical of the interface family and density."""
        if self.interface in ("SDR", "DDR"):
            return 4
        if self.interface == "DDR2":
            return 8 if self.density_bits >= (1 << 30) else 4
        if self.interface == "DDR3":
            return 8
        if self.interface == "DDR4":
            return 16
        return 32


_MBIT = 1 << 20
_GBIT = 1 << 30

#: The roadmap, 170 nm (2000) to 16 nm (2018 forecast).  Average feature
#: shrink between generations is ≈16 % (paper §III.C).
_ENTRIES: Tuple[RoadmapEntry, ...] = (
    RoadmapEntry(170, 2000, "SDR", 166e6, 128 * _MBIT, 3.30, 2.90, 2.00,
                 3.80, 70e-9),
    RoadmapEntry(140, 2002, "DDR", 333e6, 256 * _MBIT, 2.50, 2.30, 1.80,
                 3.50, 65e-9),
    RoadmapEntry(110, 2004, "DDR", 400e6, 512 * _MBIT, 2.50, 2.20, 1.60,
                 3.30, 60e-9),
    RoadmapEntry(90, 2005, "DDR2", 667e6, 512 * _MBIT, 1.80, 1.70, 1.50,
                 3.10, 57e-9),
    RoadmapEntry(75, 2007, "DDR2", 800e6, 1 * _GBIT, 1.80, 1.65, 1.35,
                 3.00, 54e-9),
    RoadmapEntry(65, 2008, "DDR3", 1066e6, 1 * _GBIT, 1.50, 1.45, 1.25,
                 2.90, 52e-9),
    RoadmapEntry(55, 2009, "DDR3", 1600e6, 2 * _GBIT, 1.50, 1.40, 1.15,
                 2.80, 50e-9),
    RoadmapEntry(44, 2010, "DDR3", 1866e6, 4 * _GBIT, 1.50, 1.35, 1.10,
                 2.70, 48e-9),
    RoadmapEntry(36, 2012, "DDR4", 2667e6, 4 * _GBIT, 1.35, 1.25, 1.05,
                 2.70, 47e-9),
    RoadmapEntry(31, 2013, "DDR4", 3200e6, 8 * _GBIT, 1.20, 1.15, 1.00,
                 2.60, 46e-9),
    RoadmapEntry(25, 2015, "DDR4", 3200e6, 8 * _GBIT, 1.20, 1.10, 0.95,
                 2.60, 45e-9),
    RoadmapEntry(21, 2016, "DDR5", 4800e6, 16 * _GBIT, 1.10, 1.05, 0.90,
                 2.50, 45e-9),
    RoadmapEntry(18, 2017, "DDR5", 6400e6, 16 * _GBIT, 1.10, 1.00, 0.90,
                 2.50, 44e-9),
    RoadmapEntry(16, 2018, "DDR5", 6400e6, 16 * _GBIT, 1.05, 1.00, 0.85,
                 2.40, 44e-9),
)

#: Node (nm) → roadmap entry.
ROADMAP: Dict[float, RoadmapEntry] = {
    entry.node_nm: entry for entry in _ENTRIES
}


def nodes() -> Tuple[float, ...]:
    """All roadmap nodes (nm), large to small."""
    return tuple(entry.node_nm for entry in _ENTRIES)


def roadmap_entry(node_nm: float) -> RoadmapEntry:
    """The roadmap entry of one node."""
    try:
        return ROADMAP[node_nm]
    except KeyError:
        known = ", ".join(f"{n:g}" for n in nodes())
        raise TechnologyError(
            f"no roadmap entry for {node_nm} nm (known nodes: {known})"
        ) from None
