"""Technology-parameter scaling across nodes (paper §III.C, Figures 5-7).

The 39 technology parameters are anchored at a calibrated 55 nm baseline
(the node of the paper's main DDR3 example) and scaled to other nodes with
per-parameter power laws: ``value(node) = baseline × (node / 55 nm)^e``.
In general technology parameters shrink more slowly than the feature size
(exponent < 1); the solid ``f-shrink`` line of the paper's figures is the
exponent-1 reference.

Disruptive transitions (Table II) that change a capacitive load
differently from a smooth shrink are expressed as discrete multiplier
steps: the introduction of dual gate oxides at 90 nm, Cu metallization at
44 nm, and high-k gate dielectrics at 31 nm.

Beyond the Table I parameters, three auxiliary quantities scale the same
way and are used by the device builder: the widths of the two on-pitch
stripes and the average width of miscellaneous logic devices (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..description import TechnologyParameters
from ..errors import TechnologyError

#: The calibration node (nm): a typical 2009 DDR3 technology.
BASELINE_NODE_NM = 55.0

#: Reference node (nm) for shrink-factor plots (Figures 5-7 span the full
#: roadmap starting at the 170 nm generation).
REFERENCE_NODE_NM = 170.0

#: The calibrated 55 nm parameter set (SI units).
BASELINE_55NM = TechnologyParameters(
    tox_logic=4.0e-9,
    tox_hv=7.0e-9,
    tox_cell=6.0e-9,
    lmin_logic=90e-9,
    cj_logic=8.0e-10,
    lmin_hv=150e-9,
    cj_hv=1.0e-9,
    l_cell=100e-9,
    w_cell=55e-9,
    c_bitline=100e-15,
    c_cell=25e-15,
    share_bl_wl=0.15,
    bits_per_csl=16,
    c_wire_mwl=2.5e-10,
    predecode_mwl=8.0,
    w_mwl_dec_n=0.6e-6,
    w_mwl_dec_p=0.4e-6,
    mwl_dec_activity=0.5,
    w_wl_ctrl_load_n=2.0e-6,
    w_wl_ctrl_load_p=4.0e-6,
    w_swd_n=0.3e-6,
    w_swd_p=0.4e-6,
    w_swd_restore=0.2e-6,
    c_wire_swl=2.0e-10,
    w_sa_n=0.5e-6,
    w_sa_p=0.4e-6,
    l_sa_n=0.10e-6,
    l_sa_p=0.10e-6,
    w_eq=0.3e-6,
    l_eq=0.15e-6,
    w_bitswitch=0.4e-6,
    l_bitswitch=0.10e-6,
    w_blmux=0.4e-6,
    l_blmux=0.15e-6,
    w_nset=10e-6,
    l_nset=0.20e-6,
    w_pset=10e-6,
    l_pset=0.20e-6,
    c_wire_signal=2.0e-10,
)


@dataclass(frozen=True)
class Step:
    """A discrete multiplier tied to a disruptive transition."""

    side: str
    """``'le'`` — applies at and below ``node_nm``; ``'ge'`` — at and
    above."""
    node_nm: float
    """Threshold node (nm)."""
    multiplier: float
    """Factor applied to the smoothly scaled value."""

    def applies(self, node_nm: float) -> bool:
        """True when the step is active at ``node_nm``."""
        if self.side == "le":
            return node_nm <= self.node_nm
        if self.side == "ge":
            return node_nm >= self.node_nm
        raise TechnologyError(f"unknown step side {self.side!r}")


@dataclass(frozen=True)
class ScalingLaw:
    """Power-law scaling of one parameter, with disruptive steps."""

    exponent: float
    """Shrink exponent e: value ∝ (node / baseline)^e."""
    figure: str
    """Which paper figure plots this parameter: fig5, fig6 or fig7."""
    steps: Tuple[Step, ...] = field(default_factory=tuple)

    def factor(self, node_nm: float,
               reference_nm: float = BASELINE_NODE_NM) -> float:
        """Scaling factor of the parameter at ``node_nm`` vs reference."""
        if node_nm <= 0 or reference_nm <= 0:
            raise TechnologyError("nodes must be positive")
        value = (node_nm / reference_nm) ** self.exponent
        for step in self.steps:
            if step.applies(node_nm) and not step.applies(reference_nm):
                value *= step.multiplier
            elif step.applies(reference_nm) and not step.applies(node_nm):
                value /= step.multiplier
        return value


_CU_STEP = Step("le", 44.0, 0.85)
_DUAL_OXIDE_STEP = Step("ge", 110.0, 1.30)
_HIGH_K_STEP = Step("le", 31.0, 0.90)

#: Scaling law per parameter.  Keys cover all 39 Table I parameters plus
#: the three auxiliary Figure 6 quantities used by the device builder.
SCALING_LAWS: Dict[str, ScalingLaw] = {
    # Figure 5: transistor-technology parameters.
    "tox_logic": ScalingLaw(0.5, "fig5", (_DUAL_OXIDE_STEP, _HIGH_K_STEP)),
    "tox_hv": ScalingLaw(0.3, "fig5"),
    "tox_cell": ScalingLaw(0.4, "fig5"),
    "lmin_logic": ScalingLaw(0.9, "fig5"),
    "cj_logic": ScalingLaw(0.5, "fig5"),
    "lmin_hv": ScalingLaw(0.8, "fig5"),
    "cj_hv": ScalingLaw(0.5, "fig5"),
    "l_cell": ScalingLaw(0.7, "fig5"),
    "w_cell": ScalingLaw(1.0, "fig5"),
    # Figure 6: capacitances, stripe widths, miscellaneous logic widths.
    "c_bitline": ScalingLaw(0.45, "fig6"),
    "c_cell": ScalingLaw(0.1, "fig6"),
    "share_bl_wl": ScalingLaw(0.0, "fig6"),
    "bits_per_csl": ScalingLaw(0.0, "fig6"),
    "c_wire_mwl": ScalingLaw(0.2, "fig6", (_CU_STEP,)),
    "c_wire_swl": ScalingLaw(0.15, "fig6"),
    "c_wire_signal": ScalingLaw(0.2, "fig6", (_CU_STEP,)),
    "predecode_mwl": ScalingLaw(0.0, "fig6"),
    "mwl_dec_activity": ScalingLaw(0.0, "fig6"),
    "width_sa_stripe": ScalingLaw(0.6, "fig6"),
    "width_swd_stripe": ScalingLaw(0.6, "fig6"),
    "w_logic_misc": ScalingLaw(0.8, "fig6"),
    # Figure 7: core (on-pitch) device dimensions.
    "w_mwl_dec_n": ScalingLaw(0.9, "fig7"),
    "w_mwl_dec_p": ScalingLaw(0.9, "fig7"),
    "w_wl_ctrl_load_n": ScalingLaw(0.9, "fig7"),
    "w_wl_ctrl_load_p": ScalingLaw(0.9, "fig7"),
    "w_swd_n": ScalingLaw(0.9, "fig7"),
    "w_swd_p": ScalingLaw(0.9, "fig7"),
    "w_swd_restore": ScalingLaw(0.9, "fig7"),
    "w_sa_n": ScalingLaw(0.9, "fig7"),
    "w_sa_p": ScalingLaw(0.9, "fig7"),
    "l_sa_n": ScalingLaw(0.9, "fig7"),
    "l_sa_p": ScalingLaw(0.9, "fig7"),
    "w_eq": ScalingLaw(0.9, "fig7"),
    "l_eq": ScalingLaw(0.9, "fig7"),
    "w_bitswitch": ScalingLaw(0.9, "fig7"),
    "l_bitswitch": ScalingLaw(0.9, "fig7"),
    "w_blmux": ScalingLaw(0.9, "fig7"),
    "l_blmux": ScalingLaw(0.9, "fig7"),
    "w_nset": ScalingLaw(0.9, "fig7"),
    "l_nset": ScalingLaw(0.9, "fig7"),
    "w_pset": ScalingLaw(0.9, "fig7"),
    "l_pset": ScalingLaw(0.9, "fig7"),
}

#: Baselines of the auxiliary (non-Table-I) scaled quantities at 55 nm.
AUXILIARY_BASELINES_55NM: Dict[str, float] = {
    "width_sa_stripe": 20e-6,
    "width_swd_stripe": 8e-6,
    "w_logic_misc": 0.5e-6,
}


def feature_shrink(node_nm: float,
                   reference_nm: float = REFERENCE_NODE_NM) -> float:
    """The f-shrink reference line: feature size relative to reference."""
    if node_nm <= 0 or reference_nm <= 0:
        raise TechnologyError("nodes must be positive")
    return node_nm / reference_nm


def shrink_factor(parameter: str, node_nm: float,
                  reference_nm: float = REFERENCE_NODE_NM) -> float:
    """Scaling factor of a parameter at ``node_nm`` relative to reference.

    This is what Figures 5-7 plot (reference = the 170 nm generation).
    """
    try:
        law = SCALING_LAWS[parameter]
    except KeyError:
        raise TechnologyError(f"no scaling law for {parameter!r}") from None
    return law.factor(node_nm, reference_nm)


def technology_for_node(node_nm: float) -> TechnologyParameters:
    """The full 39-parameter technology set at ``node_nm``."""
    values: Dict[str, float] = {}
    for name, baseline in BASELINE_55NM.items():
        law = SCALING_LAWS[name]
        scaled = baseline * law.factor(node_nm, BASELINE_NODE_NM)
        values[name] = scaled
    values["bits_per_csl"] = int(round(values["bits_per_csl"]))
    return TechnologyParameters(**values)


def auxiliary_for_node(node_nm: float) -> Dict[str, float]:
    """Stripe widths and misc logic width at ``node_nm`` (Figure 6)."""
    return {
        name: baseline * SCALING_LAWS[name].factor(node_nm,
                                                   BASELINE_NODE_NM)
        for name, baseline in AUXILIARY_BASELINES_55NM.items()
    }
