"""Disruptive DRAM technology changes (paper Table II).

While most parameters shrink smoothly, nearly every technology transition
carried one disruptive change.  This module encodes Table II verbatim and
maps each change to the model quantity it affects, so the scaling engine
and the device builder can apply the discrete adjustments at the right
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class DisruptiveChange:
    """One row of Table II."""

    from_node_nm: float
    """Node (nm) before the transition (the upper end of a range)."""
    to_node_nm: float
    """Node (nm) after the transition."""
    change: str
    """The disruptive change."""
    background: str
    """Why the change happened (Table II background column)."""
    model_effect: str
    """How this reproduction's model reflects the change."""
    affected_parameter: Optional[str] = None
    """Model parameter carrying a discrete step, if any."""


DISRUPTIVE_CHANGES: Tuple[DisruptiveChange, ...] = (
    DisruptiveChange(
        250, 110,
        "Stitched wordline to segmented wordline",
        "Minimum feature size of aluminum wiring no longer feasible; the "
        "time when different vendors did this transition has a large "
        "spread.",
        "All modeled generations use the hierarchical (segmented) wordline "
        "of Figures 1 and 3; stitched-wordline devices predate the "
        "roadmap's 170 nm start.",
    ),
    DisruptiveChange(
        110, 90,
        "Increase in number of cells per bitline and/or local wordline",
        "Leads to smaller die size; better control of technology and "
        "design make the step possible.",
        "Devices at nodes above 90 nm use 256 cells per bitline and local "
        "wordline; 90 nm and below use 512.",
        affected_parameter="bits_per_bitline",
    ),
    DisruptiveChange(
        110, 90,
        "Introduction of dual gate oxide",
        "Allows lower voltage operation and better performance of "
        "standard logic transistors.",
        "The logic gate-oxide scaling law carries a 1.3× step above "
        "110 nm (single thick oxide before the transition).",
        affected_parameter="tox_logic",
    ),
    DisruptiveChange(
        90, 75,
        "Introduction of p+ gate doping of PMOS transistors",
        "Buried-channel PFET performance not sufficient for standard "
        "logic of high-data-rate DRAMs.",
        "Subsumed in the logic-transistor scaling (performance, not "
        "capacitance).",
    ),
    DisruptiveChange(
        90, 75,
        "Introduction of 3-dimensional access transistor",
        "Planar device length got too short for threshold-voltage "
        "control.",
        "The cell-access-transistor length scales with exponent 0.7 — "
        "much slower than feature size — reflecting the recessed channel.",
        affected_parameter="l_cell",
    ),
    DisruptiveChange(
        75, 65,
        "Cell architecture 8f² folded bitline to 6f² open bitline",
        "Leads to smaller die size; better control of technology and "
        "design make the step possible.",
        "Devices at 65 nm and below use the open-bitline architecture "
        "(wordline pitch 3F); larger nodes are folded (8F²).",
        affected_parameter="bitline_arch",
    ),
    DisruptiveChange(
        55, 44,
        "Cu metallization",
        "Lower resistance and/or capacitance in wiring for improved "
        "performance and/or power reduction.",
        "Specific wire capacitances carry a 0.85× step at and below "
        "44 nm.",
        affected_parameter="c_wire_signal",
    ),
    DisruptiveChange(
        40, 36,
        "Cell architecture 6f² to 4f² with vertical access transistor",
        "Leads to smaller die size; better control of technology and "
        "design expected to make the step possible (ITRS forecast).",
        "Devices at 36 nm and below use a 4F² open-bitline cell "
        "(wordline pitch 2F).",
        affected_parameter="cell_size_factor",
    ),
    DisruptiveChange(
        36, 31,
        "High-k dielectric gate oxide",
        "Better subthreshold behavior and reduced gate leakage (ITRS "
        "forecast).",
        "The logic gate-oxide scaling law carries a 0.9× EOT step at and "
        "below 31 nm.",
        affected_parameter="tox_logic",
    ),
)


def changes_between(from_node_nm: float,
                    to_node_nm: float) -> Tuple[DisruptiveChange, ...]:
    """Disruptive changes crossed when shrinking between two nodes."""
    low = min(from_node_nm, to_node_nm)
    high = max(from_node_nm, to_node_nm)
    crossed = []
    for change in DISRUPTIVE_CHANGES:
        if high >= change.from_node_nm and low <= change.to_node_nm:
            crossed.append(change)
    return tuple(crossed)


def cell_architecture_for_node(node_nm: float) -> Tuple[str, float, float]:
    """(architecture, wordline pitch in F, bitline pitch in F) at a node.

    Implements the Table II cell-architecture staircase:
    8F² folded above 65 nm, 6F² open down to 40 nm, 4F² open below.
    """
    if node_nm > 65:
        return "folded", 2.0, 2.0
    if node_nm > 40:
        return "open", 3.0, 2.0
    return "open", 2.0, 2.0


def cells_per_line_for_node(node_nm: float) -> int:
    """Cells per bitline / local wordline at a node.

    Table II documents the 256 → 512 step at the 110 → 90 nm transition;
    the further step to 1024 accompanies the 4F² architecture below 40 nm
    (it keeps the sense-amplifier stripe share of the die bounded as the
    cell keeps shrinking).
    """
    if node_nm > 90:
        return 256
    if node_nm > 40:
        return 512
    return 1024
