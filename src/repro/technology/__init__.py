"""Technology roadmap and scaling assumptions (paper §III.C, Figures 5-7,
11-12, Table II).

* :mod:`repro.technology.roadmap` — per-node voltages, data rates, row
  timings, densities and interface assignments (the inputs behind
  Figures 11 and 12);
* :mod:`repro.technology.scaling` — the 39 technology parameters at any
  node, anchored at a calibrated 55 nm baseline and scaled with the
  shrink curves of Figures 5-7;
* :mod:`repro.technology.disruptions` — the disruptive technology
  transitions of Table II and their discrete model adjustments.
"""

from .roadmap import (
    ROADMAP,
    RoadmapEntry,
    nodes,
    roadmap_entry,
)
from .scaling import (
    AUXILIARY_BASELINES_55NM,
    BASELINE_55NM,
    BASELINE_NODE_NM,
    ScalingLaw,
    SCALING_LAWS,
    auxiliary_for_node,
    feature_shrink,
    shrink_factor,
    technology_for_node,
)
from .projection import build_projected_device, projected_entry
from .disruptions import (
    DISRUPTIVE_CHANGES,
    DisruptiveChange,
    cell_architecture_for_node,
    cells_per_line_for_node,
    changes_between,
)

__all__ = [
    "ROADMAP",
    "RoadmapEntry",
    "nodes",
    "roadmap_entry",
    "AUXILIARY_BASELINES_55NM",
    "BASELINE_55NM",
    "BASELINE_NODE_NM",
    "ScalingLaw",
    "SCALING_LAWS",
    "auxiliary_for_node",
    "feature_shrink",
    "shrink_factor",
    "technology_for_node",
    "build_projected_device",
    "projected_entry",
    "DISRUPTIVE_CHANGES",
    "DisruptiveChange",
    "cell_architecture_for_node",
    "cells_per_line_for_node",
    "changes_between",
]
