"""Reconstructed 1 Gb DDR2 datasheet IDD values (paper reference [22]).

Center values are era-typical datasheet maxima (mA at Vdd = 1.8 V) for
1 Gb DDR2 parts of the 2007-2009 market; per-vendor points are derived
with the spread factors of :data:`repro.datasheets.idd.VENDORS`.  The
comparison points mirror the x-axis of Figure 8: Idd0, Idd4R and Idd4W at
400/533/667/800 Mbit/s/pin for x4, x8 and x16 parts.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.idd import IddMeasure
from .idd import DatasheetPoint, build_vendor_points

_GBIT = 1 << 30

#: Era-typical center values (mA): (measure, datarate, io_width) → mA.
DDR2_1G_CENTERS: Dict[Tuple[IddMeasure, float, int], float] = {
    # Idd0 — row cycling; grows mildly with speed grade.  Narrow parts
    # open a 1 KB page instead of the x16's 2 KB, so they sit lower.
    (IddMeasure.IDD0, 400e6, 4): 66.0,
    (IddMeasure.IDD0, 533e6, 4): 71.0,
    (IddMeasure.IDD0, 667e6, 4): 76.0,
    (IddMeasure.IDD0, 800e6, 4): 82.0,
    (IddMeasure.IDD0, 400e6, 8): 66.0,
    (IddMeasure.IDD0, 533e6, 8): 71.0,
    (IddMeasure.IDD0, 667e6, 8): 76.0,
    (IddMeasure.IDD0, 800e6, 8): 82.0,
    (IddMeasure.IDD0, 400e6, 16): 80.0,
    (IddMeasure.IDD0, 533e6, 16): 85.0,
    (IddMeasure.IDD0, 667e6, 16): 92.0,
    (IddMeasure.IDD0, 800e6, 16): 100.0,
    # Idd4R — gapless reads; strong growth with rate and width.
    (IddMeasure.IDD4R, 400e6, 4): 55.0,
    (IddMeasure.IDD4R, 533e6, 4): 67.0,
    (IddMeasure.IDD4R, 667e6, 4): 80.0,
    (IddMeasure.IDD4R, 800e6, 4): 95.0,
    (IddMeasure.IDD4R, 400e6, 8): 62.0,
    (IddMeasure.IDD4R, 533e6, 8): 75.0,
    (IddMeasure.IDD4R, 667e6, 8): 88.0,
    (IddMeasure.IDD4R, 800e6, 8): 105.0,
    (IddMeasure.IDD4R, 400e6, 16): 80.0,
    (IddMeasure.IDD4R, 533e6, 16): 100.0,
    (IddMeasure.IDD4R, 667e6, 16): 125.0,
    (IddMeasure.IDD4R, 800e6, 16): 155.0,
    # Idd4W — gapless writes; slightly above reads for most vendors.
    (IddMeasure.IDD4W, 400e6, 4): 60.0,
    (IddMeasure.IDD4W, 533e6, 4): 72.0,
    (IddMeasure.IDD4W, 667e6, 4): 85.0,
    (IddMeasure.IDD4W, 800e6, 4): 100.0,
    (IddMeasure.IDD4W, 400e6, 8): 67.0,
    (IddMeasure.IDD4W, 533e6, 8): 80.0,
    (IddMeasure.IDD4W, 667e6, 8): 93.0,
    (IddMeasure.IDD4W, 800e6, 8): 110.0,
    (IddMeasure.IDD4W, 400e6, 16): 85.0,
    (IddMeasure.IDD4W, 533e6, 16): 105.0,
    (IddMeasure.IDD4W, 667e6, 16): 130.0,
    (IddMeasure.IDD4W, 800e6, 16): 160.0,
}

#: All reconstructed per-vendor 1 Gb DDR2 points.
DDR2_1G_POINTS: Tuple[DatasheetPoint, ...] = build_vendor_points(
    "DDR2", _GBIT, DDR2_1G_CENTERS, "ddr2_part"
)


def ddr2_points(measure: IddMeasure = None, datarate: float = None,
                io_width: int = None) -> Tuple[DatasheetPoint, ...]:
    """Filter the DDR2 datasheet points."""
    selected = []
    for point in DDR2_1G_POINTS:
        if measure is not None and point.measure != IddMeasure(measure):
            continue
        if datarate is not None and point.datarate != datarate:
            continue
        if io_width is not None and point.io_width != io_width:
            continue
        selected.append(point)
    return tuple(selected)
