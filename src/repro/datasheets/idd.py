"""Datasheet data structures and the vendor list of references [22]/[23]."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core.idd import IddMeasure

#: The vendors whose 1 Gb parts the paper compares against, with the part
#: families named in references [22] and [23], and the spread factor used
#: to reconstruct per-vendor values around the era-typical center.
VENDORS: Dict[str, Dict[str, object]] = {
    "Samsung": {
        "ddr2_part": "K4T1G044QQ/084QQ/164QQ",
        "ddr3_part": "K4B1G0446D/0846D/1646D",
        "factor": 0.90,
    },
    "Hynix": {
        "ddr2_part": "H5PS1G63EFR / HY5PS1G1631CFP",
        "ddr3_part": "H5TQ1G63AFP",
        "factor": 1.00,
    },
    "Micron": {
        "ddr2_part": "MT47H64M16",
        "ddr3_part": "MT41J64M16",
        "factor": 1.12,
    },
    "Elpida": {
        "ddr2_part": "EDE1116ACBG",
        "ddr3_part": "EDJ1116BBSE",
        "factor": 0.95,
    },
    "Qimonda": {
        "ddr2_part": "HYI18T1G160C2",
        "ddr3_part": "IDSH1G-04A1F1C",
        "factor": 1.06,
    },
}


@dataclass(frozen=True)
class DatasheetPoint:
    """One datasheet IDD value of one vendor part."""

    vendor: str
    part: str
    interface: str
    density_bits: int
    io_width: int
    datarate: float
    """Per-pin data rate (bit/s)."""
    measure: IddMeasure
    current_ma: float
    """Datasheet maximum current (mA)."""

    @property
    def label(self) -> str:
        """The paper's x-axis label style, e.g. ``Idd0 533 x4``."""
        mbps = self.datarate / 1e6
        return f"{self.measure.value} {mbps:.0f} x{self.io_width}"


@dataclass(frozen=True)
class ComparisonPoint:
    """One x-axis point of Figure 8/9: an (IDD, datarate, width) triple."""

    interface: str
    measure: IddMeasure
    datarate: float
    io_width: int

    @property
    def label(self) -> str:
        """The paper's x-axis label style, e.g. ``Idd0 533 x4``."""
        mbps = self.datarate / 1e6
        return f"{self.measure.value} {mbps:.0f} x{self.io_width}"


def spread(points: Iterable[DatasheetPoint]) -> Tuple[float, float, float]:
    """(min, mean, max) current in mA over a set of datasheet points."""
    values: List[float] = [point.current_ma for point in points]
    if not values:
        raise ValueError("no datasheet points given")
    return min(values), sum(values) / len(values), max(values)


def build_vendor_points(interface: str, density_bits: int,
                        centers: Dict[Tuple[IddMeasure, float, int], float],
                        part_key: str) -> Tuple[DatasheetPoint, ...]:
    """Expand era-typical center values into per-vendor points."""
    points: List[DatasheetPoint] = []
    for (measure, datarate, io_width), center in centers.items():
        for vendor, info in VENDORS.items():
            points.append(DatasheetPoint(
                vendor=vendor,
                part=str(info[part_key]),
                interface=interface,
                density_bits=density_bits,
                io_width=io_width,
                datarate=datarate,
                measure=measure,
                current_ma=round(center * float(info["factor"]), 1),
            ))
    return tuple(points)
