"""Vendor datasheet IDD database (paper references [22], [23]).

The paper verifies the model against 1 Gb DDR2 and 1 Gb DDR3 datasheets
from Samsung, Hynix, Micron, Elpida and Qimonda.  Those documents are not
redistributable, so this package embeds a *reconstruction*: typical
2008-2010-era datasheet maxima per vendor, derived from the published
center values of the era with per-vendor spread factors.  The spread is
deliberately wide — the paper itself notes "the data sheet values show a
quite large spread" due to different technologies and design styles.

What matters for the Figure 8/9 reproduction is the *shape*: ordering
across IDD type, data rate and I/O width, and DDR3 sitting below DDR2 —
not exact milliamps.
"""

from .idd import ComparisonPoint, DatasheetPoint, VENDORS
from .ddr2 import DDR2_1G_POINTS, ddr2_points
from .ddr3 import DDR3_1G_POINTS, ddr3_points

__all__ = [
    "ComparisonPoint",
    "DatasheetPoint",
    "VENDORS",
    "DDR2_1G_POINTS",
    "ddr2_points",
    "DDR3_1G_POINTS",
    "ddr3_points",
]
