"""Reconstructed 1 Gb DDR3 datasheet IDD values (paper reference [23]).

Center values are era-typical datasheet maxima (mA at Vdd = 1.5 V) for
1 Gb DDR3 parts of the 2009-2010 market.  The comparison points mirror
the x-axis of Figure 9: Idd0, Idd4R and Idd4W at 800/1066/1333/1600
Mbit/s/pin for x4, x8 and x16 parts.  DDR3 currents sit below DDR2 at
equal rate thanks to the 1.5 V supply and the newer technology.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.idd import IddMeasure
from .idd import DatasheetPoint, build_vendor_points

_GBIT = 1 << 30

#: Era-typical center values (mA): (measure, datarate, io_width) → mA.
DDR3_1G_CENTERS: Dict[Tuple[IddMeasure, float, int], float] = {
    # Idd0 — row cycling.  Narrow parts open a 1 KB page instead of the
    # x16's 2 KB, so they sit lower.
    (IddMeasure.IDD0, 800e6, 4): 50.0,
    (IddMeasure.IDD0, 1066e6, 4): 54.0,
    (IddMeasure.IDD0, 1333e6, 4): 58.0,
    (IddMeasure.IDD0, 1600e6, 4): 63.0,
    (IddMeasure.IDD0, 800e6, 8): 50.0,
    (IddMeasure.IDD0, 1066e6, 8): 54.0,
    (IddMeasure.IDD0, 1333e6, 8): 58.0,
    (IddMeasure.IDD0, 1600e6, 8): 63.0,
    (IddMeasure.IDD0, 800e6, 16): 65.0,
    (IddMeasure.IDD0, 1066e6, 16): 70.0,
    (IddMeasure.IDD0, 1333e6, 16): 77.0,
    (IddMeasure.IDD0, 1600e6, 16): 85.0,
    # Idd4R — gapless reads.
    (IddMeasure.IDD4R, 800e6, 4): 55.0,
    (IddMeasure.IDD4R, 1066e6, 4): 65.0,
    (IddMeasure.IDD4R, 1333e6, 4): 78.0,
    (IddMeasure.IDD4R, 1600e6, 4): 90.0,
    (IddMeasure.IDD4R, 800e6, 8): 65.0,
    (IddMeasure.IDD4R, 1066e6, 8): 78.0,
    (IddMeasure.IDD4R, 1333e6, 8): 92.0,
    (IddMeasure.IDD4R, 1600e6, 8): 108.0,
    (IddMeasure.IDD4R, 800e6, 16): 110.0,
    (IddMeasure.IDD4R, 1066e6, 16): 130.0,
    (IddMeasure.IDD4R, 1333e6, 16): 155.0,
    (IddMeasure.IDD4R, 1600e6, 16): 185.0,
    # Idd4W — gapless writes.
    (IddMeasure.IDD4W, 800e6, 4): 60.0,
    (IddMeasure.IDD4W, 1066e6, 4): 70.0,
    (IddMeasure.IDD4W, 1333e6, 4): 83.0,
    (IddMeasure.IDD4W, 1600e6, 4): 95.0,
    (IddMeasure.IDD4W, 800e6, 8): 70.0,
    (IddMeasure.IDD4W, 1066e6, 8): 83.0,
    (IddMeasure.IDD4W, 1333e6, 8): 97.0,
    (IddMeasure.IDD4W, 1600e6, 8): 113.0,
    (IddMeasure.IDD4W, 800e6, 16): 115.0,
    (IddMeasure.IDD4W, 1066e6, 16): 135.0,
    (IddMeasure.IDD4W, 1333e6, 16): 160.0,
    (IddMeasure.IDD4W, 1600e6, 16): 190.0,
}

#: All reconstructed per-vendor 1 Gb DDR3 points.
DDR3_1G_POINTS: Tuple[DatasheetPoint, ...] = build_vendor_points(
    "DDR3", _GBIT, DDR3_1G_CENTERS, "ddr3_part"
)


def ddr3_points(measure: IddMeasure = None, datarate: float = None,
                io_width: int = None) -> Tuple[DatasheetPoint, ...]:
    """Filter the DDR3 datasheet points."""
    selected = []
    for point in DDR3_1G_POINTS:
        if measure is not None and point.measure != IddMeasure(measure):
            continue
        if datarate is not None and point.datarate != datarate:
            continue
        if io_width is not None and point.io_width != io_width:
            continue
        selected.append(point)
    return tuple(selected)
