"""Workload generation for trace-based power studies.

The pattern engine answers "what does this steady-state loop cost"; the
workload package answers "what does this *access stream* cost": a greedy
open-page scheduler (:mod:`repro.workloads.scheduler`) turns logical
requests into timing-legal command traces, and the generators
(:mod:`repro.workloads.generators`) produce the canonical streams —
sequential streaming, random access with a row-hit-rate knob, and
utilization sweeps.
"""

from .scheduler import OpenPageScheduler, Request, schedule_frfcfs
from .generators import (
    copy_trace,
    pointer_chase_trace,
    random_trace,
    streaming_trace,
    utilization_trace,
)

__all__ = [
    "OpenPageScheduler",
    "Request",
    "schedule_frfcfs",
    "copy_trace",
    "pointer_chase_trace",
    "random_trace",
    "streaming_trace",
    "utilization_trace",
]
