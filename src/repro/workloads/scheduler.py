"""A greedy command scheduler with open- and closed-page policies.

Turns a stream of logical requests (bank, row, read/write) into a
timing-legal trace of :class:`~repro.core.trace.TraceCommand` — the
minimal memory-controller substrate needed to price access streams with
the trace engine.  The policy is open-page: a row stays open until a
request for a different row of the same bank arrives (or the trace is
finalised), and commands issue as early as the bank-state machine and the
shared data bus allow.

The scheduler respects every constraint the strict trace replay checks
(tRC, tRP, tRAS, tRCD, tRRD, tFAW, and data-bus occupancy), which the
property tests verify by replaying generated traces strictly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from ..core.trace import TraceCommand
from ..description import Command, DramDescription
from ..errors import ModelError


@dataclass(frozen=True)
class Request:
    """One logical memory request."""

    bank: int
    row: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.bank < 0 or self.row < 0:
            raise ModelError("bank and row must not be negative")


@dataclass
class _Bank:
    active_row: Optional[int] = None
    last_act: float = float("-inf")
    last_pre: float = float("-inf")
    last_read: float = float("-inf")
    write_data_end: float = float("-inf")


class OpenPageScheduler:
    """Greedy scheduler producing timing-legal open-page traces."""

    def __init__(self, device: DramDescription, policy: str = "open"):
        if policy not in ("open", "closed"):
            raise ModelError(
                f"policy must be 'open' or 'closed', got {policy!r}"
            )
        self.policy = policy
        self.device = device
        self.timing = device.timing
        spec = device.spec
        self._burst_time = spec.burst_length / spec.datarate
        self._banks: Dict[int, _Bank] = {}
        self._act_times: Deque[float] = deque(maxlen=4)
        self._last_act = float("-inf")
        self._last_group_act: Dict[int, float] = {}
        self._data_free = 0.0
        self._now = 0.0
        self._commands: List[TraceCommand] = []
        self.latencies: List[float] = []
        """Per-request service latency: arrival (= previous completion)
        to data burst completion (s)."""
        self._refresh_cursor = 0

    # ------------------------------------------------------------------
    def _bank(self, index: int) -> _Bank:
        if index >= self.device.spec.banks:
            raise ModelError(
                f"bank {index} outside the device's "
                f"{self.device.spec.banks} banks"
            )
        return self._banks.setdefault(index, _Bank())

    def _earliest_precharge(self, bank: _Bank, after: float) -> float:
        return max(after,
                   bank.last_act + self.timing.tras,
                   bank.last_read + self.timing.trtp,
                   bank.write_data_end + self.timing.twr)

    def _earliest_activate(self, bank: _Bank, after: float,
                           group: int = 0) -> float:
        time = max(after,
                   bank.last_act + self.timing.trc,
                   bank.last_pre + self.timing.trp,
                   self._last_act + self.timing.trrd,
                   self._last_group_act.get(group, float("-inf"))
                   + self.timing.trrd_l)
        if len(self._act_times) == 4:
            time = max(time, self._act_times[0] + self.timing.tfaw)
        return time

    def _issue(self, time: float, command: Command, bank_index: int,
               row: int = 0) -> float:
        time = max(time, self._now)
        self._commands.append(TraceCommand(time=time, command=command,
                                           bank=bank_index, row=row))
        self._now = time
        return time

    # ------------------------------------------------------------------
    def add(self, request: Request) -> None:
        """Schedule one request as early as the protocol allows."""
        arrival = self._now
        bank = self._bank(request.bank)
        if bank.active_row is not None and bank.active_row != request.row:
            pre_time = self._earliest_precharge(bank, self._now)
            self._issue(pre_time, Command.PRE, request.bank)
            bank.active_row = None
            bank.last_pre = pre_time
        if bank.active_row is None:
            group = self.device.spec.bank_group_of(request.bank)
            act_time = self._earliest_activate(bank, self._now, group)
            self._issue(act_time, Command.ACT, request.bank, request.row)
            bank.active_row = request.row
            bank.last_act = act_time
            self._act_times.append(act_time)
            self._last_act = act_time
            self._last_group_act[group] = act_time
        column_time = max(self._now, bank.last_act + self.timing.trcd,
                          self._data_free)
        command = Command.WR if request.is_write else Command.RD
        self._issue(column_time, command, request.bank, request.row)
        self._data_free = column_time + self._burst_time
        if request.is_write:
            bank.write_data_end = self._data_free
        else:
            bank.last_read = column_time
        self.latencies.append(self._data_free - arrival)
        if self.policy == "closed":
            # Auto-precharge: close the row right after the access.
            pre_time = self._earliest_precharge(bank, self._now)
            self._issue(pre_time, Command.PRE, request.bank)
            bank.active_row = None
            bank.last_pre = pre_time

    def extend(self, requests: Iterable[Request]) -> None:
        """Schedule many requests in order."""
        for request in requests:
            self.add(request)

    def refresh_bank(self, bank_index: int) -> None:
        """Refresh one bank: close it if open, cycle its row.

        A controller-visible auto-refresh is modeled as one row cycle on
        the bank (the per-command multi-row weighting of IDD5 is an
        energy statement; trace-level refresh issues explicit cycles).
        """
        bank = self._bank(bank_index)
        if bank.active_row is not None:
            pre_time = self._earliest_precharge(bank, self._now)
            self._issue(pre_time, Command.PRE, bank_index)
            bank.active_row = None
            bank.last_pre = pre_time
        group = self.device.spec.bank_group_of(bank_index)
        act_time = self._earliest_activate(bank, self._now, group)
        self._issue(act_time, Command.ACT, bank_index, 0)
        bank.last_act = act_time
        self._act_times.append(act_time)
        self._last_act = act_time
        self._last_group_act[group] = act_time
        pre_time = act_time + self.timing.tras
        self._issue(pre_time, Command.PRE, bank_index)
        bank.active_row = None
        bank.last_pre = pre_time

    def maybe_refresh(self, next_deadline: float) -> float:
        """Issue a round-robin bank refresh when its deadline passed.

        Returns the next refresh deadline.  Call with the running
        deadline between requests to keep a trace refresh-compliant.
        """
        if self._now < next_deadline:
            return next_deadline
        self.refresh_bank(self._refresh_cursor
                          % self.device.spec.banks)
        self._refresh_cursor += 1
        interval = (self.timing.tref_interval
                    / max(1, self.device.spec.banks))
        return next_deadline + interval

    def finalize(self) -> List[TraceCommand]:
        """Close all open banks and return the trace."""
        for index in sorted(self._banks):
            bank = self._banks[index]
            if bank.active_row is not None:
                pre_time = self._earliest_precharge(bank, self._now)
                self._issue(pre_time, Command.PRE, index)
                bank.active_row = None
                bank.last_pre = pre_time
        return list(self._commands)

    @property
    def elapsed(self) -> float:
        """Time of the last issued command (s)."""
        return self._now

    def open_row(self, bank_index: int) -> Optional[int]:
        """The currently open row of a bank (None when precharged)."""
        bank = self._banks.get(bank_index)
        return bank.active_row if bank else None


def schedule_frfcfs(device: DramDescription,
                    requests: Iterable[Request],
                    window: int = 8,
                    policy: str = "open") -> List[TraceCommand]:
    """First-Ready FCFS: row hits within a lookahead window jump ahead.

    The canonical memory-controller policy: among the oldest ``window``
    pending requests, one that hits an already-open row is served first
    (oldest such), otherwise the overall oldest proceeds.  Returns the
    timing-legal trace; per-request fairness/starvation control beyond
    the window bound is out of scope.
    """
    if window <= 0:
        raise ModelError("window must be positive")
    scheduler = OpenPageScheduler(device, policy=policy)
    pending: List[Request] = []
    iterator = iter(requests)

    def refill() -> None:
        while len(pending) < window:
            try:
                pending.append(next(iterator))
            except StopIteration:
                return

    refill()
    while pending:
        chosen = None
        for index, request in enumerate(pending):
            if scheduler.open_row(request.bank) == request.row:
                chosen = index
                break
        if chosen is None:
            chosen = 0
        scheduler.add(pending.pop(chosen))
        refill()
    return scheduler.finalize()
