"""Canonical access-stream generators.

All generators are deterministic given their seed and return timing-legal
traces built by the open-page scheduler.
"""

from __future__ import annotations

import random
from typing import List

from ..core.trace import TraceCommand
from ..description import DramDescription
from ..errors import ModelError
from .scheduler import OpenPageScheduler, Request


def _accesses_per_page(device: DramDescription) -> int:
    return device.spec.page_bits // device.spec.bits_per_access


def streaming_trace(device: DramDescription, accesses: int,
                    read_fraction: float = 1.0,
                    banks_used: int = 0) -> List[TraceCommand]:
    """A sequential stream: fill each open page before moving on.

    Pages are walked round-robin across ``banks_used`` banks (default:
    all) so activates overlap with data transfer — the best case for
    row-buffer locality.
    """
    if accesses <= 0:
        raise ModelError("accesses must be positive")
    if not 0.0 <= read_fraction <= 1.0:
        raise ModelError("read_fraction must be a fraction")
    banks_used = banks_used or device.spec.banks
    banks_used = min(banks_used, device.spec.banks)
    per_page = _accesses_per_page(device)
    scheduler = OpenPageScheduler(device)
    writes_every = (0 if read_fraction >= 1.0
                    else max(1, round(1.0 / max(1e-9, 1.0 - read_fraction))))
    rows = [0] * banks_used
    index = 0
    while index < accesses:
        bank = (index // per_page) % banks_used
        if index % per_page == 0 and index // per_page >= banks_used:
            rows[bank] += 1
        is_write = bool(writes_every) and (index % writes_every
                                           == writes_every - 1)
        scheduler.add(Request(bank=bank, row=rows[bank],
                              is_write=is_write))
        index += 1
    return scheduler.finalize()


def random_trace(device: DramDescription, accesses: int,
                 row_hit_rate: float = 0.5, read_fraction: float = 0.67,
                 seed: int = 1,
                 with_refresh: bool = False) -> List[TraceCommand]:
    """A random-access stream with a target row-buffer hit rate.

    Each access reuses the last row of a random bank with probability
    ``row_hit_rate``, otherwise it touches a fresh row — the knob that
    moves a workload between streaming-like and fully random behaviour.
    With ``with_refresh`` the scheduler interleaves per-bank refresh
    cycles at the tREFI cadence.
    """
    if accesses <= 0:
        raise ModelError("accesses must be positive")
    for name, value in (("row_hit_rate", row_hit_rate),
                        ("read_fraction", read_fraction)):
        if not 0.0 <= value <= 1.0:
            raise ModelError(f"{name} must be a fraction")
    rng = random.Random(seed)
    banks = device.spec.banks
    rows_per_bank = device.spec.rows_per_bank
    last_rows = {bank: 0 for bank in range(banks)}
    scheduler = OpenPageScheduler(device)
    deadline = device.timing.tref_interval / banks
    for _ in range(accesses):
        if with_refresh:
            deadline = scheduler.maybe_refresh(deadline)
        bank = rng.randrange(banks)
        if rng.random() < row_hit_rate:
            row = last_rows[bank]
        else:
            row = rng.randrange(rows_per_bank)
            last_rows[bank] = row
        scheduler.add(Request(
            bank=bank, row=row,
            is_write=rng.random() >= read_fraction,
        ))
    return scheduler.finalize()


def copy_trace(device: DramDescription, lines: int,
               banks_apart: int = 1) -> List[TraceCommand]:
    """A memory-copy stream: read a source page, write a destination.

    Source and destination live ``banks_apart`` banks apart so reads and
    writes interleave across banks; each page is fully read then fully
    written — the classic memcpy/DMA pattern, write-heavy on the data
    bus but streaming-friendly on the rows.
    """
    if lines <= 0:
        raise ModelError("lines must be positive")
    banks = device.spec.banks
    per_page = _accesses_per_page(device)
    scheduler = OpenPageScheduler(device)
    for line in range(lines):
        src_bank = (2 * line) % banks
        dst_bank = (2 * line + banks_apart) % banks
        row = line // banks
        for _ in range(per_page):
            scheduler.add(Request(bank=src_bank, row=row))
            scheduler.add(Request(bank=dst_bank, row=row,
                                  is_write=True))
    return scheduler.finalize()


def pointer_chase_trace(device: DramDescription, accesses: int,
                        seed: int = 1) -> List[TraceCommand]:
    """A dependent-load chain: every access a fresh random row.

    The worst case for row-buffer locality (hit rate ≈ 0) — each load
    pays a full precharge + activate before its column access.
    """
    return random_trace(device, accesses, row_hit_rate=0.0,
                        read_fraction=1.0, seed=seed)


def utilization_trace(device: DramDescription, duration: float,
                      utilization: float, row_hit_rate: float = 0.5,
                      read_fraction: float = 0.67,
                      seed: int = 1) -> List[TraceCommand]:
    """A random stream sized to a target bandwidth utilization.

    ``utilization`` is the fraction of peak bandwidth the stream demands;
    the scheduler stretches the trace if the protocol cannot sustain it.
    """
    if duration <= 0:
        raise ModelError("duration must be positive")
    if not 0.0 < utilization <= 1.0:
        raise ModelError("utilization must be in (0, 1]")
    spec = device.spec
    accesses = max(1, int(duration * spec.core_access_rate * utilization))
    return random_trace(device, accesses, row_hit_rate=row_hit_rate,
                        read_fraction=read_fraction, seed=seed)
