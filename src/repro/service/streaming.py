"""Chunked NDJSON streaming bodies for batch evaluation and sweeps.

A buffered ``POST /evaluate`` or ``POST /sweep`` holds its whole
response until the last device is done; for a long batch the client
stares at a silent socket.  With ``{"stream": true}`` in the request
body the server switches to chunked transfer encoding and emits one
newline-delimited JSON record per finished unit of work instead:

* ``{"index": i, "result": {...}}`` — one ``/evaluate`` device;
* ``{"index": i, "row": {...}}`` — one ``/sweep`` row;
* ``{"index": i, "error": "...", "status": 400}`` — a unit that
  failed after the stream started (the stream then ends);
* ``{"done": true, "count": n}`` — the terminal record.

The factories below validate the request *eagerly* and raise
:class:`~repro.errors.ServiceError` before returning a generator, so
malformed requests still get an ordinary JSON error response; only
failures after the first record has been sent degrade to an in-band
error record.

Row payloads reuse the exact formatter functions of
:mod:`repro.service.jsonapi`, so a streamed sweep's rows are
bit-identical to the buffered response's — only the framing differs.
Decomposable sweeps (``sensitivity`` per parameter, ``trends`` per
node, ``schemes`` per scheme) evaluate incrementally, so the first
record arrives long before the sweep completes; ``corners`` shares
one model across measures and streams the finished rows.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from ..analysis.corners import (STANDARD_CORNERS, VENDOR_SPREAD_CORNERS,
                                corner_sweep)
from ..analysis.sensitivity import PARAMETERS, sensitivity
from ..analysis.trends import generation_trend
from ..engine import AUTO, EvaluationSession
from ..errors import ReproError, ServiceError
from ..schemes import ALL_SCHEMES, compare_schemes
from ..technology.roadmap import nodes
from .jsonapi import (SWEEPS, _evaluation, corner_row,
                      device_from_payload, parse_evaluate_request,
                      scheme_row, sensitivity_row, trend_row)

#: NDJSON content type of every streamed response.
STREAM_CONTENT_TYPE = "application/x-ndjson"


def wants_stream(payload: Any) -> bool:
    """Whether a request body opted into the streaming mode."""
    return isinstance(payload, dict) and payload.get("stream") is True


def _error_record(index: int, exc: Exception) -> Dict[str, Any]:
    """An in-band failure record for a unit that died mid-stream.

    Shedding-class failures (429/503) additionally carry their
    ``retry_after`` hint in-band, since chunked streams cannot grow
    a ``Retry-After`` header after the 200 went out.
    """
    status = exc.status if isinstance(exc, ServiceError) else 400
    record = {"index": index, "error": str(exc), "status": status}
    if (isinstance(exc, ServiceError)
            and exc.retry_after is not None):
        record["retry_after"] = exc.retry_after
    return record


def _done(count: int) -> Dict[str, Any]:
    return {"done": True, "count": count}


def evaluate_stream(session: EvaluationSession,
                    payload: Any) -> Iterator[Dict[str, Any]]:
    """Streaming ``POST /evaluate``: one record per device.

    Parses and validates the whole request up front (raising
    :class:`ServiceError` like the buffered path), then returns a
    generator that evaluates device by device.
    """
    devices, pattern = parse_evaluate_request(payload)

    def records() -> Iterator[Dict[str, Any]]:
        count = 0
        for index, device in enumerate(devices):
            try:
                body = _evaluation(session.model(device), pattern)
            except ServiceError as exc:
                yield _error_record(index, exc)
                return
            except ReproError as exc:
                yield _error_record(index, exc)
                return
            count += 1
            yield {"index": index, "result": body}
        yield _done(count)

    return records()


# ----------------------------------------------------------------------
# Sweep decomposition: one generator per kind.
# ----------------------------------------------------------------------
def _sensitivity_units(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    variation = float(payload.get("variation", 0.2))
    for parameter in PARAMETERS:
        results = sensitivity(device, variation=variation,
                              parameters=(parameter,),
                              session=session, jobs=jobs,
                              backend=backend)
        for result in results:
            yield sensitivity_row(result)


def _corner_units(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    vendor = bool(payload.get("vendor", False))
    corners = VENDOR_SPREAD_CORNERS if vendor else STANDARD_CORNERS
    bands = corner_sweep(device, corners=corners, session=session,
                         jobs=jobs, backend=backend)
    for band in bands:
        yield corner_row(band)


def _trend_units(session, payload, jobs, backend):
    io_width = int(payload.get("io_width", 16))
    node_list = payload.get("nodes")
    if node_list is not None and not isinstance(node_list, list):
        raise ServiceError("'nodes' must be a list of nodes in nm")
    if node_list is None:
        node_list = list(nodes())
    for node in node_list:
        points = generation_trend(io_width=io_width,
                                  node_list=[node],
                                  session=session, jobs=jobs,
                                  backend=backend)
        for point in points:
            yield trend_row(point)


def _scheme_units(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    for scheme in ALL_SCHEMES:
        results = compare_schemes(device, schemes=(scheme,),
                                  session=session, jobs=jobs,
                                  backend=backend)
        for result in results:
            yield scheme_row(result)


#: Per-kind incremental row generators (same keys as ``SWEEPS``).
_STREAMERS = {
    "sensitivity": _sensitivity_units,
    "corners": _corner_units,
    "trends": _trend_units,
    "schemes": _scheme_units,
}


def sweep_stream(session: EvaluationSession,
                 payload: Any) -> Iterator[Dict[str, Any]]:
    """Streaming ``POST /sweep``: one record per row.

    Validates ``kind``/``jobs``/``backend`` and the routing device
    eagerly, exactly like the buffered endpoint; rows then stream as
    each decomposed unit of the sweep finishes.  Note the row *order*
    of a streamed ``sensitivity`` sweep is parameter declaration
    order, not the impact-sorted order of the buffered response.
    """
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in SWEEPS:
        raise ServiceError(
            f"unknown sweep kind {kind!r}; choose from "
            + "/".join(sorted(SWEEPS)))
    jobs = payload.get("jobs")
    if jobs is not None and not isinstance(jobs, int):
        raise ServiceError("'jobs' must be an integer worker count")
    backend = payload.get("backend", AUTO)
    if backend is not None and not isinstance(backend, str):
        raise ServiceError("'backend' must be a backend name")
    if kind in ("sensitivity", "corners", "schemes"):
        # Decode the device now so a malformed one is a normal 400.
        device_from_payload(payload.get("device", {}))
    units = _STREAMERS[kind]

    def records() -> Iterator[Dict[str, Any]]:
        count = 0
        try:
            for row in units(session, payload, jobs, backend):
                yield {"index": count, "row": row}
                count += 1
        except (ServiceError, ReproError, ValueError,
                TypeError) as exc:
            yield _error_record(count, exc)
            return
        yield _done(count)

    return records()
