"""Warm evaluation service: a long-lived daemon over one session.

A cold CLI invocation pays interpreter start-up plus a cold model
build for every query; calibration-style workloads (repeated small
queries against a measurement stream) ask the same model thousands of
times.  This package turns the warm :class:`~repro.engine.session.
EvaluationSession` cache into *cross-request* reuse: one process holds
one session for its lifetime behind a small JSON-over-HTTP API, so the
second identical request is answered from memory with no build at all.

Stdlib only (``http.server.ThreadingHTTPServer``); endpoints:

* ``POST /evaluate`` — pattern power and per-operation energies of
  one device description or a batch;
* ``POST /sweep`` — a named sweep (``sensitivity`` / ``corners`` /
  ``trends`` / ``schemes``) with parameters, executed on the adaptive
  ``auto`` backend by default;
* ``GET /stats``  — engine counters (incl. disk cache), uptime and
  per-endpoint request counts;
* ``GET /healthz`` — liveness probe.

``repro serve`` starts the daemon from the CLI; SIGTERM/SIGINT drain
in-flight requests before the process exits.  The matching client
lives in :mod:`repro.client`; request/response shapes are documented
in ``docs/SERVICE.md``.

Resilience: POST endpoints pass admission control (bounded in-flight
slots + small wait queue, shedding with ``429``/``503`` and
``Retry-After`` — :mod:`repro.service.admission`), every request gets
a deadline (``504`` on a blown budget), ``/evaluate`` responses are
memoized in a small LRU, and :mod:`repro.service.faults` can inject
latency, errors, connection resets and worker kills so all of it is
testable deterministically.
"""

from .admission import (AdmissionController, AdmissionShed, Deadline,
                        DeadlineExceeded, ServiceLimits)
from .faults import FaultInjector, FaultRule, InjectedFault
from .jsonapi import (ResultCache, device_from_payload,
                      evaluate_payload, stats_payload, sweep_payload)
from .server import EvaluationService, create_service

__all__ = [
    "AdmissionController",
    "AdmissionShed",
    "Deadline",
    "DeadlineExceeded",
    "EvaluationService",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "ResultCache",
    "ServiceLimits",
    "create_service",
    "device_from_payload",
    "evaluate_payload",
    "stats_payload",
    "sweep_payload",
]
