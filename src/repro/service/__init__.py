"""Warm evaluation service: a long-lived daemon over one session.

A cold CLI invocation pays interpreter start-up plus a cold model
build for every query; calibration-style workloads (repeated small
queries against a measurement stream) ask the same model thousands of
times.  This package turns the warm :class:`~repro.engine.session.
EvaluationSession` cache into *cross-request* reuse: one process holds
one session for its lifetime behind a small JSON-over-HTTP API, so the
second identical request is answered from memory with no build at all.

Stdlib only (``http.server.ThreadingHTTPServer``); endpoints:

* ``POST /evaluate`` — pattern power and per-operation energies of
  one device description or a batch;
* ``POST /sweep`` — a named sweep (``sensitivity`` / ``corners`` /
  ``trends`` / ``schemes``) with parameters, executed on the adaptive
  ``auto`` backend by default;
* ``GET /stats``  — engine counters (incl. disk cache), uptime and
  per-endpoint request counts;
* ``GET /healthz`` — liveness probe.

``repro serve`` starts the daemon from the CLI; SIGTERM/SIGINT drain
in-flight requests before the process exits.  The matching client
lives in :mod:`repro.client`; request/response shapes are documented
in ``docs/SERVICE.md``.

Resilience: POST endpoints pass admission control (bounded in-flight
slots + small wait queue, shedding with ``429``/``503`` and
``Retry-After`` — :mod:`repro.service.admission`), every request gets
a deadline (``504`` on a blown budget), ``/evaluate`` responses are
memoized in a small LRU, and :mod:`repro.service.faults` can inject
latency, errors, connection resets and worker kills so all of it is
testable deterministically.

Scale-out: ``repro serve --workers N`` forks N such servers accepting
on one shared port under a respawning supervisor
(:mod:`repro.service.prefork`), each booted warm from a shared-memory
stage preseed and the common disk cache; fingerprint-affinity routing
(:mod:`repro.service.routing`) bounces a request to the worker whose
caches hold its device (one-hop ``307``), ``"stream": true`` turns
batch replies into chunked NDJSON (:mod:`repro.service.streaming`),
API keys guard the perimeter (:mod:`repro.service.auth`), and
``GET /stats?scope=cluster`` merges the whole fleet's counters.

Durability: with ``--jobs-dir`` (defaulted to ``<cache-dir>/jobs``
by the CLI) the service also fronts the crash-recoverable job layer
(:mod:`repro.jobs`) — ``POST /jobs`` submits journaled, chunk-
checkpointed campaigns, ``GET /jobs/<id>`` reports progress,
``DELETE /jobs/<id>`` cancels cooperatively, and the prefork
supervisor reassigns jobs orphaned by a killed worker.
"""

from .admission import (AdmissionController, AdmissionShed, Deadline,
                        DeadlineExceeded, ServiceLimits)
from .auth import API_KEY_HEADER, ApiKeyAuth, parse_keys
from .faults import FaultInjector, FaultRule, InjectedFault
from .jsonapi import (ResultCache, device_from_payload,
                      evaluate_payload, stats_payload, sweep_payload)
from .prefork import PreforkSupervisor, serve_prefork
from .routing import (ROUTED_HEADER, WORKER_HEADER, AffinityRouter,
                      WorkerRegistry, preferred_worker)
from .server import EvaluationService, ServiceCounters, create_service
from .streaming import evaluate_stream, sweep_stream, wants_stream

__all__ = [
    "API_KEY_HEADER",
    "ROUTED_HEADER",
    "WORKER_HEADER",
    "AdmissionController",
    "AdmissionShed",
    "AffinityRouter",
    "ApiKeyAuth",
    "Deadline",
    "DeadlineExceeded",
    "EvaluationService",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "PreforkSupervisor",
    "ResultCache",
    "ServiceCounters",
    "ServiceLimits",
    "WorkerRegistry",
    "create_service",
    "device_from_payload",
    "evaluate_payload",
    "evaluate_stream",
    "parse_keys",
    "preferred_worker",
    "serve_prefork",
    "stats_payload",
    "sweep_payload",
    "sweep_stream",
    "wants_stream",
]
