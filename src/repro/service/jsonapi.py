"""JSON request/response bodies of the evaluation service.

Pure functions from parsed JSON payloads to JSON-compatible dicts;
:mod:`repro.service.server` owns the HTTP plumbing and calls in here.
Keeping the API surface socket-free makes every endpoint unit-testable
without a server and reusable by other front ends.

A *device payload* takes one of three shapes:

* builder keywords — ``{"node": 55, "io_width": 16, ...}`` routed to
  :func:`repro.devices.build_device` (an empty object is the default
  mainstream device);
* description language — ``{"dsl": "Device ..."}`` parsed by
  :func:`repro.dsl.loads`;
* JSON interchange — ``{"json": {...}}`` decoded by
  :func:`repro.description.jsonio.from_dict`.

Every malformed request raises :class:`~repro.errors.ServiceError`
carrying the HTTP status it maps to; model-layer failures
(:class:`~repro.errors.ReproError`) are translated to 400s so a bad
description never takes the daemon down.
"""

from __future__ import annotations

import dataclasses
import math
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.corners import (STANDARD_CORNERS, VENDOR_SPREAD_CORNERS,
                                corner_sweep)
from ..analysis.sensitivity import sensitivity
from ..analysis.trends import generation_trend
from ..core import DramPowerModel
from ..description import DramDescription, Pattern
from ..description.jsonio import from_dict
from ..description.pattern import Command
from ..devices import build_device
from ..dsl import loads
from ..engine import AUTO, EvaluationSession, fingerprint
from ..errors import ReproError, ServiceError
from ..schemes import compare_schemes
from ..units import parse_quantity

#: Keyword keys accepted by the builder shape of a device payload.
BUILDER_KEYS = ("node", "interface", "density_bits", "io_width",
                "datarate", "page_bits", "banks", "name")

#: Operations whose per-operation energy every evaluation reports.
_OPERATIONS = (Command.ACT, Command.PRE, Command.RD, Command.WR)


def _finite(value: float) -> Optional[float]:
    """``value`` as JSON-safe data: non-finite floats become null."""
    return value if math.isfinite(value) else None


class ResultCache:
    """Bounded LRU of whole ``/evaluate`` responses.

    Keyed on ``(device fingerprints, pattern string)`` — everything
    that determines the response — so a warm repeat skips not just the
    model build but the evaluation and response assembly too.  Thread
    safe; a zero capacity disables it.  Hit/miss counters surface in
    ``GET /stats`` under ``result_cache``.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[Tuple, Dict[str, Any]]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Tuple) -> Optional[Dict[str, Any]]:
        """The cached response for ``key``, counting hit or miss."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: Tuple, value: Dict[str, Any]) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._entries),
                    "capacity": self.capacity}


def device_from_payload(payload: Any) -> DramDescription:
    """Decode one device payload (see the module docstring shapes)."""
    if not isinstance(payload, dict):
        raise ServiceError("device payload must be a JSON object")
    try:
        if "dsl" in payload:
            if not isinstance(payload["dsl"], str):
                raise ServiceError("'dsl' must be a string")
            return loads(payload["dsl"], source="<request>")
        if "json" in payload:
            return from_dict(payload["json"])
        unknown = set(payload) - set(BUILDER_KEYS)
        if unknown:
            raise ServiceError(
                "unknown device keys: " + ", ".join(sorted(unknown))
                + "; builder keys are " + ", ".join(BUILDER_KEYS)
                + " (or pass 'dsl' / 'json')")
        kwargs = dict(payload)
        node = kwargs.pop("node", 55)
        if isinstance(kwargs.get("datarate"), str):
            kwargs["datarate"] = parse_quantity(kwargs["datarate"])
        return build_device(node, **kwargs)
    except ServiceError:
        raise
    except ReproError as exc:
        raise ServiceError(str(exc)) from exc
    except (TypeError, ValueError, KeyError) as exc:
        raise ServiceError(
            f"invalid device payload: {type(exc).__name__}: {exc}"
        ) from exc


def _evaluation(model: DramPowerModel,
                pattern: Optional[Pattern]) -> Dict[str, Any]:
    """The JSON body describing one evaluated device."""
    result = model.pattern_power(pattern)
    return {
        "device": result.device_name,
        "pattern": result.pattern,
        "power_w": result.power,
        "current_a": result.current,
        "duration_s": result.duration,
        "energy_per_bit_pj": _finite(result.energy_per_bit_pj),
        "operation_power_w": {name: value for name, value
                              in result.operation_power.items()},
        "operation_energy_pj": {
            command.value: model.operation_energy(command) * 1e12
            for command in _OPERATIONS},
        "breakdown_w": result.breakdown.as_dict(),
    }


def parse_evaluate_request(payload: Any
                           ) -> Tuple[List[DramDescription],
                                      Optional[Pattern]]:
    """Decode an ``/evaluate`` body into ``(devices, pattern)``.

    Shared by the buffered endpoint below and the streaming variant
    (:mod:`repro.service.streaming`), so both reject malformed
    requests identically and before any evaluation starts.
    """
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    if "devices" in payload:
        specs = payload["devices"]
        if not isinstance(specs, list) or not specs:
            raise ServiceError("'devices' must be a non-empty list")
    elif "device" in payload:
        specs = [payload["device"]]
    else:
        raise ServiceError("request needs a 'device' or 'devices' key")
    pattern = None
    if payload.get("pattern") is not None:
        if not isinstance(payload["pattern"], str):
            raise ServiceError("'pattern' must be a command string")
        try:
            pattern = Pattern.parse(payload["pattern"])
        except (ReproError, ValueError) as exc:
            raise ServiceError(f"bad pattern: {exc}") from exc
    devices = [device_from_payload(spec) for spec in specs]
    return devices, pattern


def evaluate_payload(session: EvaluationSession, payload: Any,
                     cache: Optional[ResultCache] = None
                     ) -> Dict[str, Any]:
    """``POST /evaluate``: one description or a batch.

    ``{"device": {...}}`` or ``{"devices": [{...}, ...]}``, plus an
    optional ``"pattern"`` command loop evaluated on every device
    (the device default pattern when omitted).  Results keep the
    request order.  With a :class:`ResultCache` the whole response is
    memoized on ``(fingerprints, pattern)``: a repeat request skips
    evaluation entirely.
    """
    devices, pattern = parse_evaluate_request(payload)
    key = None
    if cache is not None and cache.enabled:
        key = (tuple(fingerprint(device) for device in devices),
               payload.get("pattern"))
        memoized = cache.get(key)
        if memoized is not None:
            return memoized
    try:
        results = [_evaluation(session.model(device), pattern)
                   for device in devices]
    except ServiceError:
        raise  # deadline/fault errors keep their own status
    except ReproError as exc:
        raise ServiceError(str(exc)) from exc
    body = {"count": len(results), "results": results}
    if key is not None:
        cache.put(key, body)
    return body


# ----------------------------------------------------------------------
# Named sweeps.
# ----------------------------------------------------------------------
def sensitivity_row(result) -> Dict[str, Any]:
    """One sensitivity sweep row — shared with the streaming mode."""
    return {"name": result.name,
            "group": result.group,
            "impact": result.impact,
            "power_base_w": result.power_base,
            "power_low_w": result.power_low,
            "power_high_w": result.power_high}


def corner_row(band) -> Dict[str, Any]:
    """One corner sweep row — shared with the streaming mode."""
    return {"measure": band.measure.value,
            "min_ma": band.minimum,
            "typ_ma": band.typical,
            "max_ma": band.maximum,
            "spread": band.spread,
            "values_ma": band.values_ma}


def trend_row(point) -> Dict[str, Any]:
    """One generation-trend row — shared with the streaming mode."""
    return {"node_nm": point.node_nm,
            "year": point.year,
            "interface": point.interface,
            "datarate_gbps": point.datarate / 1e9,
            "vdd": point.vdd,
            "die_area_mm2": point.die_area_mm2,
            "idd0_ma": point.idd0_ma,
            "idd4r_ma": point.idd4r_ma,
            "energy_idd7_pj": point.energy_idd7_pj}


def scheme_row(result) -> Dict[str, Any]:
    """One scheme-comparison row — shared with the streaming mode."""
    return {"scheme": result.scheme,
            "power_saving": result.power_saving,
            "area_overhead": result.area_overhead,
            "baseline_power_w": result.baseline.power,
            "modified_power_w": result.modified.power,
            "notes": result.notes}


def _sensitivity_rows(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    variation = float(payload.get("variation", 0.2))
    results = sensitivity(device, variation=variation,
                          session=session, jobs=jobs, backend=backend)
    return {"device": device.name, "variation": variation,
            "rows": [sensitivity_row(result) for result in results]}


def _corner_rows(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    vendor = bool(payload.get("vendor", False))
    corners = VENDOR_SPREAD_CORNERS if vendor else STANDARD_CORNERS
    bands = corner_sweep(device, corners=corners, session=session,
                         jobs=jobs, backend=backend)
    return {"device": device.name, "vendor": vendor,
            "rows": [corner_row(band) for band in bands]}


def _trend_rows(session, payload, jobs, backend):
    io_width = int(payload.get("io_width", 16))
    node_list = payload.get("nodes")
    if node_list is not None and not isinstance(node_list, list):
        raise ServiceError("'nodes' must be a list of nodes in nm")
    points = generation_trend(io_width=io_width, node_list=node_list,
                              session=session, jobs=jobs,
                              backend=backend)
    return {"io_width": io_width,
            "rows": [trend_row(point) for point in points]}


def _scheme_rows(session, payload, jobs, backend):
    device = device_from_payload(payload.get("device", {}))
    results = compare_schemes(device, session=session, jobs=jobs,
                              backend=backend)
    return {"device": device.name,
            "rows": [scheme_row(result) for result in results]}


#: Sweep kinds served by ``POST /sweep``.
SWEEPS = {
    "sensitivity": _sensitivity_rows,
    "corners": _corner_rows,
    "trends": _trend_rows,
    "schemes": _scheme_rows,
}


def sweep_payload(session: EvaluationSession,
                  payload: Any) -> Dict[str, Any]:
    """``POST /sweep``: one named sweep over the shared session.

    ``{"kind": "sensitivity"|"corners"|"trends"|"schemes", ...}`` with
    kind-specific parameters (``device``, ``variation``, ``vendor``,
    ``io_width``, ``nodes``) plus the uniform execution options
    ``jobs`` and ``backend`` (default ``"auto"``, which folds
    batchable sweep families through the columnar vector kernel when
    numpy is installed — visible as the ``vector_*`` counters of
    ``GET /stats``; ``"vector"`` requests the kernel explicitly).
    """
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    kind = payload.get("kind")
    if kind not in SWEEPS:
        raise ServiceError(
            f"unknown sweep kind {kind!r}; choose from "
            + "/".join(sorted(SWEEPS)))
    jobs = payload.get("jobs")
    if jobs is not None and not isinstance(jobs, int):
        raise ServiceError("'jobs' must be an integer worker count")
    backend = payload.get("backend", AUTO)
    if backend is not None and not isinstance(backend, str):
        raise ServiceError("'backend' must be a backend name")
    try:
        body = SWEEPS[kind](session, payload, jobs, backend)
    except ServiceError:
        raise
    except (ReproError, ValueError, TypeError) as exc:
        raise ServiceError(str(exc)) from exc
    body["kind"] = kind
    body["backend_requested"] = backend
    return body


def stats_payload(session: EvaluationSession) -> Dict[str, Any]:
    """The engine half of ``GET /stats``: one counter snapshot.

    The server wraps this with uptime and request counts; keeping the
    engine part here lets tests assert cache behaviour without HTTP.
    """
    stats = session.stats
    engine: Dict[str, Any] = dataclasses.asdict(stats)
    engine["hit_rate"] = stats.hit_rate
    engine["lookups"] = stats.lookups
    engine["stage_hit_rate"] = stats.stage_hit_rate
    engine["stage_lookups"] = stats.stage_lookups
    return {"engine": engine, "cache_dir": session.cache_dir}


def sweep_kinds() -> List[str]:
    """The kinds ``POST /sweep`` understands, sorted."""
    return sorted(SWEEPS)
