"""API-key authentication for the evaluation service.

A deliberately small scheme: the operator hands the daemon one or
more opaque keys (``repro serve --api-key ...``, repeatable, or the
``REPRO_API_KEYS`` environment variable, comma/whitespace separated);
every request except the ``/healthz`` liveness probe must then carry
one of them in an ``X-Api-Key`` header or be refused with a JSON
``401``.  Comparison uses :func:`hmac.compare_digest` so a presented
key's rejection time does not leak how many leading characters
matched.

Keys are shared secrets for coarse perimeter control (keeping a
service on a lab network from being an open evaluation endpoint), not
a user model: there is no per-key identity, quota or audit trail.
"""

from __future__ import annotations

import hmac
import os
from typing import Iterable, Mapping, Optional, Tuple

#: Request header carrying the presented key.
API_KEY_HEADER = "X-Api-Key"

#: Environment variable holding the accepted keys (comma or
#: whitespace separated).
API_KEYS_ENV = "REPRO_API_KEYS"


def parse_keys(raw: str) -> Tuple[str, ...]:
    """Split an environment-style key list on commas and whitespace."""
    parts = [part.strip() for chunk in raw.split(",")
             for part in chunk.split()]
    return tuple(part for part in parts if part)


class ApiKeyAuth:
    """A set of accepted API keys with constant-time membership."""

    def __init__(self, keys: Iterable[str]):
        cleaned = tuple(dict.fromkeys(
            key for key in keys if key))  # dedupe, keep order
        if not cleaned:
            raise ValueError("at least one non-empty API key required")
        self.keys = cleaned

    def check(self, presented: Optional[str]) -> bool:
        """Whether ``presented`` matches any accepted key.

        Each candidate comparison is constant-time in the key
        contents; a missing header is a plain refusal.
        """
        if not presented:
            return False
        return any(hmac.compare_digest(key, presented)
                   for key in self.keys)

    def any_key(self) -> str:
        """One accepted key — used by a worker to authenticate its
        own internal calls to sibling workers."""
        return self.keys[0]

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def from_options(cls, keys: Optional[Iterable[str]] = None,
                     env: Optional[Mapping[str, str]] = None
                     ) -> Optional["ApiKeyAuth"]:
        """Auth from explicit keys, else from :data:`API_KEYS_ENV`.

        Returns ``None`` when neither source names a key — the open,
        default configuration.
        """
        explicit = tuple(key for key in (keys or ()) if key)
        if explicit:
            return cls(explicit)
        raw = (env if env is not None else os.environ).get(
            API_KEYS_ENV, "")
        parsed = parse_keys(raw)
        if parsed:
            return cls(parsed)
        return None
