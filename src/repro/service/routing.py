"""Fingerprint-affinity routing across pre-fork service workers.

The pre-fork tier (:mod:`repro.service.prefork`) runs N worker
processes accepting on one shared port; the kernel spreads incoming
connections over them with no idea which worker's caches are warm for
which device.  This module adds that knowledge:

* every worker publishes a small JSON *registry entry* (pid, shared
  port, private direct port) into the supervisor's run directory —
  :class:`WorkerRegistry` reads the live set back with a short TTL
  cache and a pid-liveness check;
* :func:`preferred_worker` maps a device fingerprint onto one worker
  id by rendezvous (highest-random-weight) hashing, which keeps the
  assignment stable when workers die and respawn — only the dead
  worker's share moves;
* :class:`AffinityRouter` glues the two into the redirect decision:
  a request landing on the "wrong" worker is answered with ``307``
  and a ``Location`` pointing at the preferred worker's direct port,
  so a device's variants keep hitting the worker whose model/stage
  caches already hold them.  A client marks the redirected request
  with ``X-Repro-Routed`` so routing terminates after one hop.

All reads tolerate torn or stale files: a corrupt entry is skipped, a
dead worker drops out of the candidate set, and any failure inside the
router falls back to serving locally — affinity is an optimisation,
never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import urllib.request
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from .auth import API_KEY_HEADER

#: Marks a request that already followed one affinity redirect;
#: carriers are always served locally (no redirect loops).
ROUTED_HEADER = "X-Repro-Routed"

#: Response header naming the worker that produced the reply.
WORKER_HEADER = "X-Repro-Worker"


def preferred_worker(key: str,
                     worker_ids: Iterable[int]) -> Optional[int]:
    """The rendezvous-hash owner of ``key`` among ``worker_ids``.

    Every (key, worker) pair gets an independent pseudo-random score;
    the highest score wins.  Removing a worker reassigns only that
    worker's keys — exactly the stability a respawning fleet needs —
    and the choice is identical in every process, so any worker can
    compute any key's owner locally.
    """
    best_id: Optional[int] = None
    best_score = b""
    for worker_id in worker_ids:
        score = hashlib.sha256(
            f"{key}|{worker_id}".encode("utf-8")).digest()
        if best_id is None or score > best_score:
            best_id = worker_id
            best_score = score
    return best_id


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign but alive
        return True
    except OSError:  # pragma: no cover - platform oddities
        return False
    return True


class WorkerRegistry:
    """File-backed directory of the live workers of one service.

    One ``worker-<id>.json`` per worker, written atomically by the
    worker itself at boot (and rewritten on respawn).  Readers get a
    dict of live entries; results are cached for ``ttl`` seconds so
    per-request routing does not hammer the filesystem.
    """

    def __init__(self, directory: str, ttl: float = 0.25):
        self.directory = Path(directory)
        self.ttl = ttl
        self._lock = threading.Lock()
        self._cached: Dict[int, Dict[str, Any]] = {}
        self._read_at = -1.0

    #: Age (seconds) past which an unattributable staging file is
    #: assumed crash-leaked and collected.
    STALE_STAGING_SECONDS = 60.0

    def _path(self, worker_id: int) -> Path:
        return self.directory / f"worker-{worker_id}.json"

    def write(self, worker_id: int, entry: Dict[str, Any]) -> None:
        """Atomically publish ``entry`` for ``worker_id``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = self._path(worker_id).with_suffix(
            f".tmp{os.getpid()}")
        staging.write_text(json.dumps(entry, sort_keys=True))
        staging.replace(self._path(worker_id))

    def remove(self, worker_id: int) -> None:
        """Drop ``worker_id``'s entry (idempotent)."""
        try:
            self._path(worker_id).unlink()
        except OSError:
            pass

    def entries(self, refresh: bool = False
                ) -> Dict[int, Dict[str, Any]]:
        """Live entries by worker id (dead pids filtered out)."""
        now = time.monotonic()
        with self._lock:
            if not refresh and now - self._read_at < self.ttl:
                return dict(self._cached)
        fresh: Dict[int, Dict[str, Any]] = {}
        self._gc_stale_staging()
        try:
            paths = sorted(self.directory.glob("worker-*.json"))
        except OSError:
            paths = []
        for path in paths:
            try:
                entry = json.loads(path.read_text())
                worker_id = int(entry["worker"])
                pid = int(entry["pid"])
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn write or foreign file: skip
            if pid_alive(pid):
                fresh[worker_id] = entry
        with self._lock:
            self._cached = fresh
            self._read_at = now
        return dict(fresh)

    def _gc_stale_staging(self) -> None:
        """Collect crash-leaked ``worker-*.tmp<pid>`` staging files.

        :meth:`write` publishes entries via ``.tmp<pid>`` + rename; a
        worker killed between the two leaks the staging file forever.
        The writer's pid is in the suffix, so a dead pid identifies a
        leak exactly; files without a parseable pid fall back to an
        age check (a live writer renames within milliseconds).
        """
        try:
            leaks = list(self.directory.glob("worker-*.tmp*"))
        except OSError:  # pragma: no cover - directory racing away
            return
        now = time.time()
        for path in leaks:
            suffix = path.suffix  # ".tmp<pid>"
            try:
                writer = int(suffix[4:])
            except ValueError:
                writer = None
            if writer is not None:
                stale = not pid_alive(writer)
            else:
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue  # already gone
                stale = age > self.STALE_STAGING_SECONDS
            if stale:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced unlink
                    pass


class AffinityRouter:
    """Decides whether a request should bounce to a warmer worker."""

    def __init__(self, worker_id: int, registry: WorkerRegistry,
                 enabled: bool = True):
        self.worker_id = worker_id
        self.registry = registry
        self.enabled = enabled

    # ------------------------------------------------------------------
    @staticmethod
    def _device_spec(path: str, payload: Any) -> Optional[Any]:
        """The request's routing device payload, or ``None``.

        ``/evaluate`` routes on its first device; ``/sweep`` routes on
        the sweep's (possibly defaulted) base device for the kinds
        that have one.  Kinds without a device (``trends``) and
        malformed payloads return ``None`` — no routing.
        """
        if not isinstance(payload, dict):
            return None
        if path == "/evaluate":
            devices = payload.get("devices")
            if isinstance(devices, list) and devices:
                return devices[0]
            return payload.get("device")
        if path == "/sweep":
            if payload.get("kind") in ("sensitivity", "corners",
                                       "schemes"):
                return payload.get("device", {})
        return None

    def redirect_for(self, path: str, payload: Any,
                     headers: Any) -> Optional[str]:
        """The ``Location`` to redirect to, or ``None`` to serve here.

        Never raises: a payload the model layer would reject is left
        for the normal handler to diagnose, and any registry problem
        degrades to local service.
        """
        if not self.enabled:
            return None
        if headers.get(ROUTED_HEADER) is not None:
            return None  # terminal hop
        spec = self._device_spec(path, payload)
        if spec is None:
            return None
        try:
            from ..engine import fingerprint
            from .jsonapi import device_from_payload
            key = fingerprint(device_from_payload(spec))
            live = self.registry.entries()
            target = preferred_worker(key, live.keys())
            if target is None or target == self.worker_id:
                return None
            entry = live[target]
            host = entry.get("direct_host", "127.0.0.1")
            return f"http://{host}:{entry['direct_port']}{path}"
        except Exception:
            return None


# ----------------------------------------------------------------------
# Cluster-wide /stats aggregation helpers.
# ----------------------------------------------------------------------
def fetch_worker_stats(url: str, api_key: Optional[str] = None,
                       timeout: float = 2.0) -> Dict[str, Any]:
    """One sibling worker's local ``/stats`` payload (may raise)."""
    headers = {"Accept": "application/json"}
    if api_key is not None:
        headers[API_KEY_HEADER] = api_key
    request = urllib.request.Request(url, headers=headers)
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return json.loads(reply.read().decode("utf-8"))


def sum_counter_dicts(payloads: Iterable[Dict[str, Any]],
                      keys: Iterable[str]) -> Dict[str, Any]:
    """Key-wise integer sums over ``payloads`` (missing keys are 0)."""
    totals = {key: 0 for key in keys}
    for payload in payloads:
        for key in totals:
            value = payload.get(key, 0)
            if isinstance(value, (int, float)):
                totals[key] += value
    return totals


def merge_request_counts(payloads: Iterable[Dict[str, int]]
                         ) -> Dict[str, int]:
    """Per-path request-count sums across worker payloads."""
    merged: Dict[str, int] = {}
    for counts in payloads:
        for path, value in counts.items():
            merged[path] = merged.get(path, 0) + int(value)
    return merged


#: Admission counters that sum meaningfully across workers.
ADMISSION_SUM_KEYS = ("capacity", "queue_limit", "in_flight", "queued",
                      "admitted", "shed_busy", "shed_timeout",
                      "shed_draining", "shed_total")

#: Result-cache counters that sum meaningfully across workers.
RESULT_CACHE_SUM_KEYS = ("hits", "misses", "size", "capacity")


def merge_admission(payloads: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Cluster view of the admission counters: sums plus drain flag."""
    merged = sum_counter_dicts(payloads, ADMISSION_SUM_KEYS)
    merged["draining"] = any(payload.get("draining")
                             for payload in payloads)
    return merged
