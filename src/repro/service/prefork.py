"""Pre-fork multi-worker front end of the evaluation service.

One Python process can parse JSON and build models on only one core
at a time (the GIL serialises the CPU-bound parts of a request), so a
busy service host leaves most of its cores idle.  ``repro serve
--workers N`` closes that gap the classic Unix way: a small supervisor
binds the port, forks ``N`` worker processes that each run a full
:class:`~repro.service.server.EvaluationService`, and then does
nothing but watch — respawning any worker that dies and translating
SIGTERM/SIGINT into a graceful fleet drain.

Socket strategy: on platforms with ``SO_REUSEPORT`` (Linux, the BSDs)
every worker binds its *own* listening socket to the shared port and
the kernel load-balances incoming connections across them — no accept
lock, no thundering herd.  The supervisor keeps a bound-but-silent
*anchor* socket on the same port so the port is reserved (and a
``port=0`` request resolves to a concrete number) before the first
fork.  Without ``SO_REUSEPORT`` the anchor itself listens and the
workers inherit it across ``fork``, accepting from the shared queue.

Warm-state sharing, so a fresh fleet is not ``N`` cold caches:

* the workers share one fingerprint-keyed *disk* cache directory
  (``--cache-dir``) — any worker's cold build is every worker's warm
  disk hit;
* the supervisor exports the default device's stage payload into one
  shared-memory segment (:mod:`repro.engine.shm`) before forking;
  every worker — including respawns, which is why the supervisor
  keeps the segment alive — seeds its stage cache from it at boot;
* each worker also opens a private *direct* port and publishes it in
  a :class:`~repro.service.routing.WorkerRegistry`; affinity routing
  then steers repeat traffic for a device to the worker whose
  in-memory caches already hold it.

The supervisor itself never serves a request: its only jobs are the
port reservation, the fork/respawn loop and the shutdown fan-out
(SIGTERM to every worker, a grace period for drains, SIGKILL for
stragglers).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import socket
import tempfile
import threading
import time
from typing import Any, Dict, Optional

from ..devices import build_device
from ..engine import EvaluationSession
from ..engine.cache import DEFAULT_CAPACITY
from ..engine.shm import SharedStageStore, publish_stage_payload
from ..engine.stages import seed_stage_cache
from .admission import ServiceLimits
from .auth import ApiKeyAuth
from .routing import WorkerRegistry
from .server import EvaluationService

_LOG = logging.getLogger("repro.service.prefork")

#: Seconds a draining worker gets between SIGTERM and SIGKILL.
DEFAULT_GRACE = 10.0

#: Base delay before respawning a dead worker; doubles (capped) when
#: a worker keeps dying right after boot, so a crash loop cannot
#: consume the host.
RESPAWN_DELAY = 0.1
RESPAWN_DELAY_MAX = 2.0

#: A worker death this many seconds after its spawn counts as a
#: crash loop and escalates the backoff.
CRASH_LOOP_WINDOW = 1.0


def reuseport_available() -> bool:
    """Whether the kernel load-balances via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _bind_socket(host: str, port: int,
                 reuseport: bool) -> socket.socket:
    """A bound (not listening) TCP socket for the shared port."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuseport:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


def _preseed_payload(capacity: int,
                     cache_dir: Optional[str]) -> Optional[Any]:
    """The default device's stage export, or ``None`` on any failure.

    Built in the supervisor *once*; shipping it over shared memory
    saves every worker (and every respawn) the cold build of the
    stages all mainstream devices share.
    """
    try:
        session = EvaluationSession(capacity=capacity,
                                    cache_dir=cache_dir)
        return session.cache.stage_export(build_device(55))
    except Exception:
        return None


def _worker_main(worker_id: int, host: str, port: int,
                 anchor: socket.socket, reuseport: bool,
                 capacity: int, cache_dir: Optional[str],
                 limits: Optional[ServiceLimits],
                 auth: Optional[ApiKeyAuth], affinity: bool,
                 run_dir: str, shm_name: Optional[str],
                 jobs_dir: Optional[str] = None,
                 job_ttl: float = 3600.0) -> None:
    """One worker process: twin servers over one warm session.

    The *primary* server accepts on the shared port; the *direct*
    server listens on a private ephemeral port and shares the
    primary's session, admission controller, result cache and
    counters (``shared_with``), so affinity redirects and cluster
    stats fetches hit the same warm state through either socket.
    """
    if reuseport:
        listen_sock = _bind_socket(host, port, True)
        anchor.close()  # inherited, unused in this mode
    else:
        listen_sock = anchor  # inherited shared accept queue
    registry = WorkerRegistry(run_dir)
    primary = EvaluationService((host, port), capacity=capacity,
                                cache_dir=cache_dir, limits=limits,
                                auth=auth, worker_id=worker_id,
                                registry=registry, affinity=affinity,
                                listen_socket=listen_sock,
                                jobs_dir=jobs_dir, job_ttl=job_ttl)
    direct = EvaluationService(("127.0.0.1", 0), auth=auth,
                               worker_id=worker_id, registry=registry,
                               affinity=False, shared_with=primary)
    if shm_name is not None:
        cache = primary.session.cache
        try:
            payload = SharedStageStore.load(shm_name)
            seed_stage_cache(cache.stages, payload)
            cache.record_shm(loads=1)
        except Exception:
            cache.record_shm(errors=1)
    registry.write(worker_id, {
        "worker": worker_id,
        "pid": os.getpid(),
        "host": host,
        "port": port,
        "direct_host": "127.0.0.1",
        "direct_port": direct.server_port,
    })

    def _drain(signum: int, frame: Any) -> None:
        primary.request_shutdown()
        direct.request_shutdown()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _drain)
    direct_thread = threading.Thread(
        target=direct.serve_forever, kwargs={"poll_interval": 0.1},
        name=f"repro-direct-{worker_id}")
    direct_thread.start()
    try:
        primary.serve_forever(poll_interval=0.1)
    finally:
        direct.shutdown()
        direct_thread.join(timeout=10.0)
        registry.remove(worker_id)
        primary.server_close()
        direct.server_close()


class PreforkSupervisor:
    """Forks, watches and drains a fleet of service workers."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080,
                 workers: int = 2,
                 capacity: int = DEFAULT_CAPACITY,
                 cache_dir: Optional[str] = None,
                 limits: Optional[ServiceLimits] = None,
                 auth: Optional[ApiKeyAuth] = None,
                 affinity: bool = True,
                 preseed: bool = True,
                 run_dir: Optional[str] = None,
                 grace: float = DEFAULT_GRACE,
                 jobs_dir: Optional[str] = None,
                 job_ttl: float = 3600.0):
        if workers < 1:
            raise ValueError("workers must be a positive count")
        self.host = host
        self.requested_port = port
        self.port: Optional[int] = None
        self.workers = workers
        self.capacity = capacity
        self.cache_dir = cache_dir
        self.limits = limits
        self.auth = auth
        self.affinity = affinity
        self.preseed = preseed
        self.grace = grace
        self.run_dir = run_dir
        self.jobs_dir = jobs_dir
        self.job_ttl = job_ttl
        self.respawns = 0
        self.job_reassignments = 0
        self._orphan_scan_at = 0.0
        self._own_run_dir = run_dir is None
        self._anchor: Optional[socket.socket] = None
        self._store: Optional[SharedStageStore] = None
        self._reuseport = reuseport_available()
        self._procs: Dict[int, multiprocessing.process.BaseProcess] \
            = {}
        self._spawned_at: Dict[int, float] = {}
        self._backoff: Dict[int, float] = {}
        self._stop = threading.Event()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "pre-fork serving needs the fork start method "
                "(POSIX only); run with --workers 1 instead") from exc

    # ------------------------------------------------------------------
    def start(self) -> int:
        """Reserve the port, preseed shared memory, fork the fleet.

        Returns the concrete bound port (resolving a ``port=0``
        request) — ready to advertise before the watch loop starts.
        """
        self._anchor = _bind_socket(self.host, self.requested_port,
                                    self._reuseport)
        if not self._reuseport:  # pragma: no cover - Linux has it
            self._anchor.listen(128)
        self.port = self._anchor.getsockname()[1]
        if self.run_dir is None:
            self.run_dir = tempfile.mkdtemp(prefix="repro-prefork-")
        if self.jobs_dir is None and self.cache_dir is not None:
            # The shared cache dir is the durable home the journaled
            # jobs need to survive a full-fleet restart.
            self.jobs_dir = os.path.join(self.cache_dir, "jobs")
        if self.preseed:
            payload = _preseed_payload(self.capacity, self.cache_dir)
            self._store = publish_stage_payload(payload)
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        return self.port

    def _spawn(self, worker_id: int) -> None:
        shm_name = self._store.name if self._store is not None \
            else None
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.host, self.port, self._anchor,
                  self._reuseport, self.capacity, self.cache_dir,
                  self.limits, self.auth, self.affinity,
                  self.run_dir, shm_name, self.jobs_dir,
                  self.job_ttl),
            name=f"repro-worker-{worker_id}")
        proc.start()
        self._procs[worker_id] = proc
        self._spawned_at[worker_id] = time.monotonic()

    # ------------------------------------------------------------------
    def _respawn_dead(self) -> None:
        """Replace any worker that exited, with crash-loop backoff."""
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            proc.join()
            lived = time.monotonic() - self._spawned_at[worker_id]
            if lived < CRASH_LOOP_WINDOW:
                delay = min(
                    self._backoff.get(worker_id, RESPAWN_DELAY) * 2,
                    RESPAWN_DELAY_MAX)
            else:
                delay = RESPAWN_DELAY
            self._backoff[worker_id] = delay
            _LOG.warning(
                "worker %d (pid %s) exited with code %s; "
                "respawning in %.1fs", worker_id, proc.pid,
                proc.exitcode, delay)
            self.respawns += 1
            if self._stop.wait(delay):
                return
            self._spawn(worker_id)

    def _reassign_orphan_jobs(self) -> None:
        """Point dead workers' journaled jobs at live ones.

        Runs at most once a second: reads the registry (pid-liveness
        filters the dead), and asks the shared
        :class:`~repro.jobs.store.JobStore` to reassign any running
        job whose recorded owner pid no longer exists.  The adopting
        worker replays the job's journal and resumes from the last
        durable chunk.
        """
        if self.jobs_dir is None:
            return
        now = time.monotonic()
        if now - self._orphan_scan_at < 1.0:
            return
        self._orphan_scan_at = now
        try:
            from ..jobs.store import JobStore
            registry = WorkerRegistry(self.run_dir)
            live = registry.entries(refresh=True)
            if not live:
                return
            moved = JobStore(self.jobs_dir).reassign_orphans(live)
            if moved:
                _LOG.warning(
                    "reassigned %d orphaned job(s) to live workers",
                    moved)
                self.job_reassignments += moved
        except Exception:  # pragma: no cover - defensive
            _LOG.exception("orphan-job reassignment failed")

    def stop(self) -> None:
        """Ask the watch loop to drain the fleet and return."""
        self._stop.set()

    def _handle_signal(self, signum: int, frame: Any) -> None:
        _LOG.info("signal %d received: draining %d workers",
                  signum, len(self._procs))
        self.stop()

    def run_until_signal(self, install_signals: bool = True) -> None:
        """Watch the fleet until SIGTERM/SIGINT (or :meth:`stop`).

        Respawns dead workers while running; on the way out SIGTERMs
        every worker, waits up to ``grace`` seconds for their drains,
        SIGKILLs stragglers and releases the port, the shared-memory
        segment and the run directory.
        """
        previous = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(
                    signum, self._handle_signal)
        try:
            while not self._stop.wait(0.2):
                self._respawn_dead()
                self._reassign_orphan_jobs()
        finally:
            self._shutdown_workers()
            self._cleanup()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # ------------------------------------------------------------------
    def _shutdown_workers(self) -> None:
        procs = [proc for proc in self._procs.values()
                 if proc.is_alive()]
        for proc in procs:
            proc.terminate()  # SIGTERM: drain and exit
        deadline = time.monotonic() + self.grace
        for proc in procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - stuck drain
                _LOG.warning("worker pid %s ignored SIGTERM for "
                             "%.1fs; killing", proc.pid, self.grace)
                proc.kill()
                proc.join()
        self._procs.clear()

    def _cleanup(self) -> None:
        if self._store is not None:
            self._store.destroy()
            self._store = None
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        if self.run_dir is not None:
            registry = WorkerRegistry(self.run_dir)
            for worker_id in range(self.workers):
                registry.remove(worker_id)
            if self._own_run_dir:
                try:
                    os.rmdir(self.run_dir)
                except OSError:
                    pass


def serve_prefork(host: str, port: int, workers: int,
                  capacity: int = DEFAULT_CAPACITY,
                  cache_dir: Optional[str] = None,
                  limits: Optional[ServiceLimits] = None,
                  auth: Optional[ApiKeyAuth] = None,
                  affinity: bool = True,
                  preseed: bool = True,
                  jobs_dir: Optional[str] = None,
                  job_ttl: float = 3600.0) -> PreforkSupervisor:
    """A started supervisor (fleet forked, port resolved).

    The caller — normally :mod:`repro.cli` — announces
    ``supervisor.port`` and then hands the thread to
    :meth:`PreforkSupervisor.run_until_signal`.
    """
    supervisor = PreforkSupervisor(
        host=host, port=port, workers=workers, capacity=capacity,
        cache_dir=cache_dir, limits=limits, auth=auth,
        affinity=affinity, preseed=preseed, jobs_dir=jobs_dir,
        job_ttl=job_ttl)
    supervisor.start()
    return supervisor
