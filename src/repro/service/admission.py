"""Admission control and per-request deadlines for the service.

The :class:`~repro.service.server.EvaluationService` used to accept
unbounded concurrent work: every connection got a thread and every
thread ran a potentially long sweep.  Under sustained load that piles
up threads until the process thrashes — the opposite of the graceful
degradation a measurement harness needs.  This module provides the two
primitives the server composes instead:

* :class:`AdmissionController` — a bounded in-flight slot count plus a
  small wait queue.  A request either takes a slot immediately, waits
  briefly in the queue for one, or is *shed* with an
  :class:`AdmissionShed` carrying the HTTP status to reply with
  (``429`` when the queue is full, ``503`` when the queue wait timed
  out or the server is draining).  Shed replies carry a
  ``Retry-After`` hint so well-behaved clients back off instead of
  hammering.
* :class:`Deadline` — a monotonic per-request budget.  The handler
  wraps the shared session in a :class:`DeadlineSession`, which checks
  the budget before every model construction, so a long sweep aborts
  cleanly between builds (``504``) and never leaves the shared cache
  in an inconsistent state: each model is either fully built and
  cached, or not built at all.

Both are pure ``threading`` constructs with injectable clocks, so the
behaviour is unit-testable without sockets or sleeps.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..engine.session import EvaluationSession
from ..errors import ServiceError


@dataclass(frozen=True)
class ServiceLimits:
    """Operating limits of one :class:`EvaluationService` instance."""

    max_inflight: int = 8
    """Concurrent requests allowed to evaluate at once."""
    max_queue: int = 16
    """Requests allowed to wait for an in-flight slot; beyond this
    the server sheds with ``429``."""
    queue_timeout: float = 5.0
    """Longest a queued request waits for a slot before ``503``."""
    request_timeout: float = 30.0
    """Default per-request budget in seconds (``0`` disables); the
    ``X-Request-Timeout`` header overrides it per request."""
    retry_after: float = 1.0
    """``Retry-After`` hint (seconds) attached to shed replies."""
    result_cache: int = 256
    """Whole-response LRU entries for ``/evaluate`` (``0`` disables)."""


class DeadlineExceeded(ServiceError):
    """A request ran past its budget; mapped to HTTP 504."""

    def __init__(self, message: str):
        super().__init__(message, status=504)


class AdmissionShed(ServiceError):
    """A request was refused admission; carries the shed status."""


class Deadline:
    """A monotonic expiry timestamp with a checked remaining budget."""

    def __init__(self, budget_seconds: float,
                 clock: Callable[[], float] = time.monotonic):
        self.budget = budget_seconds
        self._clock = clock
        self.expires = clock() + budget_seconds

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"request exceeded its {self.budget:.3g}s budget")


class DeadlineSession(EvaluationSession):
    """A deadline-checking view of a shared session.

    Shares the underlying cache with ``inner`` (nothing is copied) but
    checks the request deadline before every model construction and at
    every ``map`` entry, so sweeps abort between builds — the cache
    only ever holds fully built models, keeping the shared session
    consistent after a 504.  Process-backend chunks checkpoint at
    chunk boundaries: a dispatched chunk runs to completion.
    """

    def __init__(self, inner: EvaluationSession, deadline: Deadline):
        # Deliberately no super().__init__: the whole point is to
        # share (not duplicate) the inner session's cache.
        self.cache = inner.cache
        self.cache_dir = inner.cache_dir
        self.deadline = deadline

    def model(self, device, events=None):
        self.deadline.check()
        return super().model(device, events)

    def map(self, devices, fn, jobs=None, backend=None):
        self.deadline.check()
        return super().map(devices, fn, jobs=jobs, backend=backend)


class AdmissionController:
    """Bounded in-flight slots plus a small FIFO-ish wait queue.

    ``acquire`` admits, queues, or sheds; ``release`` frees a slot and
    wakes one waiter; ``begin_drain`` (shutdown) rejects everything
    still queued and everything arriving later, while already-admitted
    requests run to completion — the graceful-drain contract.
    """

    def __init__(self, capacity: int = 8, queue_limit: int = 16,
                 queue_timeout: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue limit must be >= 0")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self._clock = clock
        self._cond = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        self._draining = False
        self.admitted = 0
        self.shed_busy = 0
        self.shed_timeout = 0
        self.shed_draining = 0
        self.max_in_flight = 0
        self.max_queued = 0

    # ------------------------------------------------------------------
    def _admit_locked(self) -> None:
        self._in_flight += 1
        self.admitted += 1
        self.max_in_flight = max(self.max_in_flight, self._in_flight)

    def acquire(self, deadline: Optional[Deadline] = None) -> None:
        """Take an in-flight slot, waiting in the queue if needed.

        Raises :class:`AdmissionShed` (429 queue-full, 503 timeout or
        draining) or :class:`DeadlineExceeded` when the request's own
        budget runs out while queued.
        """
        with self._cond:
            if self._draining:
                self.shed_draining += 1
                raise AdmissionShed("service is draining", status=503)
            if self._in_flight < self.capacity:
                self._admit_locked()
                return
            if self._queued >= self.queue_limit:
                self.shed_busy += 1
                raise AdmissionShed(
                    f"server busy: {self._in_flight} in flight and "
                    f"{self._queued} queued (limits "
                    f"{self.capacity}/{self.queue_limit})", status=429)
            self._queued += 1
            self.max_queued = max(self.max_queued, self._queued)
            expires = self._clock() + self.queue_timeout
            if deadline is not None:
                expires = min(expires, deadline.expires)
            try:
                while True:
                    if self._draining:
                        self.shed_draining += 1
                        raise AdmissionShed("service is draining",
                                            status=503)
                    if self._in_flight < self.capacity:
                        self._admit_locked()
                        return
                    remaining = expires - self._clock()
                    if remaining <= 0:
                        if deadline is not None and deadline.expired:
                            deadline.check()
                        self.shed_timeout += 1
                        raise AdmissionShed(
                            f"no capacity within "
                            f"{self.queue_timeout:.3g}s queue wait",
                            status=503)
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1

    def release(self) -> None:
        """Free one in-flight slot and wake one queued waiter."""
        with self._cond:
            self._in_flight -= 1
            self._cond.notify()

    def begin_drain(self) -> None:
        """Reject queued and future work; let admitted work finish."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One consistent counter snapshot for ``GET /stats``."""
        with self._cond:
            return {
                "capacity": self.capacity,
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
                "queued": self._queued,
                "admitted": self.admitted,
                "shed_busy": self.shed_busy,
                "shed_timeout": self.shed_timeout,
                "shed_draining": self.shed_draining,
                "shed_total": (self.shed_busy + self.shed_timeout
                               + self.shed_draining),
                "max_in_flight": self.max_in_flight,
                "max_queued": self.max_queued,
                "draining": self._draining,
            }
