"""Socket-free logic of the ``POST /trace`` endpoint.

Two request shapes share one streaming evaluator:

JSON mode (``Content-Type: application/json``)
    ``{"device": {...}, "text": "<trace lines>", "format": "k6",
    "clock": 1e9, "strict": false, "stream": true}`` — the trace rides
    inside the JSON body (subject to the service's normal body cap);
    the response is either one buffered result or NDJSON snapshots
    with ``"stream": true``.

Raw mode (any other content type)
    The body *is* the trace — arbitrarily long, optionally gzipped
    (``Content-Encoding: gzip``) and optionally chunk-framed
    (``Transfer-Encoding: chunked``).  Evaluation parameters travel in
    the query string (``/trace?format=k6&clock=1e9&node=55&...``); the
    response always streams NDJSON incremental aggregates.

Records mirror :mod:`repro.service.streaming` conventions:
``{"index": i, "snapshot": {...}}`` every ``snapshot_every`` commands,
``{"done": true, "count": n, "result": {...}}`` terminally, and
``{"index": i, "error": ..., "status": ...}`` for failures after the
stream started.  The evaluator is the same constant-memory
:class:`~repro.core.trace.TraceAccumulator` fold the library uses, so
an uploaded trace prices bit-for-bit identically to local one-shot
evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from ..core.trace import TraceAccumulator, TraceResult
from ..engine import EvaluationSession
from ..errors import ReproError, ServiceError
from ..trace import (DEFAULT_CLOCK, FORMATS, POLICIES, AddressDecoder,
                     ColumnarReplayer, columnar_available,
                     commands_from_records, iter_decompressed,
                     iter_lines, iter_records)
from ..trace.columnar import LINES_PER_BATCH, record_downgrade
from .admission import Deadline
from .jsonapi import _finite, device_from_payload

#: Commands between incremental snapshot records.
DEFAULT_SNAPSHOT_EVERY = 250_000

#: Snapshot cadence floor: each record is written while the upload is
#: still being consumed, so pathologically chatty cadences could fill
#: socket buffers against a client that only reads after sending.
MIN_SNAPSHOT_EVERY = 1_000

#: Query keys forwarded to the device builder in raw mode.
_DEVICE_QUERY_KEYS = ("node", "interface", "io_width", "datarate",
                      "density_bits")

#: Query keys interpreted by the trace evaluator itself.
_TRACE_QUERY_KEYS = ("format", "clock", "strict", "snapshot_every",
                     "policy", "channel_bits", "rank_bits",
                     "offset_bits", "backend")

#: Backends a streamed upload can ask for.  ``process`` is rejected:
#: a socket stream is consumed sequentially and cannot be re-read by
#: shard workers — file-scale sharded replays go through the CLI or
#: the durable ``trace`` job kind instead.
_STREAM_BACKENDS = ("auto", "serial", "vector")


@dataclass
class TraceRequest:
    """Validated parameters of one ``/trace`` evaluation."""

    device_payload: Dict[str, Any] = field(default_factory=dict)
    fmt: str = "k6"
    clock: float = DEFAULT_CLOCK
    strict: bool = False
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    policy: str = "row-bank-column"
    channel_bits: int = 0
    rank_bits: int = 0
    offset_bits: Optional[int] = None
    gzipped: bool = False
    backend: str = "auto"


def _parse_int(value: Any, name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServiceError(f"'{name}' must be an integer") from None


def _parse_float(value: Any, name: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServiceError(f"'{name}' must be a number") from None


def _parse_bool(value: Any, name: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off", ""):
            return False
    raise ServiceError(f"'{name}' must be a boolean")


def _validate(request: TraceRequest) -> TraceRequest:
    if request.fmt not in FORMATS:
        raise ServiceError(
            f"unknown trace format {request.fmt!r}; choose from "
            + "/".join(sorted(FORMATS)))
    if request.policy not in POLICIES:
        raise ServiceError(
            f"unknown decode policy {request.policy!r}; choose from "
            + "/".join(POLICIES))
    if not request.clock > 0:
        raise ServiceError("'clock' must be positive Hz")
    if request.backend not in _STREAM_BACKENDS:
        raise ServiceError(
            f"unknown trace backend {request.backend!r}; choose from "
            + "/".join(_STREAM_BACKENDS)
            + " (sharded process replay needs a seekable file: use "
            "the CLI or a 'trace' job)")
    if request.backend == "vector" and request.strict:
        raise ServiceError(
            "the vector backend replays batched and cannot honour "
            "strict=true; use backend=serial for strict legality "
            "checking")
    request.snapshot_every = max(MIN_SNAPSHOT_EVERY,
                                 int(request.snapshot_every))
    return request


def parse_trace_query(query: Dict[str, List[str]]) -> TraceRequest:
    """Raw-mode parameters from a parsed query string."""
    flat = {key: values[-1] for key, values in query.items() if values}
    unknown = (set(flat) - set(_DEVICE_QUERY_KEYS)
               - set(_TRACE_QUERY_KEYS))
    if unknown:
        raise ServiceError(
            "unknown trace query keys: " + ", ".join(sorted(unknown))
            + "; known: " + ", ".join(_DEVICE_QUERY_KEYS
                                      + _TRACE_QUERY_KEYS))
    device: Dict[str, Any] = {}
    for key in _DEVICE_QUERY_KEYS:
        if key not in flat:
            continue
        if key in ("node", "io_width", "density_bits"):
            device[key] = _parse_int(flat[key], key)
        else:
            device[key] = flat[key]
    request = TraceRequest(device_payload=device)
    if "format" in flat:
        request.fmt = flat["format"]
    if "clock" in flat:
        request.clock = _parse_float(flat["clock"], "clock")
    if "strict" in flat:
        request.strict = _parse_bool(flat["strict"], "strict")
    if "snapshot_every" in flat:
        request.snapshot_every = _parse_int(flat["snapshot_every"],
                                            "snapshot_every")
    if "policy" in flat:
        request.policy = flat["policy"]
    for key in ("channel_bits", "rank_bits"):
        if key in flat:
            setattr(request, key, _parse_int(flat[key], key))
    if "offset_bits" in flat:
        request.offset_bits = _parse_int(flat["offset_bits"],
                                         "offset_bits")
    if "backend" in flat:
        request.backend = flat["backend"]
    return _validate(request)


def parse_trace_payload(payload: Any) -> Tuple[TraceRequest, str]:
    """JSON-mode parameters; returns ``(request, trace_text)``."""
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    if "device" not in payload:
        raise ServiceError("request needs a 'device' key")
    text = payload.get("text")
    if not isinstance(text, str) or not text:
        raise ServiceError(
            "request needs a non-empty 'text' key with trace lines "
            "(or upload the raw trace as the request body)")
    request = TraceRequest(device_payload=payload["device"])
    request.fmt = payload.get("format", "k6")
    if not isinstance(request.fmt, str):
        raise ServiceError("'format' must be a string")
    if "clock" in payload:
        request.clock = _parse_float(payload["clock"], "clock")
    if "strict" in payload:
        request.strict = _parse_bool(payload["strict"], "strict")
    if "snapshot_every" in payload:
        request.snapshot_every = _parse_int(payload["snapshot_every"],
                                            "snapshot_every")
    if "backend" in payload:
        request.backend = payload["backend"]
        if not isinstance(request.backend, str):
            raise ServiceError("'backend' must be a string")
    decoder = payload.get("decoder", {})
    if not isinstance(decoder, dict):
        raise ServiceError("'decoder' must be a JSON object")
    if "policy" in decoder:
        request.policy = decoder["policy"]
    for key in ("channel_bits", "rank_bits"):
        if key in decoder:
            setattr(request, key, _parse_int(decoder[key], key))
    if "offset_bits" in decoder:
        request.offset_bits = _parse_int(decoder["offset_bits"],
                                         "offset_bits")
    return _validate(request), text


# ----------------------------------------------------------------------
def trace_result_row(result: TraceResult,
                     commands: int) -> Dict[str, Any]:
    """The JSON shape of one trace aggregate (snapshot or final)."""
    return {
        "device": result.device_name,
        "commands": commands,
        "duration_s": result.duration,
        "energy_j": result.energy,
        "average_power_w": result.average_power,
        "average_current_a": result.average_current,
        "energy_per_bit_pj": _finite(result.energy_per_bit * 1e12),
        "data_bits": result.data_bits,
        "counts": {command.value: count
                   for command, count in result.counts.items()},
        "row_hits": result.row_hits,
        "row_misses": result.row_misses,
        "row_conflicts": result.row_conflicts,
        "row_hit_rate": result.row_hit_rate,
        "breakdown_j": result.breakdown.as_dict(),
    }


def _error_record(index: int, exc: Exception) -> Dict[str, Any]:
    status = exc.status if isinstance(exc, ServiceError) else 400
    record = {"index": index, "error": str(exc), "status": status}
    if (isinstance(exc, ServiceError)
            and exc.retry_after is not None):
        # Shedding-class failures after the stream started cannot
        # carry a Retry-After header; the hint rides in-band.
        record["retry_after"] = exc.retry_after
    return record


def trace_stream_records(session: EvaluationSession,
                         request: TraceRequest,
                         chunks: Iterable[bytes],
                         deadline: Optional[Deadline] = None
                         ) -> Iterator[Dict[str, Any]]:
    """NDJSON records for one streamed trace evaluation.

    Builds the model and decoder eagerly (malformed devices stay
    ordinary 400s), then returns a generator that folds the byte
    stream in ``snapshot_every``-command segments, yielding one
    snapshot record per full segment and a terminal ``done`` record.
    Failures after the first byte was consumed (malformed lines, blown
    deadlines) degrade to in-band error records.
    """
    device = device_from_payload(request.device_payload)
    model = session.model(device)
    decoder = AddressDecoder.from_device(
        device, policy=request.policy,
        channel_bits=request.channel_bits,
        rank_bits=request.rank_bits,
        offset_bits=request.offset_bits)

    def scalar_records(accumulator: TraceAccumulator,
                       lines: Iterator[str]
                       ) -> Iterator[Dict[str, Any]]:
        parsed = iter_records(lines, request.fmt, source="<upload>")
        commands = commands_from_records(parsed, decoder,
                                         request.clock)
        index = 0
        try:
            while True:
                seen = accumulator.commands_seen
                accumulator.feed(itertools.islice(
                    commands, request.snapshot_every))
                if deadline is not None:
                    deadline.check()
                consumed = accumulator.commands_seen - seen
                if consumed < request.snapshot_every:
                    break
                yield {"index": index,
                       "snapshot": trace_result_row(
                           accumulator.snapshot(),
                           accumulator.commands_seen)}
                index += 1
        except (ServiceError, ReproError, ValueError) as exc:
            yield _error_record(index, exc)
            return
        yield {"done": True, "count": accumulator.commands_seen,
               "result": trace_result_row(accumulator.result(),
                                          accumulator.commands_seen)}

    def columnar_records(accumulator: TraceAccumulator,
                         lines: Iterator[str]
                         ) -> Iterator[Dict[str, Any]]:
        # One line yields at least one command, so batching
        # ``snapshot_every`` lines guarantees each full batch crosses
        # the snapshot cadence; the cap keeps batches array-sized.
        batch_lines = min(request.snapshot_every, LINES_PER_BATCH)
        index = 0
        last_snap = 0
        try:
            replayer = ColumnarReplayer(accumulator, request.fmt,
                                        decoder, request.clock,
                                        source="<upload>")
            batch: List[str] = []
            for line in lines:
                batch.append(line)
                if len(batch) < batch_lines:
                    continue
                replayer.feed_lines(batch)
                batch = []
                if deadline is not None:
                    deadline.check()
                if (accumulator.commands_seen - last_snap
                        >= request.snapshot_every):
                    yield {"index": index,
                           "snapshot": trace_result_row(
                               accumulator.snapshot(),
                               accumulator.commands_seen)}
                    last_snap = accumulator.commands_seen
                    index += 1
            if batch:
                replayer.feed_lines(batch)
                if deadline is not None:
                    deadline.check()
        except (ServiceError, ReproError, ValueError) as exc:
            yield _error_record(index, exc)
            return
        yield {"done": True, "count": accumulator.commands_seen,
               "result": trace_result_row(accumulator.result(),
                                          accumulator.commands_seen)}

    def records() -> Iterator[Dict[str, Any]]:
        accumulator = TraceAccumulator(model, strict=request.strict)
        data = (iter_decompressed(chunks) if request.gzipped
                else chunks)
        lines = iter_lines(data)
        columnar = (request.backend in ("auto", "vector")
                    and not request.strict)
        if columnar and not columnar_available():
            record_downgrade()
            columnar = False
        if columnar:
            yield from columnar_records(accumulator, lines)
        else:
            yield from scalar_records(accumulator, lines)

    return records()


def trace_stream_payload(session: EvaluationSession, payload: Any,
                         deadline: Optional[Deadline] = None
                         ) -> Iterator[Dict[str, Any]]:
    """Streaming JSON-mode ``POST /trace``."""
    request, text = parse_trace_payload(payload)
    return trace_stream_records(session, request,
                                [text.encode("utf-8")],
                                deadline=deadline)


def trace_payload(session: EvaluationSession, payload: Any,
                  deadline: Optional[Deadline] = None
                  ) -> Dict[str, Any]:
    """Buffered JSON-mode ``POST /trace``: just the final aggregate."""
    final: Optional[Dict[str, Any]] = None
    for record in trace_stream_payload(session, payload,
                                       deadline=deadline):
        if "error" in record:
            status = record.get("status", 400)
            raise ServiceError(record["error"], status=status)
        if record.get("done"):
            final = record["result"]
    if final is None:  # pragma: no cover - defensive
        raise ServiceError("trace evaluation produced no result")
    return final
