"""HTTP front end of the warm evaluation service.

A :class:`ThreadingHTTPServer` subclass that owns one long-lived
:class:`~repro.engine.session.EvaluationSession` shared by every
request thread (the model cache is thread-safe), so repeated queries
for equal descriptions are answered from memory across requests.

Lifecycle: :func:`create_service` binds the socket (port ``0`` picks
an ephemeral port — tests use this); :meth:`EvaluationService.run`
serves until SIGTERM/SIGINT, then *drains*: queued requests are
rejected (503), admitted requests finish (handler threads are
non-daemon and joined on close) while idle keep-alive connections are
closed so the join cannot hang on a silent peer.  Embedders that
cannot give up the main thread call
:meth:`serve_forever`/:meth:`shutdown` directly.

The protocol is HTTP/1.1 with persistent connections: every response
carries an exact ``Content-Length`` (or chunked framing for streams),
large JSON bodies are gzip-compressed when the client advertises
``Accept-Encoding: gzip``, and a POST that failed before its body was
consumed closes the connection rather than desynchronise the next
request on it.  ``{"stream": true}`` in an ``/evaluate`` or ``/sweep``
body switches the response to chunked NDJSON records
(:mod:`repro.service.streaming`), one per finished device or sweep
row, so long batches deliver results as they complete.
``POST /trace`` (:mod:`repro.service.tracing`) accepts external
memory traces — JSON-wrapped or as a raw, optionally gzipped and
chunk-framed body of unbounded length — and streams incremental
energy/power aggregates back while folding the upload in constant
memory.  ``/jobs`` (POST/GET/DELETE, enabled by ``jobs_dir``) fronts
the durable job layer (:mod:`repro.jobs`): long campaigns submitted
once, journaled at chunk granularity, resumable across crashes.

Scale-out hooks (used by :mod:`repro.service.prefork`): a pre-bound
``listen_socket`` (``SO_REUSEPORT``) can replace the usual bind; a
second *direct* server per worker can share the first's warm state
via ``shared_with``; a :class:`~repro.service.routing.WorkerRegistry`
plus :class:`~repro.service.routing.AffinityRouter` redirect requests
(``307``) to the worker whose caches are warm for the device; and
``GET /stats?scope=cluster`` scatter-gathers every live worker's
counters into one fleet view.  Optional API-key auth
(:mod:`repro.service.auth`) guards everything but ``/healthz``.

Resilience (see :mod:`repro.service.admission`): POST endpoints pass
through an :class:`~repro.service.admission.AdmissionController` — a
bounded in-flight slot count plus a small wait queue — so a saturated
server sheds excess load with ``429``/``503`` and a ``Retry-After``
header instead of piling up work.  Every request gets a deadline
(``--request-timeout``; ``X-Request-Timeout`` header overrides per
request) enforced between model builds, replying ``504`` on a blown
budget.  ``/evaluate`` responses are additionally memoized in a small
LRU (:class:`~repro.service.jsonapi.ResultCache`).  A
:class:`~repro.service.faults.FaultInjector` (inert by default,
configured via the ``REPRO_FAULTS`` environment variable or assigned
by tests) can inject latency, errors and connection resets to prove
all of the above under fire.

The wire protocol is JSON in both directions; failures are JSON too
(``{"error": ...}`` with a 4xx/5xx status) — a malformed request or a
model-layer error never terminates the daemon.
"""

from __future__ import annotations

import dataclasses
import gzip as gzip_module
import json
import logging
import signal
import socket
import struct
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..engine import EngineStats, EvaluationSession, merge_stats
from ..engine.cache import DEFAULT_CAPACITY
from ..errors import ReproError, ServiceError
from .admission import (AdmissionController, AdmissionShed, Deadline,
                        DeadlineExceeded, DeadlineSession,
                        ServiceLimits)
from .auth import API_KEY_HEADER, ApiKeyAuth
from .faults import FaultInjector, InjectedFault
from .jsonapi import ResultCache, evaluate_payload, sweep_payload
from .jsonapi import stats_payload as engine_stats_payload
from .routing import (RESULT_CACHE_SUM_KEYS, WORKER_HEADER,
                      AffinityRouter, WorkerRegistry,
                      fetch_worker_stats, merge_admission,
                      merge_request_counts, sum_counter_dicts)
from .streaming import (STREAM_CONTENT_TYPE, evaluate_stream,
                        sweep_stream, wants_stream)
from .tracing import (parse_trace_query, trace_payload,
                      trace_stream_payload, trace_stream_records)

_LOG = logging.getLogger("repro.service")

#: Largest accepted request body; bigger posts are refused with 413
#: so one misbehaving client cannot balloon the daemon.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Per-request deadline override header (seconds, e.g. ``0.5``).
TIMEOUT_HEADER = "X-Request-Timeout"

#: Smallest JSON body worth gzip-compressing; tiny replies cost more
#: in header overhead than the compression saves.
GZIP_MIN_BYTES = 2048

#: Top-level service counters that sum meaningfully across workers.
SERVICE_SUM_KEYS = ("requests_total", "errors", "timeouts",
                    "redirects", "streams", "stream_aborts",
                    "gzipped", "auth_failures")


class ServiceCounters:
    """Lock-guarded request tallies, shareable between twin servers.

    A pre-fork worker runs two :class:`EvaluationService` instances
    (shared port + private direct port) over one warm session; both
    must tally into the *same* counters for ``/stats`` to add up, so
    the counters live in this aliasable object rather than as plain
    integer attributes of either server.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.request_counts: Dict[str, int] = {}
        self.error_count = 0
        self.timeout_count = 0
        self.redirects = 0
        self.streams = 0
        self.stream_aborts = 0
        self.gzipped = 0
        self.auth_failures = 0

    def count_request(self, path: str, status: int) -> None:
        """Tally one answered request (any status) per endpoint."""
        with self._lock:
            self.request_counts[path] = \
                self.request_counts.get(path, 0) + 1
            if status >= 400:
                self.error_count += 1

    def count_timeout(self) -> None:
        """Tally one request aborted on its deadline (504)."""
        with self._lock:
            self.timeout_count += 1

    def count_redirect(self) -> None:
        """Tally one affinity ``307`` (not a served request)."""
        with self._lock:
            self.redirects += 1

    def count_stream(self) -> None:
        with self._lock:
            self.streams += 1

    def count_stream_abort(self) -> None:
        """Tally one stream cut short by the client disconnecting."""
        with self._lock:
            self.stream_aborts += 1

    def count_gzip(self) -> None:
        with self._lock:
            self.gzipped += 1

    def count_auth_failure(self) -> None:
        with self._lock:
            self.auth_failures += 1

    def snapshot(self) -> Dict[str, Any]:
        """All tallies at once, under one lock acquisition."""
        with self._lock:
            return {
                "requests": dict(self.request_counts),
                "errors": self.error_count,
                "timeouts": self.timeout_count,
                "redirects": self.redirects,
                "streams": self.streams,
                "stream_aborts": self.stream_aborts,
                "gzipped": self.gzipped,
                "auth_failures": self.auth_failures,
            }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the server's shared session."""

    server_version = "repro-service/1.2"
    protocol_version = "HTTP/1.1"

    #: Socket timeout: an idle keep-alive connection is dropped after
    #: this many silent seconds (also bounds half-sent requests).
    timeout = 30.0

    #: TCP_NODELAY: headers and body are separate writes, and on a
    #: reused keep-alive connection Nagle would hold the body until
    #: the peer's delayed ACK (~40 ms per warm request).  Streaming
    #: chunks need immediate flushes for the same reason.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # Connection lifecycle: the server tracks live handlers so a
    # drain can close *idle* keep-alive connections instead of
    # waiting out their socket timeout in the non-daemon join.
    # ------------------------------------------------------------------
    def setup(self) -> None:
        super().setup()
        self.busy = False
        self.server.track_handler(self)

    def finish(self) -> None:
        self.server.forget_handler(self)
        super().finish()

    def handle_one_request(self) -> None:
        if self.server.draining:
            self.close_connection = True
            return
        try:
            super().handle_one_request()
        finally:
            self.busy = False
        if self.server.draining:
            self.close_connection = True

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self.busy = True
        parts = urlsplit(self.path)
        path = parts.path
        if not self._authorized(path):
            return
        try:
            if self.server.faults.before_request(path) == "reset":
                self._abort_connection()
                return
            if path == "/healthz":
                self._reply(200, self.server.health_payload())
            elif path == "/stats":
                query = parse_qs(parts.query)
                scope = query.get("scope", ["local"])[-1]
                if scope == "cluster":
                    body = self.server.cluster_stats_payload()
                else:
                    body = self.server.stats_payload()
                self._reply(200, body)
            elif path == "/jobs" or path.startswith("/jobs/"):
                self._reply(200, self.server.job_payload(path))
            else:
                self._reply(404, {"error": f"unknown path {path!r}"})
        except InjectedFault as exc:
            self._reply(exc.status or 500, {"error": str(exc)})
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})

    def do_DELETE(self) -> None:
        self.busy = True
        path = urlsplit(self.path).path
        if not self._authorized(path):
            return
        try:
            if self.server.faults.before_request(path) == "reset":
                self._abort_connection()
                return
            parts = path.split("/")
            if (len(parts) == 3 and parts[1] == "jobs"
                    and parts[2]):
                self._reply(200, self.server.cancel_job(parts[2]))
            else:
                self._reply(404, {"error": f"unknown path {path!r}"})
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})

    def do_POST(self) -> None:
        self.busy = True
        path = urlsplit(self.path).path
        if not self._authorized(path):
            return
        if path not in ("/evaluate", "/sweep", "/trace", "/jobs"):
            self._reply(404, {"error": f"unknown path {path!r}"})
            return
        server = self.server
        try:
            deadline = self._request_deadline()
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})
            return
        try:
            server.admission.acquire(deadline)
        except AdmissionShed as exc:
            self._reply(exc.status, {"error": str(exc)},
                        retry_after=server.limits.retry_after)
            return
        except DeadlineExceeded as exc:
            server.count_timeout()
            self._reply(504, {"error": str(exc)})
            return
        try:
            try:
                if server.faults.before_request(path) == "reset":
                    self._abort_connection()
                    return
                if path == "/trace":
                    self._handle_trace(deadline)
                    return
                payload = self._read_json()
                if path == "/jobs":
                    # Submission is cheap (validation only); the job
                    # itself runs asynchronously on the manager.
                    self._reply(200, server.submit_job(payload))
                    return
                location = server.affinity_redirect(
                    path, payload, self.headers)
                if location is not None:
                    self._redirect(location)
                    return
                session: EvaluationSession = server.session
                if deadline is not None:
                    # A budget blown before evaluation even starts
                    # (slow reads, injected latency) is a 504 even
                    # when the answer would be memoized.
                    deadline.check()
                    session = DeadlineSession(session, deadline)
                if wants_stream(payload):
                    if self.request_version == "HTTP/1.0":
                        raise ServiceError(
                            "streaming requires an HTTP/1.1 client")
                    if path == "/evaluate":
                        records = evaluate_stream(session, payload)
                    else:
                        records = sweep_stream(session, payload)
                    self._stream_reply(path, records)
                    return
                if path == "/evaluate":
                    body = evaluate_payload(
                        session, payload, cache=server.result_cache)
                else:
                    body = sweep_payload(session, payload)
            finally:
                server.admission.release()
        except DeadlineExceeded as exc:
            server.count_timeout()
            self._reply(504, {"error": str(exc)})
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.exception("unhandled error on %s", path)
            self._reply(500,
                        {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, body)

    # ------------------------------------------------------------------
    def _handle_trace(self, deadline: Optional[Deadline]) -> None:
        """``POST /trace``: JSON mode or raw streaming upload.

        JSON bodies carry the trace in a ``"text"`` key (bounded by
        the normal body cap) and answer buffered or streamed like the
        other endpoints.  Any other content type is treated as the
        trace itself — optionally gzipped and chunk-framed, exempt
        from ``MAX_BODY_BYTES`` because it is folded incrementally in
        constant memory — with parameters in the query string and an
        NDJSON snapshot stream as the only response shape.
        """
        server = self.server
        content_type = (self.headers.get("Content-Type") or "")
        content_type = content_type.split(";")[0].strip().lower()
        if content_type == "application/json":
            payload = self._read_json()
            if deadline is not None:
                deadline.check()
            if wants_stream(payload):
                if self.request_version == "HTTP/1.0":
                    raise ServiceError(
                        "streaming requires an HTTP/1.1 client")
                records = trace_stream_payload(server.session, payload,
                                               deadline=deadline)
                self._stream_reply("/trace", records)
                return
            self._reply(200, trace_payload(server.session, payload,
                                           deadline=deadline))
            return
        if self.request_version == "HTTP/1.0":
            raise ServiceError(
                "raw trace uploads require an HTTP/1.1 client")
        request = parse_trace_query(
            parse_qs(urlsplit(self.path).query))
        encoding = (self.headers.get("Content-Encoding")
                    or "").strip().lower()
        if encoding == "gzip":
            request.gzipped = True
        elif encoding:
            raise ServiceError(
                f"unsupported Content-Encoding {encoding!r}")
        if deadline is not None:
            deadline.check()
        records = trace_stream_records(server.session, request,
                                       self._iter_request_body(),
                                       deadline=deadline)
        # The response interleaves with body consumption; an in-band
        # error can leave unread body bytes, so never reuse the
        # connection after a raw upload.
        self.close_connection = True
        self._stream_reply("/trace", records)

    def _iter_request_body(self):
        """The request body as a lazy byte-chunk stream.

        Honors ``Transfer-Encoding: chunked`` (clients streaming a
        trace of unknown length) and plain ``Content-Length`` bodies;
        either way at most 64 KiB is resident at once.
        """
        transfer = (self.headers.get("Transfer-Encoding")
                    or "").lower()
        if "chunked" in transfer:
            return self._iter_chunked_body()
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ServiceError(
                "trace upload needs Content-Length or "
                "Transfer-Encoding: chunked")
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError(
                f"malformed Content-Length {raw_length!r}") from None
        if length < 0:
            raise ServiceError(f"negative Content-Length {length}")
        return self._iter_sized_body(length)

    def _iter_sized_body(self, length: int):
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                raise ServiceError(
                    f"request body truncated: got "
                    f"{length - remaining} of {length} bytes")
            remaining -= len(chunk)
            yield chunk

    def _iter_chunked_body(self):
        """Decode ``Transfer-Encoding: chunked`` frames from rfile."""
        while True:
            line = self.rfile.readline(1026)
            if not line:
                raise ServiceError("chunked request body truncated")
            try:
                size = int(line.split(b";", 1)[0].strip() or b"x", 16)
            except ValueError:
                raise ServiceError(
                    "malformed chunk-size line in request body"
                ) from None
            if size == 0:
                # Consume optional trailers up to the blank line.
                while True:
                    trailer = self.rfile.readline(1026)
                    if trailer in (b"\r\n", b"\n", b""):
                        return
                continue
            remaining = size
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    raise ServiceError(
                        "chunked request body truncated")
                remaining -= len(chunk)
                yield chunk
            self.rfile.read(2)  # CRLF after each chunk's data

    # ------------------------------------------------------------------
    def _authorized(self, path: str) -> bool:
        """Check the API key; reply ``401`` (and ``False``) if bad.

        ``/healthz`` stays open so liveness probes need no secret.
        The refusal closes the connection: a POST body may still be
        sitting unread on the socket, which would desynchronise the
        next request of a keep-alive connection.
        """
        auth = self.server.auth
        if auth is None or path == "/healthz":
            return True
        if auth.check(self.headers.get(API_KEY_HEADER)):
            return True
        self.server.counters.count_auth_failure()
        self.close_connection = True
        self._reply(401, {"error": "missing or invalid API key"})
        return False

    def _request_deadline(self) -> Optional[Deadline]:
        """The request's deadline: header override, server default,
        or ``None`` when timeouts are disabled."""
        budget = self.server.limits.request_timeout
        header = self.headers.get(TIMEOUT_HEADER)
        if header is not None:
            try:
                budget = float(header)
            except ValueError:
                raise ServiceError(
                    f"invalid {TIMEOUT_HEADER} header {header!r}: "
                    "expected seconds as a number") from None
            if not budget > 0.0:
                raise ServiceError(
                    f"{TIMEOUT_HEADER} must be positive seconds")
        if budget and budget > 0.0:
            return Deadline(budget)
        return None

    def _read_body(self, length: int) -> bytes:
        """Exactly ``length`` body bytes, or 400 on a short read.

        ``rfile.read(n)`` may legally return fewer bytes than asked
        (slow or half-closed peers), so loop until the declared
        ``Content-Length`` arrived; a connection that drops early is a
        client error, not an internal one.
        """
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                raise ServiceError(
                    f"request body truncated: got "
                    f"{length - remaining} of {length} bytes")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_json(self) -> Any:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ServiceError("request needs a JSON body")
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError(
                f"malformed Content-Length {raw_length!r}") from None
        if length < 0:
            raise ServiceError(
                f"negative Content-Length {length}")
        if length == 0:
            raise ServiceError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self._read_body(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc

    def _accepts_gzip(self) -> bool:
        accept = self.headers.get("Accept-Encoding", "")
        return "gzip" in accept.lower()

    def _reply(self, status: int, payload: Dict[str, Any],
               retry_after: Optional[float] = None) -> None:
        server = self.server
        if retry_after is None and status in (429, 503):
            # Every shedding-class reply carries the Retry-After
            # hint, whatever code path produced it (admission,
            # injected faults, disabled subsystems) — clients size
            # their backoff from it.
            retry_after = server.limits.retry_after
        # Tally before the body goes out: a client that sees this
        # response and immediately asks /stats must find the request
        # already counted.
        server.count_request(urlsplit(self.path).path, status)
        blob = json.dumps(payload).encode("utf-8")
        encoding = None
        if (len(blob) >= server.gzip_min_bytes
                and self._accepts_gzip()):
            # mtime=0 keeps the compressed bytes deterministic, so
            # equal answers from different workers stay bit-identical.
            blob = gzip_module.compress(blob, mtime=0)
            encoding = "gzip"
            server.counters.count_gzip()
        if status >= 400 and self.command == "POST":
            # The request body may not have been consumed (shed, 401,
            # oversized post): reusing this connection would read the
            # leftover body as the next request line.
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if encoding is not None:
            self.send_header("Content-Encoding", encoding)
            self.send_header("Vary", "Accept-Encoding")
        if retry_after is not None:
            # RFC 7231 wants integral delay-seconds; round up so the
            # hint never understates the wait.
            self.send_header("Retry-After",
                             str(max(0, int(retry_after + 0.999))))
        self.send_header(WORKER_HEADER, str(server.worker_id))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    def _redirect(self, location: str) -> None:
        """``307`` to the preferred worker (affinity routing).

        Counted as a redirect, not as a served request: the target
        worker tallies the request when it answers it.
        """
        server = self.server
        server.counters.count_redirect()
        blob = json.dumps({"redirect": location}).encode("utf-8")
        self.send_response(307)
        self.send_header("Location", location)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.send_header(WORKER_HEADER, str(server.worker_id))
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream_reply(self, path: str, records: Any) -> None:
        """Send NDJSON records as they arrive, chunk-framed.

        Each record is one chunk, flushed immediately, so the client
        sees the first result while the rest of the batch is still
        evaluating.  A client that disconnects mid-stream just ends
        the stream (tallied in ``stream_aborts``).
        """
        server = self.server
        server.counters.count_stream()
        server.count_request(path, 200)
        self.send_response(200)
        self.send_header("Content-Type", STREAM_CONTENT_TYPE)
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header(WORKER_HEADER, str(server.worker_id))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        try:
            for record in records:
                blob = json.dumps(record).encode("utf-8") + b"\n"
                self._write_chunk(blob)
            self._write_chunk(b"")  # terminal zero-length chunk
        except (BrokenPipeError, ConnectionResetError, OSError):
            server.counters.count_stream_abort()
            self.close_connection = True

    def _write_chunk(self, blob: bytes) -> None:
        self.wfile.write(b"%x\r\n" % len(blob) + blob + b"\r\n")
        self.wfile.flush()

    def _abort_connection(self) -> None:
        """Drop the connection without a response (injected reset)."""
        self.close_connection = True
        try:
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0))
        except OSError:  # pragma: no cover - platform-dependent
            pass
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to ``logging`` instead of stderr."""
        _LOG.debug("%s %s", self.address_string(), format % args)


class EvaluationService(ThreadingHTTPServer):
    """A long-lived evaluation daemon holding one warm session."""

    #: Handler threads are joined on close so in-flight requests
    #: drain before the process exits (graceful SIGTERM semantics).
    daemon_threads = False
    block_on_close = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 8080),
                 capacity: int = DEFAULT_CAPACITY,
                 cache_dir: Optional[str] = None,
                 limits: Optional[ServiceLimits] = None,
                 auth: Optional[ApiKeyAuth] = None,
                 worker_id: int = 0,
                 registry: Optional[WorkerRegistry] = None,
                 affinity: bool = True,
                 listen_socket: Optional[socket.socket] = None,
                 shared_with: Optional["EvaluationService"] = None,
                 gzip_min_bytes: int = GZIP_MIN_BYTES,
                 jobs_dir: Optional[str] = None,
                 job_ttl: float = 3600.0):
        if listen_socket is None:
            super().__init__(address, ServiceHandler)
        else:
            # A pre-bound socket (SO_REUSEPORT sibling or inherited
            # from the pre-fork supervisor) replaces the usual bind.
            super().__init__(address, ServiceHandler,
                             bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            self.server_name = socket.getfqdn(self.server_address[0])
            self.server_port = self.server_address[1]
            self.server_activate()
        self.auth = auth
        self.worker_id = worker_id
        self.registry = registry
        self.gzip_min_bytes = gzip_min_bytes
        self.router = (AffinityRouter(worker_id, registry,
                                      enabled=affinity)
                       if registry is not None else None)
        self.draining = False
        self._handlers_lock = threading.Lock()
        self._handlers: set = set()
        if shared_with is not None:
            # The direct twin of a pre-fork worker: same warm state,
            # same counters, different socket.
            self.session = shared_with.session
            self.limits = shared_with.limits
            self.admission = shared_with.admission
            self.result_cache = shared_with.result_cache
            self.faults = shared_with.faults
            self.counters = shared_with.counters
            self.started_monotonic = shared_with.started_monotonic
            self.started_unix = shared_with.started_unix
            self.jobs = shared_with.jobs
            self._owns_jobs = False
            return
        self.session = EvaluationSession(capacity=capacity,
                                         cache_dir=cache_dir)
        self.limits = limits if limits is not None else ServiceLimits()
        self.admission = AdmissionController(
            capacity=self.limits.max_inflight,
            queue_limit=self.limits.max_queue,
            queue_timeout=self.limits.queue_timeout)
        self.result_cache = ResultCache(self.limits.result_cache)
        self.faults = FaultInjector.from_env()
        self.counters = ServiceCounters()
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()
        # Durable jobs need a durable directory: enabled when the
        # caller names one (the CLI defaults it to
        # ``<cache-dir>/jobs``), otherwise /jobs answers 503 rather
        # than journaling into a directory that vanishes with the
        # process.
        self.jobs = None
        self._owns_jobs = False
        if jobs_dir is not None:
            # Imported lazily: repro.jobs itself imports service
            # submodules for payload formatting.
            from ..jobs.manager import JobManager
            self.jobs = JobManager(jobs_dir, session=self.session,
                                   worker_id=worker_id,
                                   faults=self.faults, ttl=job_ttl)
            self._owns_jobs = True
            self.jobs.start()

    # ------------------------------------------------------------------
    def count_request(self, path: str, status: int) -> None:
        """Tally one answered request (any status) per endpoint."""
        self.counters.count_request(path, status)

    def count_timeout(self) -> None:
        """Tally one request aborted on its deadline (504)."""
        self.counters.count_timeout()

    @property
    def request_counts(self) -> Dict[str, int]:
        return self.counters.request_counts

    @property
    def error_count(self) -> int:
        return self.counters.error_count

    @property
    def timeout_count(self) -> int:
        return self.counters.timeout_count

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    def affinity_redirect(self, path: str, payload: Any,
                          headers: Any) -> Optional[str]:
        """Where to bounce this request, or ``None`` to serve here."""
        if self.router is None:
            return None
        return self.router.redirect_for(path, payload, headers)

    def health_payload(self) -> Dict[str, Any]:
        return {"status": "ok",
                "uptime_seconds": self.uptime_seconds,
                "worker": self.worker_id}

    # ------------------------------------------------------------------
    # Durable jobs (POST/GET/DELETE /jobs — see docs/JOBS.md).
    # ------------------------------------------------------------------
    def _require_jobs(self):
        if self.jobs is None:
            raise ServiceError(
                "job subsystem disabled: start the service with "
                "--cache-dir or --jobs-dir", status=503)
        return self.jobs

    def submit_job(self, payload: Any) -> Dict[str, Any]:
        """``POST /jobs``: validate, persist, kick the manager."""
        return self._require_jobs().submit(payload)

    def job_payload(self, path: str) -> Dict[str, Any]:
        """``GET /jobs`` (listing), ``/jobs/<id>`` (status + partial
        aggregates), ``/jobs/<id>/result`` (the final result)."""
        jobs = self._require_jobs()
        parts = path.rstrip("/").split("/")
        if len(parts) == 2:
            listing = jobs.list_jobs()
            return {"count": len(listing), "jobs": listing}
        if len(parts) == 3:
            return jobs.status(parts[2])
        if len(parts) == 4 and parts[3] == "result":
            result = jobs.result(parts[2])
            if result is None:
                status = jobs.status(parts[2])
                raise ServiceError(
                    f"job {parts[2]!r} has no result (state "
                    f"{status.get('state')!r})", status=409)
            return {"job": parts[2], "result": result}
        raise ServiceError(f"unknown path {path!r}", status=404)

    def cancel_job(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /jobs/<id>``: cooperative cancellation."""
        return self._require_jobs().cancel(job_id)

    def stats_payload(self) -> Dict[str, Any]:
        """``GET /stats``: engine counters + service bookkeeping."""
        body = engine_stats_payload(self.session)
        tallies = self.counters.snapshot()
        body.update({
            "status": "ok",
            "scope": "local",
            "worker": self.worker_id,
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self.started_unix,
            "requests": tallies["requests"],
            "requests_total": sum(tallies["requests"].values()),
            "errors": tallies["errors"],
            "timeouts": tallies["timeouts"],
            "redirects": tallies["redirects"],
            "streams": tallies["streams"],
            "stream_aborts": tallies["stream_aborts"],
            "gzipped": tallies["gzipped"],
            "auth_failures": tallies["auth_failures"],
            "admission": self.admission.snapshot(),
            "result_cache": self.result_cache.snapshot(),
        })
        if self.jobs is not None:
            body["jobs"] = self.jobs.counters()
        if self.faults.active:
            body["faults"] = self.faults.snapshot()
        return body

    def cluster_stats_payload(self) -> Dict[str, Any]:
        """``GET /stats?scope=cluster``: every live worker, merged.

        The answering worker fetches each registered sibling's local
        ``/stats`` over its direct port and sums what sums: engine
        counters merge through
        :func:`~repro.engine.cache.merge_stats` (fleet capacity is
        the sum of per-worker capacities), admission and result-cache
        counters add key-wise, per-path request counts add path-wise.
        Unreachable siblings are reported, not fatal.
        """
        local = self.stats_payload()
        if self.registry is None:
            body = dict(local)
            body["scope"] = "cluster"
            body["workers"] = [self.worker_id]
            body["workers_unreachable"] = []
            return body
        payloads: Dict[int, Dict[str, Any]] = {self.worker_id: local}
        unreachable: List[int] = []
        key = self.auth.any_key() if self.auth is not None else None
        for wid, entry in sorted(
                self.registry.entries(refresh=True).items()):
            if wid == self.worker_id:
                continue
            host = entry.get("direct_host", "127.0.0.1")
            url = f"http://{host}:{entry['direct_port']}/stats"
            try:
                payloads[wid] = fetch_worker_stats(url, api_key=key)
            except Exception:
                unreachable.append(wid)
        ordered = [payloads[wid] for wid in sorted(payloads)]
        stats_list = [EngineStats.from_dict(body.get("engine", {}))
                      for body in ordered]
        merged = stats_list[0]
        for extra in stats_list[1:]:
            merged = merge_stats(merged, extra)
        merged = dataclasses.replace(
            merged,
            capacity=sum(stats.capacity for stats in stats_list))
        engine: Dict[str, Any] = dataclasses.asdict(merged)
        engine["hit_rate"] = merged.hit_rate
        engine["lookups"] = merged.lookups
        engine["stage_hit_rate"] = merged.stage_hit_rate
        engine["stage_lookups"] = merged.stage_lookups
        body = {
            "status": "ok",
            "scope": "cluster",
            "worker": self.worker_id,
            "workers": sorted(payloads),
            "workers_unreachable": unreachable,
            "uptime_seconds": self.uptime_seconds,
            "engine": engine,
            "requests": merge_request_counts(
                [b.get("requests", {}) for b in ordered]),
            "admission": merge_admission(
                [b.get("admission", {}) for b in ordered]),
            "result_cache": sum_counter_dicts(
                [b.get("result_cache", {}) for b in ordered],
                RESULT_CACHE_SUM_KEYS),
        }
        body.update(sum_counter_dicts(ordered, SERVICE_SUM_KEYS))
        return body

    # ------------------------------------------------------------------
    # Handler tracking: lets a drain close idle keep-alive
    # connections instead of waiting out their socket timeout.
    # ------------------------------------------------------------------
    def track_handler(self, handler: ServiceHandler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def forget_handler(self, handler: ServiceHandler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    def _close_idle_connections(self) -> None:
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            if getattr(handler, "busy", False):
                continue  # mid-request: let it finish and drain
            try:
                handler.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving: reject queued work, let admitted work finish.

        Draining *before* the serve loop stops means requests waiting
        for an in-flight slot get an orderly 503 + ``Retry-After``
        instead of a dead socket.  Idle persistent connections are
        then unblocked so the non-daemon handler join in
        ``server_close`` cannot hang on a silent keep-alive peer.
        """
        self.admission.begin_drain()
        self.draining = True
        super().shutdown()
        self._close_idle_connections()

    def server_close(self) -> None:
        """Close the socket and stop the owned job manager (if any).

        Runners finish (or suspend back to ``pending``) before the
        process exits, so a graceful stop never strands a claimed
        job in the ``running`` state.
        """
        if getattr(self, "_owns_jobs", False) and self.jobs is not None:
            self.jobs.stop()
            self._owns_jobs = False
        super().server_close()

    def request_shutdown(self) -> None:
        """Stop the serve loop; safe to call from any thread.

        ``shutdown()`` blocks until the loop exits, so calling it on
        the thread *running* ``serve_forever`` (e.g. a signal handler
        interrupting the main thread) would deadlock — it is
        dispatched to a helper thread instead.
        """
        threading.Thread(target=self.shutdown,
                         name="repro-service-shutdown",
                         daemon=True).start()

    def _handle_signal(self, signum: int, frame: Any) -> None:
        _LOG.info("signal %d received: draining and shutting down",
                  signum)
        self.request_shutdown()

    def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT; drain, close, return.

        Installing signal handlers requires the main thread; pass
        ``install_signals=False`` when serving from a worker thread
        (tests) and use :meth:`shutdown` directly instead.
        """
        previous = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum,
                                                 self._handle_signal)
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            for signum, handler in previous.items():
                signal.signal(signum, handler)


def create_service(host: str = "127.0.0.1", port: int = 8080,
                   capacity: int = DEFAULT_CAPACITY,
                   cache_dir: Optional[str] = None,
                   limits: Optional[ServiceLimits] = None,
                   auth: Optional[ApiKeyAuth] = None,
                   worker_id: int = 0,
                   registry: Optional[WorkerRegistry] = None,
                   affinity: bool = True,
                   listen_socket: Optional[socket.socket] = None,
                   jobs_dir: Optional[str] = None,
                   job_ttl: float = 3600.0
                   ) -> EvaluationService:
    """A bound, not-yet-serving service (``port=0`` = ephemeral).

    The caller decides how to serve: ``service.run()`` for the CLI
    (signals + drain), ``service.serve_forever()`` on a thread for
    tests and embedders.  ``service.server_port`` holds the bound
    port either way.  ``limits`` bounds concurrency, queueing and
    per-request time (:class:`~repro.service.admission.ServiceLimits`).
    The scale-out parameters (``auth``, ``worker_id``, ``registry``,
    ``affinity``, ``listen_socket``) are wired by
    :mod:`repro.service.prefork`; single-process embedders can ignore
    them.
    """
    return EvaluationService((host, port), capacity=capacity,
                             cache_dir=cache_dir, limits=limits,
                             auth=auth, worker_id=worker_id,
                             registry=registry, affinity=affinity,
                             listen_socket=listen_socket,
                             jobs_dir=jobs_dir, job_ttl=job_ttl)
