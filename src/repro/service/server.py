"""HTTP front end of the warm evaluation service.

A :class:`ThreadingHTTPServer` subclass that owns one long-lived
:class:`~repro.engine.session.EvaluationSession` shared by every
request thread (the model cache is thread-safe), so repeated queries
for equal descriptions are answered from memory across requests.

Lifecycle: :func:`create_service` binds the socket (port ``0`` picks
an ephemeral port — tests use this); :meth:`EvaluationService.run`
serves until SIGTERM/SIGINT, then *drains*: queued requests are
rejected (503), admitted requests finish (handler threads are
non-daemon and joined on close) before the process exits.  Embedders
that cannot give up the main thread call
:meth:`serve_forever`/:meth:`shutdown` directly.

Resilience (see :mod:`repro.service.admission`): POST endpoints pass
through an :class:`~repro.service.admission.AdmissionController` — a
bounded in-flight slot count plus a small wait queue — so a saturated
server sheds excess load with ``429``/``503`` and a ``Retry-After``
header instead of piling up work.  Every request gets a deadline
(``--request-timeout``; ``X-Request-Timeout`` header overrides per
request) enforced between model builds, replying ``504`` on a blown
budget.  ``/evaluate`` responses are additionally memoized in a small
LRU (:class:`~repro.service.jsonapi.ResultCache`).  A
:class:`~repro.service.faults.FaultInjector` (inert by default,
configured via the ``REPRO_FAULTS`` environment variable or assigned
by tests) can inject latency, errors and connection resets to prove
all of the above under fire.

The wire protocol is JSON in both directions; failures are JSON too
(``{"error": ...}`` with a 4xx/5xx status) — a malformed request or a
model-layer error never terminates the daemon.
"""

from __future__ import annotations

import json
import logging
import signal
import socket
import struct
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..engine import EvaluationSession
from ..engine.cache import DEFAULT_CAPACITY
from ..errors import ReproError, ServiceError
from .admission import (AdmissionController, AdmissionShed, Deadline,
                        DeadlineExceeded, DeadlineSession,
                        ServiceLimits)
from .faults import FaultInjector, InjectedFault
from .jsonapi import ResultCache, evaluate_payload, sweep_payload
from .jsonapi import stats_payload as engine_stats_payload

_LOG = logging.getLogger("repro.service")

#: Largest accepted request body; bigger posts are refused with 413
#: so one misbehaving client cannot balloon the daemon.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Per-request deadline override header (seconds, e.g. ``0.5``).
TIMEOUT_HEADER = "X-Request-Timeout"


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the server's shared session."""

    server_version = "repro-service/1.1"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        try:
            if self.server.faults.before_request(path) == "reset":
                self._abort_connection()
                return
            if path == "/healthz":
                self._reply(200, self.server.health_payload())
            elif path == "/stats":
                self._reply(200, self.server.stats_payload())
            else:
                self._reply(404, {"error": f"unknown path {path!r}"})
        except InjectedFault as exc:
            self._reply(exc.status or 500, {"error": str(exc)})

    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path not in ("/evaluate", "/sweep"):
            self._reply(404, {"error": f"unknown path {path!r}"})
            return
        server = self.server
        try:
            deadline = self._request_deadline()
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})
            return
        try:
            server.admission.acquire(deadline)
        except AdmissionShed as exc:
            self._reply(exc.status, {"error": str(exc)},
                        retry_after=server.limits.retry_after)
            return
        except DeadlineExceeded as exc:
            server.count_timeout()
            self._reply(504, {"error": str(exc)})
            return
        try:
            try:
                if server.faults.before_request(path) == "reset":
                    self._abort_connection()
                    return
                payload = self._read_json()
                session: EvaluationSession = server.session
                if deadline is not None:
                    # A budget blown before evaluation even starts
                    # (slow reads, injected latency) is a 504 even
                    # when the answer would be memoized.
                    deadline.check()
                    session = DeadlineSession(session, deadline)
                if path == "/evaluate":
                    body = evaluate_payload(
                        session, payload, cache=server.result_cache)
                else:
                    body = sweep_payload(session, payload)
            finally:
                server.admission.release()
        except DeadlineExceeded as exc:
            server.count_timeout()
            self._reply(504, {"error": str(exc)})
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.exception("unhandled error on %s", path)
            self._reply(500,
                        {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, body)

    # ------------------------------------------------------------------
    def _request_deadline(self) -> Optional[Deadline]:
        """The request's deadline: header override, server default,
        or ``None`` when timeouts are disabled."""
        budget = self.server.limits.request_timeout
        header = self.headers.get(TIMEOUT_HEADER)
        if header is not None:
            try:
                budget = float(header)
            except ValueError:
                raise ServiceError(
                    f"invalid {TIMEOUT_HEADER} header {header!r}: "
                    "expected seconds as a number") from None
            if not budget > 0.0:
                raise ServiceError(
                    f"{TIMEOUT_HEADER} must be positive seconds")
        if budget and budget > 0.0:
            return Deadline(budget)
        return None

    def _read_body(self, length: int) -> bytes:
        """Exactly ``length`` body bytes, or 400 on a short read.

        ``rfile.read(n)`` may legally return fewer bytes than asked
        (slow or half-closed peers), so loop until the declared
        ``Content-Length`` arrived; a connection that drops early is a
        client error, not an internal one.
        """
        chunks = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                raise ServiceError(
                    f"request body truncated: got "
                    f"{length - remaining} of {length} bytes")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_json(self) -> Any:
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            raise ServiceError("request needs a JSON body")
        try:
            length = int(raw_length)
        except ValueError:
            raise ServiceError(
                f"malformed Content-Length {raw_length!r}") from None
        if length < 0:
            raise ServiceError(
                f"negative Content-Length {length}")
        if length == 0:
            raise ServiceError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self._read_body(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc

    def _reply(self, status: int, payload: Dict[str, Any],
               retry_after: Optional[float] = None) -> None:
        # Tally before the body goes out: a client that sees this
        # response and immediately asks /stats must find the request
        # already counted.
        self.server.count_request(urlsplit(self.path).path, status)
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        if retry_after is not None:
            # RFC 7231 wants integral delay-seconds; round up so the
            # hint never understates the wait.
            self.send_header("Retry-After",
                             str(max(0, int(retry_after + 0.999))))
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    def _abort_connection(self) -> None:
        """Drop the connection without a response (injected reset)."""
        self.close_connection = True
        try:
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0))
        except OSError:  # pragma: no cover - platform-dependent
            pass
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to ``logging`` instead of stderr."""
        _LOG.debug("%s %s", self.address_string(), format % args)


class EvaluationService(ThreadingHTTPServer):
    """A long-lived evaluation daemon holding one warm session."""

    #: Handler threads are joined on close so in-flight requests
    #: drain before the process exits (graceful SIGTERM semantics).
    daemon_threads = False
    block_on_close = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 8080),
                 capacity: int = DEFAULT_CAPACITY,
                 cache_dir: Optional[str] = None,
                 limits: Optional[ServiceLimits] = None):
        super().__init__(address, ServiceHandler)
        self.session = EvaluationSession(capacity=capacity,
                                         cache_dir=cache_dir)
        self.limits = limits if limits is not None else ServiceLimits()
        self.admission = AdmissionController(
            capacity=self.limits.max_inflight,
            queue_limit=self.limits.max_queue,
            queue_timeout=self.limits.queue_timeout)
        self.result_cache = ResultCache(self.limits.result_cache)
        self.faults = FaultInjector.from_env()
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()
        self._counts_lock = threading.Lock()
        self.request_counts: Dict[str, int] = {}
        self.error_count = 0
        self.timeout_count = 0

    # ------------------------------------------------------------------
    def count_request(self, path: str, status: int) -> None:
        """Tally one answered request (any status) per endpoint."""
        with self._counts_lock:
            self.request_counts[path] = \
                self.request_counts.get(path, 0) + 1
            if status >= 400:
                self.error_count += 1

    def count_timeout(self) -> None:
        """Tally one request aborted on its deadline (504)."""
        with self._counts_lock:
            self.timeout_count += 1

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    def health_payload(self) -> Dict[str, Any]:
        return {"status": "ok",
                "uptime_seconds": self.uptime_seconds}

    def stats_payload(self) -> Dict[str, Any]:
        """``GET /stats``: engine counters + service bookkeeping."""
        body = engine_stats_payload(self.session)
        with self._counts_lock:
            counts = dict(self.request_counts)
            errors = self.error_count
            timeouts = self.timeout_count
        body.update({
            "status": "ok",
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self.started_unix,
            "requests": counts,
            "requests_total": sum(counts.values()),
            "errors": errors,
            "timeouts": timeouts,
            "admission": self.admission.snapshot(),
            "result_cache": self.result_cache.snapshot(),
        })
        if self.faults.active:
            body["faults"] = self.faults.snapshot()
        return body

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop serving: reject queued work, let admitted work finish.

        Draining *before* the serve loop stops means requests waiting
        for an in-flight slot get an orderly 503 + ``Retry-After``
        instead of a dead socket.
        """
        self.admission.begin_drain()
        super().shutdown()

    def request_shutdown(self) -> None:
        """Stop the serve loop; safe to call from any thread.

        ``shutdown()`` blocks until the loop exits, so calling it on
        the thread *running* ``serve_forever`` (e.g. a signal handler
        interrupting the main thread) would deadlock — it is
        dispatched to a helper thread instead.
        """
        threading.Thread(target=self.shutdown,
                         name="repro-service-shutdown",
                         daemon=True).start()

    def _handle_signal(self, signum: int, frame: Any) -> None:
        _LOG.info("signal %d received: draining and shutting down",
                  signum)
        self.request_shutdown()

    def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT; drain, close, return.

        Installing signal handlers requires the main thread; pass
        ``install_signals=False`` when serving from a worker thread
        (tests) and use :meth:`shutdown` directly instead.
        """
        previous = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum,
                                                 self._handle_signal)
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            for signum, handler in previous.items():
                signal.signal(signum, handler)


def create_service(host: str = "127.0.0.1", port: int = 8080,
                   capacity: int = DEFAULT_CAPACITY,
                   cache_dir: Optional[str] = None,
                   limits: Optional[ServiceLimits] = None
                   ) -> EvaluationService:
    """A bound, not-yet-serving service (``port=0`` = ephemeral).

    The caller decides how to serve: ``service.run()`` for the CLI
    (signals + drain), ``service.serve_forever()`` on a thread for
    tests and embedders.  ``service.server_port`` holds the bound
    port either way.  ``limits`` bounds concurrency, queueing and
    per-request time (:class:`~repro.service.admission.ServiceLimits`).
    """
    return EvaluationService((host, port), capacity=capacity,
                             cache_dir=cache_dir, limits=limits)
