"""HTTP front end of the warm evaluation service.

A :class:`ThreadingHTTPServer` subclass that owns one long-lived
:class:`~repro.engine.session.EvaluationSession` shared by every
request thread (the model cache is thread-safe), so repeated queries
for equal descriptions are answered from memory across requests.

Lifecycle: :func:`create_service` binds the socket (port ``0`` picks
an ephemeral port — tests use this); :meth:`EvaluationService.run`
serves until SIGTERM/SIGINT, then *drains*: handler threads are
non-daemon and joined on close, so every in-flight request finishes
before the process exits.  Embedders that cannot give up the main
thread call :meth:`serve_forever`/:meth:`shutdown` directly.

The wire protocol is JSON in both directions; failures are JSON too
(``{"error": ...}`` with a 4xx/5xx status) — a malformed request or a
model-layer error never terminates the daemon.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from ..engine import EvaluationSession
from ..engine.cache import DEFAULT_CAPACITY
from ..errors import ReproError, ServiceError
from .jsonapi import evaluate_payload, sweep_payload
from .jsonapi import stats_payload as engine_stats_payload

_LOG = logging.getLogger("repro.service")

#: Largest accepted request body; bigger posts are refused with 413
#: so one misbehaving client cannot balloon the daemon.
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the server's shared session."""

    server_version = "repro-service/1.0"

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        path = urlsplit(self.path).path
        if path == "/healthz":
            self._reply(200, self.server.health_payload())
        elif path == "/stats":
            self._reply(200, self.server.stats_payload())
        else:
            self._reply(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:
        path = urlsplit(self.path).path
        if path not in ("/evaluate", "/sweep"):
            self._reply(404, {"error": f"unknown path {path!r}"})
            return
        session = self.server.session
        try:
            payload = self._read_json()
            if path == "/evaluate":
                body = evaluate_payload(session, payload)
            else:
                body = sweep_payload(session, payload)
        except ServiceError as exc:
            self._reply(exc.status or 400, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            _LOG.exception("unhandled error on %s", path)
            self._reply(500,
                        {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, body)

    # ------------------------------------------------------------------
    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise ServiceError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"invalid JSON body: {exc}") from exc

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        # Tally before the body goes out: a client that sees this
        # response and immediately asks /stats must find the request
        # already counted.
        self.server.count_request(urlsplit(self.path).path, status)
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        try:
            self.wfile.write(blob)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    def log_message(self, format: str, *args: Any) -> None:
        """Route access logs to ``logging`` instead of stderr."""
        _LOG.debug("%s %s", self.address_string(), format % args)


class EvaluationService(ThreadingHTTPServer):
    """A long-lived evaluation daemon holding one warm session."""

    #: Handler threads are joined on close so in-flight requests
    #: drain before the process exits (graceful SIGTERM semantics).
    daemon_threads = False
    block_on_close = True

    def __init__(self, address: Tuple[str, int] = ("127.0.0.1", 8080),
                 capacity: int = DEFAULT_CAPACITY,
                 cache_dir: Optional[str] = None):
        super().__init__(address, ServiceHandler)
        self.session = EvaluationSession(capacity=capacity,
                                         cache_dir=cache_dir)
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()
        self._counts_lock = threading.Lock()
        self.request_counts: Dict[str, int] = {}
        self.error_count = 0

    # ------------------------------------------------------------------
    def count_request(self, path: str, status: int) -> None:
        """Tally one answered request (any status) per endpoint."""
        with self._counts_lock:
            self.request_counts[path] = \
                self.request_counts.get(path, 0) + 1
            if status >= 400:
                self.error_count += 1

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic

    def health_payload(self) -> Dict[str, Any]:
        return {"status": "ok",
                "uptime_seconds": self.uptime_seconds}

    def stats_payload(self) -> Dict[str, Any]:
        """``GET /stats``: engine counters + service bookkeeping."""
        body = engine_stats_payload(self.session)
        with self._counts_lock:
            counts = dict(self.request_counts)
            errors = self.error_count
        body.update({
            "status": "ok",
            "uptime_seconds": self.uptime_seconds,
            "started_unix": self.started_unix,
            "requests": counts,
            "requests_total": sum(counts.values()),
            "errors": errors,
        })
        return body

    # ------------------------------------------------------------------
    def request_shutdown(self) -> None:
        """Stop the serve loop; safe to call from any thread.

        ``shutdown()`` blocks until the loop exits, so calling it on
        the thread *running* ``serve_forever`` (e.g. a signal handler
        interrupting the main thread) would deadlock — it is
        dispatched to a helper thread instead.
        """
        threading.Thread(target=self.shutdown,
                         name="repro-service-shutdown",
                         daemon=True).start()

    def _handle_signal(self, signum: int, frame: Any) -> None:
        _LOG.info("signal %d received: draining and shutting down",
                  signum)
        self.request_shutdown()

    def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT; drain, close, return.

        Installing signal handlers requires the main thread; pass
        ``install_signals=False`` when serving from a worker thread
        (tests) and use :meth:`shutdown` directly instead.
        """
        previous = {}
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(signum,
                                                 self._handle_signal)
        try:
            self.serve_forever(poll_interval=0.1)
        finally:
            self.server_close()
            for signum, handler in previous.items():
                signal.signal(signum, handler)


def create_service(host: str = "127.0.0.1", port: int = 8080,
                   capacity: int = DEFAULT_CAPACITY,
                   cache_dir: Optional[str] = None
                   ) -> EvaluationService:
    """A bound, not-yet-serving service (``port=0`` = ephemeral).

    The caller decides how to serve: ``service.run()`` for the CLI
    (signals + drain), ``service.serve_forever()`` on a thread for
    tests and embedders.  ``service.server_port`` holds the bound
    port either way.
    """
    return EvaluationService((host, port), capacity=capacity,
                             cache_dir=cache_dir)
