"""Deterministic fault injection for resilience testing.

Every behaviour the resilience layer promises — load shedding under
latency, 504s on slow handlers, client recovery from connection
resets, executor recovery from killed pool workers — is *tested*, not
asserted.  This module is the switchboard those tests (and the CI
resilience smoke) flip:

* :class:`FaultInjector` — installed on an
  :class:`~repro.service.server.EvaluationService` (tests assign
  ``service.faults``; subprocesses configure it through the
  ``REPRO_FAULTS`` environment variable, a JSON list of rules).  The
  handler consults it once per request, after admission, so injected
  latency occupies a real in-flight slot:

  - ``latency`` rules sleep for ``seconds`` while holding the slot;
  - ``error`` rules raise :class:`InjectedFault` (replied as the
    rule's ``status``);
  - ``reset`` rules make the handler abort the connection without a
    response, which clients observe as a connection reset.

  Each rule matches a request path (``"*"`` for any) and fires at
  most ``times`` times (``-1`` = unlimited), so "the first three
  requests are slow, then the service heals" is expressible and
  deterministic.  An in-process ``hook`` callable (not expressible in
  the environment) lets tests block handlers on an event for exact
  concurrency control.

* worker-kill helpers — picklable evaluation callables for
  process-backend sweeps that ``SIGKILL`` their own *worker* process
  when an arming file exists (:func:`power_kill_once` consumes the
  file atomically so only the first pool attempt dies;
  :func:`power_kill_always` leaves it, forcing the executor all the
  way to its serial fallback).  Both are no-ops outside pool workers,
  so the serial baseline and the parent-side fallback evaluate the
  same devices to bit-for-bit identical results.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import ServiceError

_LOG = logging.getLogger("repro.service.faults")

#: Environment variable holding a JSON list of fault rules.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognised request-level rule kinds.
KINDS = ("latency", "error", "reset")

#: Job-level rule kinds consulted by :mod:`repro.jobs` runners, not
#: by the request handler.  ``job-crash`` SIGKILLs the worker at a
#: named fault ``point`` (``mid-chunk`` — work computed but not yet
#: journaled; ``after-checkpoint`` — journaled but status not yet
#: updated); ``job-torn-write`` makes the journal append cut its
#: line in half before the kill, leaving the torn tail replay must
#: tolerate.
JOB_KINDS = ("job-crash", "job-torn-write")


class InjectedFault(ServiceError):
    """A deliberately injected handler failure (``error`` rules)."""


@dataclass
class FaultRule:
    """One injection rule; ``times`` counts down as it fires."""

    kind: str
    path: str = "*"
    times: int = -1
    seconds: float = 0.0
    status: int = 500
    point: str = "*"

    def matches(self, path: str) -> bool:
        if self.times == 0:
            return False
        return self.path in ("*", path)

    def matches_point(self, point: str) -> bool:
        if self.times == 0:
            return False
        return self.point in ("*", point)

    def consume(self) -> None:
        if self.times > 0:
            self.times -= 1

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultRule":
        kind = spec.get("kind")
        if kind not in KINDS + JOB_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose "
                             "from " + "/".join(KINDS + JOB_KINDS))
        return cls(kind=kind,
                   path=str(spec.get("path", "*")),
                   times=int(spec.get("times", -1)),
                   seconds=float(spec.get("seconds", 0.0)),
                   status=int(spec.get("status", 500)),
                   point=str(spec.get("point", "*")))


@dataclass
class FaultInjector:
    """Thread-safe rule store consulted once per handled request."""

    rules: List[FaultRule] = field(default_factory=list)
    hook: Optional[Callable[[str], None]] = None
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self.fired: Dict[str, int] = {
            kind: 0 for kind in KINDS + JOB_KINDS}

    @property
    def active(self) -> bool:
        return bool(self.rules) or self.hook is not None

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None
                 ) -> "FaultInjector":
        """Rules from ``REPRO_FAULTS`` (JSON list); inert if unset.

        A malformed specification logs a warning and injects nothing —
        a typo in a test environment must not take the service down.
        """
        source = (env if env is not None else os.environ).get(
            FAULTS_ENV, "")
        if not source.strip():
            return cls()
        try:
            specs = json.loads(source)
            if not isinstance(specs, list):
                raise ValueError("expected a JSON list of rules")
            return cls(rules=[FaultRule.from_dict(spec)
                              for spec in specs])
        except (ValueError, TypeError) as exc:
            _LOG.warning("ignoring malformed %s: %s", FAULTS_ENV, exc)
            return cls()

    # ------------------------------------------------------------------
    def before_request(self, path: str) -> Optional[str]:
        """Apply matching rules to one request.

        Sleeps for latency rules, raises :class:`InjectedFault` for
        error rules, and returns ``"reset"`` when the handler should
        abort the connection without replying.  Rule order is the
        configured order; at most one error/reset fires per request.
        """
        if not self.active:
            return None
        delay = 0.0
        verdict: Optional[FaultRule] = None
        with self._lock:
            for rule in self.rules:
                if rule.kind not in KINDS:
                    continue  # job-level rules: not per-request
                if not rule.matches(path):
                    continue
                if rule.kind == "latency":
                    rule.consume()
                    self.fired["latency"] += 1
                    delay += rule.seconds
                elif verdict is None:
                    rule.consume()
                    self.fired[rule.kind] += 1
                    verdict = rule
        if self.hook is not None:
            self.hook(path)
        if delay > 0.0:
            self.sleep(delay)
        if verdict is None:
            return None
        if verdict.kind == "error":
            raise InjectedFault(
                f"injected fault on {path}", status=verdict.status)
        return "reset"

    # ------------------------------------------------------------------
    def _consume_job_rule(self, kind: str, point: str) -> bool:
        with self._lock:
            for rule in self.rules:
                if rule.kind != kind:
                    continue
                if not rule.matches_point(point):
                    continue
                rule.consume()
                self.fired[kind] += 1
                return True
        return False

    def job_crash(self, point: str) -> bool:
        """Whether a ``job-crash`` rule fires at this fault point.

        The *caller* performs the SIGKILL (via :func:`kill_self`) so
        runners can order the crash precisely against their journal
        writes.  Points: ``mid-chunk``, ``after-checkpoint``.
        """
        if not self.rules:
            return False
        return self._consume_job_rule("job-crash", point)

    def job_torn_write(self) -> bool:
        """Whether the next journal append should be torn short."""
        if not self.rules:
            return False
        return self._consume_job_rule("job-torn-write", "*")

    def snapshot(self) -> Dict[str, int]:
        """Fired-fault counters for ``GET /stats`` and assertions."""
        with self._lock:
            return dict(self.fired)


# ----------------------------------------------------------------------
# Worker-kill helpers for executor fault-tolerance tests.
# ----------------------------------------------------------------------
def kill_self() -> None:
    """``SIGKILL`` the current process — the job-crash primitive.

    Used by job runners when a ``job-crash``/``job-torn-write`` rule
    fires: no cleanup, no atexit, no flushing beyond what already
    hit the disk — exactly the failure mode the journal must absorb.
    """
    os.kill(os.getpid(), signal.SIGKILL)


def in_worker_process() -> bool:
    """Whether this process is a multiprocessing pool worker."""
    return multiprocessing.parent_process() is not None


def maybe_kill_worker(flag_path: str, once: bool = True) -> None:
    """``SIGKILL`` the current *worker* process if ``flag_path`` exists.

    With ``once`` the flag is consumed atomically (``unlink``) so
    exactly one worker dies per arming; without it every worker that
    sees the flag dies, which defeats the executor's fresh-pool retry
    and exercises its serial fallback.  A no-op in the parent process,
    so serial baselines and fallbacks evaluate normally.
    """
    if not in_worker_process():
        return
    if once:
        try:
            os.unlink(flag_path)
        except FileNotFoundError:
            return
    elif not os.path.exists(flag_path):
        return
    os.kill(os.getpid(), signal.SIGKILL)


def power_kill_once(flag_path: str, model) -> float:
    """Evaluation callable whose first armed worker dies mid-chunk.

    Use with ``functools.partial(power_kill_once, str(flag))`` — the
    partial of a module-level function is picklable, as the process
    backend requires.
    """
    maybe_kill_worker(flag_path, once=True)
    return model.pattern_power(None).power


def power_kill_always(flag_path: str, model) -> float:
    """Evaluation callable killing *every* armed worker (degradation
    path: fresh-pool retry dies too, forcing the serial fallback)."""
    maybe_kill_worker(flag_path, once=False)
    return model.pattern_power(None).power
