"""Command patterns (paper Section III.B.4).

The pattern description gives a series of commands assumed to repeat in a
continuous loop, one command per control-clock cycle:

.. code-block:: text

    Pattern loop= act nop wrt nop rd nop pre nop

In this example the power is 12.5 % of the power associated with each of
activate, write, read and precharge plus 50 % no-operation power.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Optional, Tuple

from ..errors import DescriptionError


class Command(str, Enum):
    """DRAM command mnemonics understood by the pattern engine."""

    ACT = "act"
    PRE = "pre"
    RD = "rd"
    WR = "wr"
    REF = "ref"
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def _missing_(cls, value: object) -> Optional["Command"]:
        if isinstance(value, str):
            return _ALIASES.get(value.strip().lower())
        return None


#: Alternate spellings accepted by :meth:`Pattern.parse` (the paper's
#: example writes ``wrt`` for write).
_ALIASES: Dict[str, Command] = {
    "act": Command.ACT,
    "activate": Command.ACT,
    "pre": Command.PRE,
    "precharge": Command.PRE,
    "rd": Command.RD,
    "read": Command.RD,
    "wr": Command.WR,
    "wrt": Command.WR,
    "write": Command.WR,
    "ref": Command.REF,
    "refresh": Command.REF,
    "nop": Command.NOP,
    "noop": Command.NOP,
}


@dataclass(frozen=True)
class Pattern:
    """A repeating command loop, one slot per control-clock cycle."""

    commands: Tuple[Command, ...]

    def __post_init__(self) -> None:
        if not self.commands:
            raise DescriptionError("pattern must contain at least one slot")
        object.__setattr__(
            self, "commands", tuple(Command(c) for c in self.commands)
        )
        balance = 0
        for command in self.commands:
            if command is Command.ACT:
                balance += 1
            elif command is Command.PRE:
                balance -= 1
        if balance != 0:
            raise DescriptionError(
                "pattern must contain equally many activates and "
                f"precharges per loop (got imbalance {balance:+d})"
            )

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Pattern":
        """Parse a space-separated command loop, e.g. ``"act nop rd pre"``."""
        tokens = text.replace(",", " ").split()
        if not tokens:
            raise DescriptionError("empty pattern string")
        commands = []
        for token in tokens:
            mnemonic = token.strip().lower()
            if mnemonic not in _ALIASES:
                raise DescriptionError(f"unknown command mnemonic {token!r}")
            commands.append(_ALIASES[mnemonic])
        return cls(tuple(commands))

    @classmethod
    def from_counts(cls, counts: Dict[Command, int],
                    length: int) -> "Pattern":
        """Build a pattern of ``length`` slots from per-command counts.

        Commands are spread evenly; remaining slots are NOPs.
        """
        total = sum(counts.values())
        if total > length:
            raise DescriptionError(
                f"{total} commands do not fit in {length} slots"
            )
        slots = [Command.NOP] * length
        index = 0
        for command, count in counts.items():
            if command is Command.NOP:
                continue
            if count <= 0:
                continue
            stride = max(1, length // count)
            placed = 0
            while placed < count:
                while slots[index % length] is not Command.NOP:
                    index += 1
                slots[index % length] = command
                index += stride
                placed += 1
        return cls(tuple(slots))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterable[Command]:
        return iter(self.commands)

    def counts(self) -> Dict[Command, int]:
        """Occurrences of each command per loop."""
        counter: Counter = Counter(self.commands)
        return {command: counter.get(command, 0) for command in Command}

    def weight(self, command: Command) -> float:
        """Fraction of loop slots holding ``command``."""
        return self.counts()[Command(command)] / len(self.commands)

    def rate(self, command: Command, f_ctrlclock: float) -> float:
        """Occurrences of ``command`` per second at the given clock."""
        return self.weight(command) * f_ctrlclock

    @property
    def has_column_traffic(self) -> bool:
        """True when the loop issues any read or write."""
        counts = self.counts()
        return counts[Command.RD] > 0 or counts[Command.WR] > 0

    def __str__(self) -> str:
        return " ".join(str(command) for command in self.commands)
