"""Canonical, validated dataclasses describing a DRAM.

This package is the in-memory form of the paper's DRAM description language
(Table I).  Every model input — physical floorplan, signaling floorplan,
technology, specification, voltages, peripheral logic blocks and the command
pattern — is a frozen dataclass here; the DSL front end (:mod:`repro.dsl`)
and the prebuilt device library (:mod:`repro.devices`) both produce these
objects, and the power model (:mod:`repro.core`) consumes them.
"""

from .technology import TechnologyParameters
from .voltages import Rail, VoltageSet
from .floorplan import (
    ArrayArchitecture,
    BitlineArchitecture,
    BlockSpec,
    PhysicalFloorplan,
)
from .signaling import SegmentKind, SignalNet, SignalSegment, SignalingFloorplan
from .specification import Specification, TimingParameters
from .logic import LogicBlock
from .pattern import Command, Pattern
from .dram import DramDescription

__all__ = [
    "TechnologyParameters",
    "Rail",
    "VoltageSet",
    "ArrayArchitecture",
    "BitlineArchitecture",
    "BlockSpec",
    "PhysicalFloorplan",
    "SegmentKind",
    "SignalNet",
    "SignalSegment",
    "SignalingFloorplan",
    "Specification",
    "TimingParameters",
    "LogicBlock",
    "Command",
    "Pattern",
    "DramDescription",
]
