"""Miscellaneous peripheral logic blocks (paper Section III.B.5).

Beyond the array and the long signal wires, a DRAM contains logic for
command/address decoding, clock synchronisation and distribution, test
support, etc.  These blocks are modeled by the number of toggling gates,
the average transistor sizes, and a wire load derived from the block area —
the gate counts are the model's *fit parameters* against datasheet values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import FrozenSet

from ..errors import DescriptionError
from .pattern import Command
from .signaling import Trigger
from .voltages import Rail

#: Empirical routing factor: average local wire length per gate is this
#: multiple of the gate pitch at full wiring density.
_WIRE_LENGTH_FACTOR = 4.0


@dataclass(frozen=True)
class LogicBlock:
    """One peripheral logic block (Table I "Logic block description")."""

    name: str
    """Block name, e.g. ``control``, ``rowdec``, ``dll``."""
    n_gates: int
    """Number of gates in the block (the datasheet fit parameter)."""
    w_n: float
    """Average NMOS gate width in the block (m)."""
    w_p: float
    """Average PMOS gate width in the block (m)."""
    transistors_per_gate: float = 4.0
    """Average number of transistors per gate."""
    layout_density: float = 0.25
    """Coverage of the block area with transistor gates (0..1)."""
    wiring_density: float = 0.5
    """Coverage of the block area with local wiring (0..1)."""
    operations: FrozenSet[str] = frozenset()
    """Commands during which the block is active (empty = always on)."""
    toggle: float = 0.1
    """Rate of toggling relative to the block's clock (0..1)."""
    trigger: Trigger = Trigger.PER_CTRL_CLOCK
    """Clock domain of the block."""
    rail: Rail = Rail.VINT
    """Supply rail of the block."""
    component: str = "control"
    """Breakdown category of the block (a :class:`repro.core.Component`
    value: ``control``, ``row_logic``, ``column``, ``clock``, ``io``…)."""

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptionError("logic block name must not be empty")
        if not isinstance(self.n_gates, int) or self.n_gates <= 0:
            raise DescriptionError(
                f"logic block {self.name!r}: n_gates must be a positive "
                "integer"
            )
        for field_name in ("w_n", "w_p"):
            if getattr(self, field_name) <= 0:
                raise DescriptionError(
                    f"logic block {self.name!r}: {field_name} must be "
                    "positive"
                )
        if self.transistors_per_gate < 1:
            raise DescriptionError(
                f"logic block {self.name!r}: transistors_per_gate must be "
                ">= 1"
            )
        for field_name in ("layout_density", "wiring_density", "toggle"):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise DescriptionError(
                    f"logic block {self.name!r}: {field_name} must be in "
                    f"(0, 1], got {value}"
                )
        object.__setattr__(
            self, "operations",
            frozenset(Command(op) for op in self.operations),
        )
        object.__setattr__(self, "trigger", Trigger(self.trigger))
        object.__setattr__(self, "rail", Rail(self.rail))

    # ------------------------------------------------------------------
    @property
    def is_background(self) -> bool:
        """True when the block runs regardless of the command stream."""
        return not self.operations

    def device_area(self, gate_length: float) -> float:
        """Total transistor gate area of the block (m²)."""
        per_gate = (self.w_n + self.w_p) / 2.0 * gate_length
        return self.n_gates * self.transistors_per_gate * per_gate

    def block_area(self, gate_length: float) -> float:
        """Laid-out block area (m²) at the given layout density."""
        return self.device_area(gate_length) / self.layout_density

    def wire_length_per_gate(self, gate_length: float) -> float:
        """Average local wire length driven by one gate (m).

        Derived from the block area: at full wiring density each gate drives
        a wire a few gate pitches long; sparser blocks route shorter local
        wires.  The paper describes this as "the wire load as function of
        the block size which is calculated based on the number of gates".
        """
        pitch = math.sqrt(self.block_area(gate_length) / self.n_gates)
        return pitch * self.wiring_density * _WIRE_LENGTH_FACTOR

    def scaled(self, **overrides: object) -> "LogicBlock":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)
