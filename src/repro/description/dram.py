"""The complete DRAM description — aggregate of all model inputs.

A :class:`DramDescription` bundles the five information groups of the paper
(physical floorplan, signaling floorplan, technology, specification and
miscellaneous circuit information) plus voltages, timings and the default
command pattern, and cross-validates them against each other.

The :meth:`DramDescription.replace_path` helper rewrites one nested
parameter by dotted path (``"technology.c_bitline"``,
``"voltages.vint"``…); the sensitivity analysis of Figure 10 is built on
it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Tuple

from ..errors import DescriptionError
from .floorplan import PhysicalFloorplan
from .logic import LogicBlock
from .pattern import Command, Pattern
from .signaling import SignalingFloorplan
from .specification import Specification, TimingParameters
from .technology import TechnologyParameters
from .voltages import VoltageSet


@dataclass(frozen=True)
class DramDescription:
    """Everything the power model needs to know about one DRAM device."""

    name: str
    """Human-readable device name, e.g. ``1G-DDR3-1600-x16-55nm``."""
    interface: str
    """Interface family label (SDR, DDR, DDR2, DDR3, DDR4, DDR5)."""
    node: float
    """Process feature size (m), informational."""
    technology: TechnologyParameters
    voltages: VoltageSet
    floorplan: PhysicalFloorplan
    signaling: SignalingFloorplan
    spec: Specification
    timing: TimingParameters
    logic_blocks: Tuple[LogicBlock, ...] = field(default_factory=tuple)
    pattern: Pattern = Pattern((Command.ACT, Command.NOP, Command.WR,
                                Command.NOP, Command.RD, Command.NOP,
                                Command.PRE, Command.NOP))
    constant_current: float = 0.0
    """Constant current sink from Vdd (A) — references, power system."""

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptionError("device name must not be empty")
        if self.node <= 0:
            raise DescriptionError("feature size must be positive")
        if self.constant_current < 0:
            raise DescriptionError("constant_current must not be negative")
        object.__setattr__(self, "logic_blocks", tuple(self.logic_blocks))
        names = [block.name for block in self.logic_blocks]
        if len(names) != len(set(names)):
            raise DescriptionError("logic block names must be unique")
        self._cross_validate()

    def _cross_validate(self) -> None:
        array = self.floorplan.array
        spec = self.spec
        blocks = self.floorplan.array_block_count
        banks = spec.banks
        blocks_per_bank = max(1, blocks // banks)
        page_per_block = spec.page_bits // blocks_per_bank
        if page_per_block % array.bits_per_swl:
            raise DescriptionError(
                f"per-block page size ({page_per_block} bits) is not a "
                f"whole number of sub-wordlines ({array.bits_per_swl} bits "
                "each)"
            )
        if spec.bits_per_access > spec.page_bits:
            raise DescriptionError(
                f"one access ({spec.bits_per_access} bits) exceeds the page "
                f"({spec.page_bits} bits)"
            )
        if spec.bits_per_access % self.technology.bits_per_csl:
            raise DescriptionError(
                f"access width ({spec.bits_per_access} bits) is not a whole "
                f"number of column select lines "
                f"({self.technology.bits_per_csl} bits each)"
            )
        if spec.rows_per_bank % array.rows_per_subarray:
            raise DescriptionError(
                f"rows per bank ({spec.rows_per_bank}) is not a whole "
                f"number of sub-array rows ({array.rows_per_subarray} rows "
                "each)"
            )
        blocks = self.floorplan.array_block_count
        banks = spec.banks
        if blocks % banks and banks % blocks:
            raise DescriptionError(
                f"{blocks} array blocks cannot map onto {banks} banks"
            )

    # ------------------------------------------------------------------
    # Derived organisation
    # ------------------------------------------------------------------
    @property
    def swls_per_activate(self) -> int:
        """Local wordlines raised per activate (sub-arrays the page spans)."""
        return self.spec.page_bits // self.floorplan.array.bits_per_swl

    @property
    def csls_per_access(self) -> int:
        """Column select lines asserted per column access."""
        return self.spec.bits_per_access // self.technology.bits_per_csl

    @property
    def subarray_rows_per_bank(self) -> int:
        """Sub-array rows stacked along the bitline direction per bank."""
        return (self.spec.rows_per_bank
                // self.floorplan.array.rows_per_subarray)

    @property
    def subarray_cols_per_bank(self) -> int:
        """Sub-arrays along the wordline direction per bank (the number of
        sub-arrays one master wordline extends over)."""
        return self.spec.page_bits // self.floorplan.array.bits_per_swl

    @property
    def banks_per_array_block(self) -> float:
        """Banks mapped onto one floorplan array block."""
        return self.spec.banks / self.floorplan.array_block_count

    @property
    def blocks_per_bank(self) -> int:
        """Array blocks one bank (and hence one page) spreads over.

        Low-bank-count devices (SDR/DDR) keep the eight-block floorplan and
        split each bank over two blocks; one activate then drives a master
        wordline in each of them.
        """
        return max(1, self.floorplan.array_block_count // self.spec.banks)

    @property
    def page_bits_per_block(self) -> int:
        """Bits of one page held in a single array block."""
        return self.spec.page_bits // self.blocks_per_bank

    @property
    def density_label(self) -> str:
        """Density as a conventional label, e.g. ``1G`` or ``128M``."""
        bits = self.spec.density_bits
        if bits % (1 << 30) == 0:
            return f"{bits >> 30}G"
        if bits % (1 << 20) == 0:
            return f"{bits >> 20}M"
        return f"{bits}b"

    # ------------------------------------------------------------------
    # Copy helpers
    # ------------------------------------------------------------------
    def evolve(self, **overrides: Any) -> "DramDescription":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **overrides)

    def replace_path(self, path: str, value: Any) -> "DramDescription":
        """Return a copy with the dotted-path parameter set to ``value``.

        Supported roots: ``technology``, ``voltages``, ``spec``, ``timing``,
        ``floorplan.array``, plus top-level scalar fields
        (``constant_current``…).

        >>> lower_vint = device.replace_path("voltages.vint", 1.2)
        """
        parts = path.split(".")
        if len(parts) == 1:
            return dataclasses.replace(self, **{parts[0]: value})
        root, rest = parts[0], parts[1:]
        if root == "floorplan":
            if len(rest) == 2 and rest[0] == "array":
                new_fp = self.floorplan.with_array(**{rest[1]: value})
                return dataclasses.replace(self, floorplan=new_fp)
            raise DescriptionError(
                f"unsupported floorplan parameter path {path!r}"
            )
        if len(rest) != 1:
            raise DescriptionError(f"unsupported parameter path {path!r}")
        if root not in ("technology", "voltages", "spec", "timing"):
            raise DescriptionError(f"unknown parameter root {root!r}")
        component = getattr(self, root)
        new_component = dataclasses.replace(component, **{rest[0]: value})
        return dataclasses.replace(self, **{root: new_component})

    def get_path(self, path: str) -> Any:
        """Read the dotted-path parameter value (see :meth:`replace_path`)."""
        target: Any = self
        for part in path.split("."):
            target = getattr(target, part)
        return target

    def scale_path(self, path: str, factor: float) -> "DramDescription":
        """Return a copy with the numeric parameter multiplied by ``factor``."""
        current = self.get_path(path)
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise DescriptionError(f"parameter {path!r} is not numeric")
        value: Any = current * factor
        if isinstance(current, int):
            value = int(round(value))
        return self.replace_path(path, value)

    # ------------------------------------------------------------------
    def logic_block(self, name: str) -> LogicBlock:
        """Look up a logic block by name."""
        for block in self.logic_blocks:
            if block.name == name:
                return block
        raise KeyError(f"no logic block named {name!r}")

    def iter_logic_blocks(self) -> Iterator[LogicBlock]:
        """Iterate over the peripheral logic blocks."""
        return iter(self.logic_blocks)

    def summary(self) -> Dict[str, Any]:
        """A compact dict describing the device (used in reports)."""
        return {
            "name": self.name,
            "interface": self.interface,
            "node_nm": self.node * 1e9,
            "density": self.density_label,
            "io_width": self.spec.io_width,
            "datarate_gbps": self.spec.datarate / 1e9,
            "banks": self.spec.banks,
            "page_bits": self.spec.page_bits,
            "vdd": self.voltages.vdd,
        }
