"""Signaling floorplan description (paper Section III.B.2).

A significant portion of DRAM power charges and discharges long signal
wires: the read and write data buses, the bank/row/column address buses,
the control bus and the clock.  In the model each such *net* is built from
*wire segments* with optional device loads (re-drivers, multiplexers)
inserted along the bus — exactly the paper's ``FloorplanSignaling`` section:

.. code-block:: text

    DataW0 inside=0_2 fraction=25% dir=h mux=1:8
    DataW1 start=0_2 end=3_2 PchW=19.2 NchW=9.6

Segments between blocks extend from block centre to block centre; segments
inside one block are a fraction of the block's extent in a given direction.
Each segment carries its own wire count and toggle rate (a bus before a 1:8
de-serialiser has ``io_width`` wires toggling at the data rate, after it
``8 × io_width`` wires at the core rate — expressed here as separate
segments with their own ``wires``/``events_per_trigger``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional, Tuple

from ..errors import DescriptionError, FloorplanError
from .pattern import Command
from .voltages import Rail


class SegmentKind(str, Enum):
    """How a segment's length is derived from the physical floorplan."""

    INSIDE = "inside"
    """The segment runs inside one block; length = fraction × block extent."""
    SPAN = "span"
    """The segment runs from one block centre to another block centre."""


class Trigger(str, Enum):
    """What clock or event drives a signal net."""

    PER_ACCESS = "access"
    """Once per column access (a burst of ``io_width × prefetch`` bits)."""
    PER_ROW_OP = "row_op"
    """Once per activate or precharge command."""
    PER_CTRL_CLOCK = "ctrl_clock"
    """Every control-clock cycle (command/address/clock wiring)."""
    PER_DATA_CLOCK = "data_clock"
    """Every data-clock cycle (interface-speed wiring)."""


@dataclass(frozen=True)
class SignalSegment:
    """One wire segment of a signal net, with optional inserted devices."""

    kind: SegmentKind
    """Geometry rule for this segment."""
    start: Tuple[int, int]
    """Grid coordinate (x, y) of the segment origin block."""
    end: Optional[Tuple[int, int]] = None
    """Grid coordinate of the destination block (``SPAN`` only)."""
    fraction: float = 1.0
    """Fraction of the block extent covered (``INSIDE`` only)."""
    direction: str = "h"
    """Direction of an ``INSIDE`` segment: ``'h'`` or ``'v'``."""
    wires: int = 1
    """Number of parallel wires in this segment of the bus."""
    toggle: float = 0.5
    """Average toggles per wire per net event (activity factor)."""
    buffer_w_n: float = 0.0
    """Width of the NMOS of a buffer driven by this segment (m), 0 = none."""
    buffer_w_p: float = 0.0
    """Width of the PMOS of a buffer driven by this segment (m), 0 = none."""
    mux_ratio: float = 1.0
    """Serialisation change after this segment (``8`` for a 1:8 mux)."""

    def __post_init__(self) -> None:
        kind = SegmentKind(self.kind)
        object.__setattr__(self, "kind", kind)
        if kind is SegmentKind.SPAN:
            if self.end is None:
                raise FloorplanError("a SPAN segment needs an end coordinate")
        else:
            if not 0.0 < self.fraction <= 1.0:
                raise FloorplanError(
                    f"segment fraction must be in (0, 1], got {self.fraction}"
                )
            if self.direction not in ("h", "v"):
                raise FloorplanError(
                    f"segment direction must be 'h' or 'v', got "
                    f"{self.direction!r}"
                )
        if self.wires <= 0:
            raise DescriptionError("segment wire count must be positive")
        if not 0.0 <= self.toggle <= 1.0:
            raise DescriptionError(
                f"segment toggle rate must be in [0, 1], got {self.toggle}"
            )
        for name in ("buffer_w_n", "buffer_w_p"):
            if getattr(self, name) < 0:
                raise DescriptionError(f"{name} must not be negative")
        if self.mux_ratio < 1.0:
            raise DescriptionError("mux_ratio must be >= 1")

    @property
    def has_buffer(self) -> bool:
        """True when a re-driver/multiplexer load is inserted here."""
        return self.buffer_w_n > 0 or self.buffer_w_p > 0


@dataclass(frozen=True)
class SignalNet:
    """A named bus built from wire segments.

    ``operations`` restricts when the net fires: a write data bus only
    toggles during write commands.  An empty set means the net is part of
    the background (clock, control) and fires on its trigger regardless of
    the command stream.
    """

    name: str
    """Net name, e.g. ``DataWrite`` or ``RowAddr``."""
    segments: Tuple[SignalSegment, ...]
    """Ordered wire segments making up the bus."""
    trigger: Trigger = Trigger.PER_ACCESS
    """Event driving the net."""
    operations: FrozenSet[str] = frozenset()
    """Command mnemonics during which the net is active (empty = always)."""
    rail: Rail = Rail.VINT
    """Supply rail the net swings on."""
    component: str = "datapath"
    """Breakdown category of the net (a :class:`repro.core.Component`
    value: ``datapath``, ``control``, ``clock``, ``row_logic``…)."""

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptionError("signal net name must not be empty")
        if not self.segments:
            raise DescriptionError(
                f"signal net {self.name!r} has no segments"
            )
        object.__setattr__(self, "segments", tuple(self.segments))
        object.__setattr__(self, "trigger", Trigger(self.trigger))
        object.__setattr__(
            self, "operations",
            frozenset(Command(op) for op in self.operations),
        )
        object.__setattr__(self, "rail", Rail(self.rail))

    @property
    def is_background(self) -> bool:
        """True when the net toggles regardless of the command stream."""
        return not self.operations


@dataclass(frozen=True)
class SignalingFloorplan:
    """All signal nets of the device."""

    nets: Tuple[SignalNet, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "nets", tuple(self.nets))
        names = [net.name for net in self.nets]
        if len(names) != len(set(names)):
            raise DescriptionError("signal net names must be unique")

    def net(self, name: str) -> SignalNet:
        """Look up a net by name."""
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no signal net named {name!r}")

    def __iter__(self):
        return iter(self.nets)

    def __len__(self) -> int:
        return len(self.nets)
