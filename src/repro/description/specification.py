"""Interface specification and timing parameters (Table I "Specification").

The specification defines the I/O width, per-pin data rate, clocking and
the address-space split (bank/row/column bits).  Serialisation appears both
here (the ``prefetch`` factor) and in the signaling floorplan (the physical
placement of the 1:8 de-serialiser), matching the paper's split.

Timing parameters are *not* part of the paper's Table I (the model computes
power, not timing) but the IDD current definitions need the row cycle time
and activate-spacing constraints, so they are carried alongside.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DescriptionError


@dataclass(frozen=True)
class Specification:
    """Interface specification of the device."""

    io_width: int
    """Number of DQ pins (x4 / x8 / x16 / x32)."""
    datarate: float
    """Data rate per DQ pin (bit/s)."""
    n_clock_wires: int
    """Number of clock wires distributed across the die."""
    f_dataclock: float
    """Data clock frequency (Hz); data rate is 1× or 2× this."""
    f_ctrlclock: float
    """Control (command/address) clock frequency (Hz)."""
    bank_bits: int
    """Number of bank address bits."""
    row_bits: int
    """Number of row address bits."""
    col_bits: int
    """Number of column address bits (including burst-order bits)."""
    n_misc_control: int = 8
    """Number of miscellaneous control signals (CS, RAS, CAS, WE, ODT…)."""
    prefetch: int = 8
    """Internal prefetch: bits fetched per DQ per column access."""
    burst_length: int = 0
    """Burst length in beats; defaults to the prefetch depth."""
    bank_groups: int = 1
    """Bank groups (DDR4/DDR5): same-group activates pay tRRD_L."""

    def __post_init__(self) -> None:
        for name in ("io_width", "n_clock_wires", "bank_bits", "row_bits",
                     "col_bits", "prefetch"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise DescriptionError(f"{name} must be a positive integer")
        for name in ("datarate", "f_dataclock", "f_ctrlclock"):
            if getattr(self, name) <= 0:
                raise DescriptionError(f"{name} must be positive")
        if self.n_misc_control < 0:
            raise DescriptionError("n_misc_control must not be negative")
        if self.prefetch & (self.prefetch - 1):
            raise DescriptionError("prefetch must be a power of two")
        ratio = self.datarate / self.f_dataclock
        if not (0.99 < ratio < 1.01 or 1.99 < ratio < 2.01):
            raise DescriptionError(
                "data rate must be 1x (SDR) or 2x (DDR) the data clock; got "
                f"ratio {ratio:.3g}"
            )
        if self.burst_length == 0:
            object.__setattr__(self, "burst_length", self.prefetch)
        if self.burst_length <= 0:
            raise DescriptionError("burst_length must be positive")
        if (1 << self.col_bits) < self.prefetch:
            raise DescriptionError(
                "column address space smaller than one prefetch burst"
            )
        if self.bank_groups <= 0 or self.banks % self.bank_groups:
            raise DescriptionError(
                f"{self.banks} banks cannot split into "
                f"{self.bank_groups} bank groups"
            )

    # ------------------------------------------------------------------
    @property
    def is_ddr(self) -> bool:
        """True when data transfers on both clock edges."""
        return self.datarate / self.f_dataclock > 1.5

    @property
    def bits_per_access(self) -> int:
        """Bits moved per internal column access (io_width × prefetch)."""
        return self.io_width * self.prefetch

    @property
    def core_access_rate(self) -> float:
        """Maximum internal column-access rate (accesses/s) at full speed."""
        return self.datarate / self.prefetch

    @property
    def peak_bandwidth(self) -> float:
        """Peak device data bandwidth (bit/s)."""
        return self.datarate * self.io_width

    @property
    def page_bits(self) -> int:
        """Page (row buffer) size in bits: 2^col_bits × io_width."""
        return (1 << self.col_bits) * self.io_width

    @property
    def banks(self) -> int:
        """Number of banks."""
        return 1 << self.bank_bits

    @property
    def rows_per_bank(self) -> int:
        """Number of rows (wordlines addressable) per bank."""
        return 1 << self.row_bits

    @property
    def density_bits(self) -> int:
        """Total device density in bits."""
        return self.page_bits * self.rows_per_bank * self.banks

    @property
    def banks_per_group(self) -> int:
        """Banks within one bank group."""
        return self.banks // self.bank_groups

    def bank_group_of(self, bank: int) -> int:
        """The bank group a bank belongs to."""
        return bank // self.banks_per_group

    def scaled(self, **overrides: object) -> "Specification":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class TimingParameters:
    """Row-timing parameters used by the IDD pattern definitions."""

    trc: float
    """Row cycle time: activate-to-activate on one bank (s)."""
    trrd: float = 10e-9
    """Activate-to-activate delay between different banks (s); with bank
    groups this is the cross-group tRRD_S."""
    trrd_l: float = 0.0
    """Same-bank-group activate-to-activate delay tRRD_L (s); 0 derives
    tRRD (no bank-group distinction)."""
    tfaw: float = 40e-9
    """Four-activate window (s)."""
    trcd: float = 0.0
    """Activate-to-column-command delay (s); 0 derives 0.3 × tRC."""
    trp: float = 0.0
    """Precharge-to-activate delay (s); 0 derives 0.3 × tRC."""
    tras: float = 0.0
    """Minimum row-active time (s); 0 derives tRC − tRP."""
    twr: float = 15e-9
    """Write recovery: end of write data to precharge (s)."""
    trtp: float = 7.5e-9
    """Read-to-precharge delay (s)."""
    trfc: float = 110e-9
    """Refresh cycle time (s)."""
    tref_interval: float = 7.8e-6
    """Average interval between auto-refresh commands (s)."""
    rows_per_refresh: int = 8
    """Physical rows refreshed per auto-refresh command."""

    def __post_init__(self) -> None:
        for name in ("trc", "trrd", "tfaw", "trfc", "tref_interval",
                     "twr", "trtp"):
            if getattr(self, name) <= 0:
                raise DescriptionError(f"{name} must be positive")
        if self.rows_per_refresh <= 0:
            raise DescriptionError("rows_per_refresh must be positive")
        if self.trrd > self.trc:
            raise DescriptionError("trrd cannot exceed trc")
        if self.tfaw < self.trrd:
            raise DescriptionError("tfaw cannot be shorter than trrd")
        if self.trrd_l == 0.0:
            object.__setattr__(self, "trrd_l", self.trrd)
        if self.trrd_l < self.trrd:
            raise DescriptionError("trrd_l cannot be shorter than trrd")
        if self.trcd == 0.0:
            object.__setattr__(self, "trcd", 0.3 * self.trc)
        if self.trp == 0.0:
            object.__setattr__(self, "trp", 0.3 * self.trc)
        if self.tras == 0.0:
            object.__setattr__(self, "tras", self.trc - self.trp)
        for name in ("trcd", "trp", "tras"):
            value = getattr(self, name)
            if not 0 < value <= self.trc:
                raise DescriptionError(
                    f"{name} must be positive and no larger than trc"
                )
        if self.tras + self.trp > self.trc * 1.0001:
            raise DescriptionError("tras + trp cannot exceed trc")

    @property
    def max_row_rate(self) -> float:
        """Maximum sustainable activate rate across banks (1/s)."""
        return min(1.0 / self.trrd, 4.0 / self.tfaw)

    def scaled(self, **overrides: float) -> "TimingParameters":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)
