"""The 39-parameter technology description of Table I.

Every field is in SI units.  Gate-oxide thicknesses are *equivalent* oxide
thicknesses (EOT) so the gate capacitance of a device is simply
``eps_SiO2 / tox * W * L``.  Junction capacitances are specified per metre of
gate width, matching the paper's "junction capacitance ... transistors"
parameters.  Specific wire capacitances are per metre of wire.

The parameter names follow the rows of Table I top to bottom; the docstring
of each field quotes the table row it implements.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..errors import DescriptionError

#: Permittivity of SiO2 (F/m); gate capacitance = EPS_OX / tox per unit area.
EPS_OX = 3.45e-11


@dataclass(frozen=True)
class TechnologyParameters:
    """Technology description — the 39 parameters of Table I.

    Grouped exactly as the table: general transistors, cell access
    transistor, array capacitances, row-path devices, bitline
    sense-amplifier devices and wire capacitances.
    """

    # --- transistor families -------------------------------------------
    tox_logic: float
    """Gate oxide thickness, general logic transistors (m)."""
    tox_hv: float
    """Gate oxide thickness, high-voltage (wordline domain) transistors (m)."""
    tox_cell: float
    """Gate oxide thickness, cell access transistor (m)."""
    lmin_logic: float
    """Minimum gate length, general logic transistors (m)."""
    cj_logic: float
    """Junction capacitance, general logic transistors (F per m width)."""
    lmin_hv: float
    """Minimum gate length, high-voltage transistors (m)."""
    cj_hv: float
    """Junction capacitance, high-voltage transistors (F per m width)."""
    l_cell: float
    """Gate length, cell access transistor (m)."""
    w_cell: float
    """Gate width, cell access transistor (m)."""

    # --- array capacitances --------------------------------------------
    c_bitline: float
    """Bitline capacitance (F, full local bitline)."""
    c_cell: float
    """Cell (storage capacitor) capacitance (F)."""
    share_bl_wl: float
    """Share of bitline-to-wordline coupling of total bitline cap (0..1)."""

    # --- column path ----------------------------------------------------
    bits_per_csl: int
    """Bits accessed per column select line (per asserted CSL)."""

    # --- master wordline path -------------------------------------------
    c_wire_mwl: float
    """Specific wire capacitance of the master wordline (F/m)."""
    predecode_mwl: float
    """Pre-decode ratio of the master wordline decoder."""
    w_mwl_dec_n: float
    """Gate width, master wordline decoder NMOS (m)."""
    w_mwl_dec_p: float
    """Gate width, master wordline decoder PMOS (m)."""
    mwl_dec_activity: float
    """Average amount of switching of the master wordline decoder (0..1)."""
    w_wl_ctrl_load_n: float
    """Gate width, load NMOS of the wordline controller (m)."""
    w_wl_ctrl_load_p: float
    """Gate width, load PMOS of the wordline controller (m)."""

    # --- sub-wordline (local wordline) driver ---------------------------
    w_swd_n: float
    """Gate width, sub-wordline driver NMOS (m)."""
    w_swd_p: float
    """Gate width, sub-wordline driver PMOS (m)."""
    w_swd_restore: float
    """Gate width, sub-wordline driver restore NMOS (m)."""
    c_wire_swl: float
    """Specific wire capacitance of the sub-wordline (F/m)."""

    # --- bitline sense-amplifier devices (Figure 2) ----------------------
    w_sa_n: float
    """Gate width, bitline sense-amplifier NMOS sense pair (m)."""
    w_sa_p: float
    """Gate width, bitline sense-amplifier PMOS sense pair (m)."""
    l_sa_n: float
    """Gate length, bitline sense-amplifier NMOS sense pair (m)."""
    l_sa_p: float
    """Gate length, bitline sense-amplifier PMOS sense pair (m)."""
    w_eq: float
    """Gate width, bitline sense-amplifier equalize devices (m)."""
    l_eq: float
    """Gate length, bitline sense-amplifier equalize devices (m)."""
    w_bitswitch: float
    """Gate width, bitline sense-amplifier bit-switch devices (m)."""
    l_bitswitch: float
    """Gate length, bitline sense-amplifier bit-switch devices (m)."""
    w_blmux: float
    """Gate width, bitline multiplexer devices (folded bitline only) (m)."""
    l_blmux: float
    """Gate length, bitline multiplexer devices (folded bitline only) (m)."""
    w_nset: float
    """Gate width, bitline sense-amplifier NMOS set devices (m)."""
    l_nset: float
    """Gate length, bitline sense-amplifier NMOS set devices (m)."""
    w_pset: float
    """Gate width, bitline sense-amplifier PMOS set devices (m)."""
    l_pset: float
    """Gate length, bitline sense-amplifier PMOS set devices (m)."""

    # --- wiring ----------------------------------------------------------
    c_wire_signal: float
    """Specific wire capacitance of general signaling wires (F/m)."""

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name == "share_bl_wl":
                if not 0.0 <= value <= 1.0:
                    raise DescriptionError(
                        "share_bl_wl must be a fraction in [0, 1], "
                        f"got {value}"
                    )
                continue
            if field.name == "mwl_dec_activity":
                if not 0.0 <= value <= 1.0:
                    raise DescriptionError(
                        "mwl_dec_activity must be in [0, 1], got "
                        f"{value}"
                    )
                continue
            if value <= 0:
                raise DescriptionError(
                    f"technology parameter {field.name} must be positive, "
                    f"got {value}"
                )
        if self.bits_per_csl != int(self.bits_per_csl):
            raise DescriptionError("bits_per_csl must be an integer")

    # ------------------------------------------------------------------
    # Derived capacitances
    # ------------------------------------------------------------------
    def gate_capacitance(self, width: float, length: float, tox: float) -> float:
        """Gate capacitance of one transistor (F)."""
        if width <= 0 or length <= 0 or tox <= 0:
            raise DescriptionError("gate geometry must be positive")
        return EPS_OX / tox * width * length

    def logic_gate_cap(self, width: float, length: float = 0.0) -> float:
        """Gate cap of a general-logic transistor (F); default min length."""
        return self.gate_capacitance(width, length or self.lmin_logic,
                                     self.tox_logic)

    def hv_gate_cap(self, width: float, length: float = 0.0) -> float:
        """Gate cap of a high-voltage transistor (F); default min length."""
        return self.gate_capacitance(width, length or self.lmin_hv,
                                     self.tox_hv)

    def cell_gate_cap(self) -> float:
        """Gate capacitance of one cell access transistor (F)."""
        return self.gate_capacitance(self.w_cell, self.l_cell, self.tox_cell)

    def logic_junction_cap(self, width: float) -> float:
        """Junction capacitance of a general-logic transistor (F)."""
        return self.cj_logic * width

    def hv_junction_cap(self, width: float) -> float:
        """Junction capacitance of a high-voltage transistor (F)."""
        return self.cj_hv * width

    def logic_device_load(self, width: float, length: float = 0.0) -> float:
        """Gate plus junction load of one logic transistor (F)."""
        return self.logic_gate_cap(width, length) + self.logic_junction_cap(width)

    def hv_device_load(self, width: float, length: float = 0.0) -> float:
        """Gate plus junction load of one high-voltage transistor (F)."""
        return self.hv_gate_cap(width, length) + self.hv_junction_cap(width)

    # ------------------------------------------------------------------
    # Introspection used by the sensitivity analysis (Figure 10)
    # ------------------------------------------------------------------
    def scaled(self, **overrides: float) -> "TechnologyParameters":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Yield (name, value) for all 39 parameters."""
        for field in dataclasses.fields(self):
            yield field.name, getattr(self, field.name)

    def as_dict(self) -> Dict[str, float]:
        """Return the parameter set as a plain dict."""
        return dict(self.items())

    @property
    def parameter_count(self) -> int:
        """Number of technology parameters (the paper states 39)."""
        return len(dataclasses.fields(self))
