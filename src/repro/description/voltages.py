"""Voltage domains of a DRAM (paper Section III.A).

A DRAM has four main voltage domains:

* ``vpp``  — boosted wordline voltage (above Vdd), produced by a charge pump;
* ``vbl``  — bitline high voltage, limited by cell-capacitor reliability;
* ``vint`` — internal voltage supplying most logic, regulated from Vdd or
  connected directly to it;
* ``vdd``  — the external supply itself (interface circuitry, pumps).

Each derived rail carries a *generator efficiency*: the fraction of the
energy drawn from Vdd that is delivered at the rail.  A linear regulator has
``eff = V_rail / Vdd``; an ideal voltage-doubling pump ``eff = V_rail /
(2 Vdd)``; a direct connection ``eff = 1``.  Datasheet IDD currents are
measured at Vdd, so all rail charges are referred back through these
efficiencies.

The interface signaling voltage Vddq is intentionally *not* modeled — the
paper excludes I/O link power because it depends on the link, not on the
DRAM (Section III.A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict

from ..errors import DescriptionError


class Rail(str, Enum):
    """Identifies the supply rail a charge event draws from."""

    VDD = "vdd"
    VINT = "vint"
    VBL = "vbl"
    VPP = "vpp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Canonical rail ordering used by the columnar evaluation kernel:
#: a voltage set decomposes into parallel level/efficiency vectors
#: indexed by this tuple (see :meth:`VoltageSet.rail_levels`).
RAIL_ORDER = (Rail.VDD, Rail.VINT, Rail.VBL, Rail.VPP)

#: Rail → position in :data:`RAIL_ORDER`.
RAIL_INDEX = {rail: index for index, rail in enumerate(RAIL_ORDER)}


#: Rail → dataclass field holding its level; module-level so the hot
#: ``level``/``efficiency`` lookups build no per-call dict.
_LEVEL_FIELDS = {Rail.VDD: "vdd", Rail.VINT: "vint",
                 Rail.VBL: "vbl", Rail.VPP: "vpp"}

#: Rail → dataclass field holding its generator efficiency (Vdd itself
#: is the reference and is handled inline as the constant 1.0).
_EFFICIENCY_FIELDS = {Rail.VINT: "eff_vint", Rail.VBL: "eff_vbl",
                      Rail.VPP: "eff_vpp"}


@dataclass(frozen=True)
class VoltageSet:
    """Voltage levels and generator efficiencies of the four domains."""

    vdd: float
    """External supply voltage (V)."""
    vint: float
    """Voltage used for general logic (V)."""
    vbl: float
    """Bitline voltage (V)."""
    vpp: float
    """Wordline (boosted) voltage (V)."""
    eff_vint: float = 1.0
    """Generator efficiency of the Vint regulator (1.0 = direct connect)."""
    eff_vbl: float = 1.0
    """Generator efficiency of the Vbl generator."""
    eff_vpp: float = 0.5
    """Pump efficiency of the Vpp charge pump."""

    def __post_init__(self) -> None:
        for name in ("vdd", "vint", "vbl", "vpp"):
            if getattr(self, name) <= 0:
                raise DescriptionError(f"voltage {name} must be positive")
        for name in ("eff_vint", "eff_vbl", "eff_vpp"):
            eff = getattr(self, name)
            if not 0.0 < eff <= 1.0:
                raise DescriptionError(
                    f"{name} must be in (0, 1], got {eff}"
                )
        if self.vint > self.vdd * 1.001:
            raise DescriptionError(
                f"vint ({self.vint} V) cannot exceed vdd ({self.vdd} V)"
            )
        if self.vbl > self.vpp:
            raise DescriptionError(
                f"vbl ({self.vbl} V) must not exceed vpp ({self.vpp} V): "
                "the wordline boost must cover the full bitline level"
            )

    def level(self, rail: Rail) -> float:
        """Voltage level of ``rail`` (V)."""
        if type(rail) is not Rail:
            rail = Rail(rail)
        return getattr(self, _LEVEL_FIELDS[rail])

    def efficiency(self, rail: Rail) -> float:
        """Generator efficiency of ``rail`` relative to Vdd."""
        if type(rail) is not Rail:
            rail = Rail(rail)
        if rail is Rail.VDD:
            return 1.0
        return getattr(self, _EFFICIENCY_FIELDS[rail])

    def vdd_energy(self, charge: float, rail: Rail) -> float:
        """Energy drawn from Vdd to deliver ``charge`` at ``rail`` (J).

        A charge Q delivered at a rail at level V costs Q·V at the rail and
        Q·V / eff at the external supply.
        """
        if type(rail) is not Rail:
            rail = Rail(rail)
        return charge * self.level(rail) / self.efficiency(rail)

    def vdd_current(self, charge_per_second: float, rail: Rail) -> float:
        """Vdd current needed to sustain a rail charge flow (A)."""
        return self.vdd_energy(charge_per_second, rail) / self.vdd

    def rail_levels(self) -> "tuple":
        """The four rail levels ordered by :data:`RAIL_ORDER` (V).

        The rail-field extraction of the vectorized evaluation kernel:
        one device contributes one row of the (variants × rails) level
        matrix.  Plain tuple so the core stays stdlib-only.
        """
        return (self.vdd, self.vint, self.vbl, self.vpp)

    def rail_efficiencies(self) -> "tuple":
        """Generator efficiencies ordered by :data:`RAIL_ORDER`.

        Vdd is its own reference (efficiency 1.0), matching
        :meth:`efficiency`.
        """
        return (1.0, self.eff_vint, self.eff_vbl, self.eff_vpp)

    def with_levels(self, **overrides: float) -> "VoltageSet":
        """Return a copy with the given levels/efficiencies replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """All levels and efficiencies as a plain dict."""
        return {
            "vdd": self.vdd,
            "vint": self.vint,
            "vbl": self.vbl,
            "vpp": self.vpp,
            "eff_vint": self.eff_vint,
            "eff_vbl": self.eff_vbl,
            "eff_vpp": self.eff_vpp,
        }
