"""Physical floorplan description (paper Section III.B.1, Figure 1).

A DRAM floorplan is described as a grid: a sequence of column types along
the horizontal axis and a sequence of row types along the vertical axis
(the paper's ``Vertical blocks = A1 P1 P2 P1 A1``), plus a size for each
type (``SizeVertical A1=3396um P1=200um P2=530um``).  A grid cell whose
column type *and* row type are both array types is an array block (a bank
or part of one); everything else is peripheral circuitry.

The cell-array organisation itself — bitline direction, cells per bitline
and per local wordline, open vs folded architecture, pitches and the widths
of the on-pitch stripes — is carried by :class:`ArrayArchitecture`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, FrozenSet, Tuple

from ..errors import DescriptionError, FloorplanError


class BitlineArchitecture(str, Enum):
    """Open or folded bitline architecture (Table II, 75→65 nm row)."""

    OPEN = "open"
    FOLDED = "folded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ArrayArchitecture:
    """Cell-array organisation parameters of Table I (physical floorplan)."""

    bitline_direction: str
    """``'v'`` if bitlines run parallel to the vertical axis, else ``'h'``.

    The paper phrases this as parallel or perpendicular to the pad row.
    """
    bits_per_bitline: int
    """Cells connected to one local bitline (typically 256-512)."""
    bits_per_swl: int
    """Cells connected to one sub- (local) wordline (typically 256-512)."""
    bitline_arch: BitlineArchitecture
    """Open or folded bitline architecture."""
    blocks_per_csl: int
    """Number of array blocks sharing one column select line."""
    wl_pitch: float
    """Wordline pitch — cell repeat distance along the bitline (m)."""
    bl_pitch: float
    """Bitline pitch — cell repeat distance along the wordline (m)."""
    width_sa_stripe: float
    """Width of one bitline sense-amplifier stripe (m)."""
    width_swd_stripe: float
    """Width of one sub-wordline (local wordline) driver stripe (m)."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "bitline_arch",
                           BitlineArchitecture(self.bitline_arch))
        if self.bitline_direction not in ("v", "h"):
            raise DescriptionError(
                "bitline_direction must be 'v' or 'h', got "
                f"{self.bitline_direction!r}"
            )
        for name in ("bits_per_bitline", "bits_per_swl", "blocks_per_csl"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise DescriptionError(f"{name} must be a positive integer")
        for name in ("wl_pitch", "bl_pitch", "width_sa_stripe",
                     "width_swd_stripe"):
            if getattr(self, name) <= 0:
                raise DescriptionError(f"{name} must be positive")
        if self.bits_per_bitline & (self.bits_per_bitline - 1):
            raise DescriptionError("bits_per_bitline must be a power of two")
        if self.bits_per_swl & (self.bits_per_swl - 1):
            raise DescriptionError("bits_per_swl must be a power of two")

    @property
    def is_folded(self) -> bool:
        """True for folded bitline architectures."""
        return self.bitline_arch is BitlineArchitecture.FOLDED

    @property
    def cell_area(self) -> float:
        """Area of one cell (m²).

        Open architectures store one bit per pitch rectangle (6F² style);
        folded architectures pay a factor of two because the complement
        bitline runs through the same sub-array and only every other
        wordline crossing holds a cell (8F² style).
        """
        factor = 2.0 if self.is_folded else 1.0
        return self.wl_pitch * self.bl_pitch * factor

    @property
    def local_bitline_length(self) -> float:
        """Physical length of one local bitline (m).

        In a folded architecture two cells share each bitline contact and
        only every other wordline crossing holds a cell, so the bitline
        spans twice as many wordline pitches per stored bit.
        """
        factor = 2.0 if self.is_folded else 1.0
        return self.bits_per_bitline * self.wl_pitch * factor

    @property
    def local_wordline_length(self) -> float:
        """Physical length of one sub-wordline (m)."""
        return self.bits_per_swl * self.bl_pitch

    @property
    def rows_per_subarray(self) -> int:
        """Addressable rows (wordlines) per sub-array.

        A folded sub-array holds cells on both the true and the complement
        bitline, so it contains twice as many wordlines as one bitline has
        cells.
        """
        return self.bits_per_bitline * (2 if self.is_folded else 1)


@dataclass(frozen=True)
class BlockSpec:
    """One named block type of the floorplan grid."""

    name: str
    """Type name as used in the axis sequences, e.g. ``A1`` or ``P2``."""
    is_array: bool
    """True when the block type is a cell-array block."""
    size: float = 0.0
    """Extent of the type along its axis (m); 0 means derive (array only)."""

    def __post_init__(self) -> None:
        if not self.name:
            raise DescriptionError("block type name must not be empty")
        if self.size < 0:
            raise DescriptionError("block size must not be negative")
        if not self.is_array and self.size == 0:
            raise DescriptionError(
                f"peripheral block {self.name!r} needs an explicit size"
            )


@dataclass(frozen=True)
class PhysicalFloorplan:
    """The full physical floorplan: array organisation plus block grid."""

    array: ArrayArchitecture
    """Cell-array organisation."""
    horizontal: Tuple[str, ...]
    """Block type names along the horizontal (x) axis, left to right."""
    vertical: Tuple[str, ...]
    """Block type names along the vertical (y) axis, bottom to top."""
    widths: Dict[str, float] = field(default_factory=dict)
    """Horizontal extent per block type (m); array types may be omitted."""
    heights: Dict[str, float] = field(default_factory=dict)
    """Vertical extent per block type (m); array types may be omitted."""
    array_types: FrozenSet[str] = frozenset({"A1"})
    """Names of block types that are cell-array blocks."""

    def __post_init__(self) -> None:
        if not self.horizontal or not self.vertical:
            raise FloorplanError("floorplan axes must not be empty")
        object.__setattr__(self, "horizontal", tuple(self.horizontal))
        object.__setattr__(self, "vertical", tuple(self.vertical))
        object.__setattr__(self, "array_types", frozenset(self.array_types))
        used = set(self.horizontal) | set(self.vertical)
        for name in used:
            if name in self.array_types:
                continue
            axis_maps = []
            if name in self.horizontal:
                axis_maps.append(self.widths)
            if name in self.vertical:
                axis_maps.append(self.heights)
            for sizes in axis_maps:
                if name not in sizes:
                    raise FloorplanError(
                        f"peripheral block type {name!r} has no size"
                    )
        for sizes in (self.widths, self.heights):
            for name, value in sizes.items():
                if value <= 0:
                    raise FloorplanError(
                        f"block type {name!r} has non-positive size {value}"
                    )
        if not any(name in self.array_types for name in self.horizontal):
            raise FloorplanError("no array block type on the horizontal axis")
        if not any(name in self.array_types for name in self.vertical):
            raise FloorplanError("no array block type on the vertical axis")

    # ------------------------------------------------------------------
    @property
    def array_columns(self) -> int:
        """Number of array-block columns in the grid."""
        return sum(1 for name in self.horizontal if name in self.array_types)

    @property
    def array_rows(self) -> int:
        """Number of array-block rows in the grid."""
        return sum(1 for name in self.vertical if name in self.array_types)

    @property
    def array_block_count(self) -> int:
        """Total number of array blocks (typically the bank count)."""
        return self.array_columns * self.array_rows

    def is_array_cell(self, x: int, y: int) -> bool:
        """True when grid cell (x, y) is an array block."""
        return (self.horizontal[x] in self.array_types
                and self.vertical[y] in self.array_types)

    def with_array(self, **overrides: object) -> "PhysicalFloorplan":
        """Return a copy with array-architecture fields replaced."""
        return replace(self, array=replace(self.array, **overrides))
