"""JSON interchange for device descriptions.

The DSL (:mod:`repro.dsl`) is the human-facing format; this module is the
machine-facing one: a stable JSON schema for storing descriptions in
configuration systems or passing them between tools.  Round trips are
exact for every field.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import DescriptionError
from .dram import DramDescription
from .floorplan import ArrayArchitecture, PhysicalFloorplan
from .logic import LogicBlock
from .pattern import Command, Pattern
from .signaling import SegmentKind, SignalNet, SignalSegment, Trigger
from .specification import Specification, TimingParameters
from .technology import TechnologyParameters
from .voltages import Rail, VoltageSet

SCHEMA_VERSION = 1


def to_dict(device: DramDescription) -> Dict[str, Any]:
    """Serialise a description to plain JSON-compatible data."""
    array = device.floorplan.array
    return {
        "schema_version": SCHEMA_VERSION,
        "name": device.name,
        "interface": device.interface,
        "node": device.node,
        "constant_current": device.constant_current,
        "technology": device.technology.as_dict(),
        "voltages": device.voltages.as_dict(),
        "floorplan": {
            "array": {
                "bitline_direction": array.bitline_direction,
                "bits_per_bitline": array.bits_per_bitline,
                "bits_per_swl": array.bits_per_swl,
                "bitline_arch": array.bitline_arch.value,
                "blocks_per_csl": array.blocks_per_csl,
                "wl_pitch": array.wl_pitch,
                "bl_pitch": array.bl_pitch,
                "width_sa_stripe": array.width_sa_stripe,
                "width_swd_stripe": array.width_swd_stripe,
            },
            "horizontal": list(device.floorplan.horizontal),
            "vertical": list(device.floorplan.vertical),
            "widths": dict(device.floorplan.widths),
            "heights": dict(device.floorplan.heights),
            "array_types": sorted(device.floorplan.array_types),
        },
        "signaling": [_net_to_dict(net) for net in device.signaling],
        "spec": {
            "io_width": device.spec.io_width,
            "datarate": device.spec.datarate,
            "n_clock_wires": device.spec.n_clock_wires,
            "f_dataclock": device.spec.f_dataclock,
            "f_ctrlclock": device.spec.f_ctrlclock,
            "bank_bits": device.spec.bank_bits,
            "row_bits": device.spec.row_bits,
            "col_bits": device.spec.col_bits,
            "n_misc_control": device.spec.n_misc_control,
            "prefetch": device.spec.prefetch,
            "burst_length": device.spec.burst_length,
            "bank_groups": device.spec.bank_groups,
        },
        "timing": {
            "trc": device.timing.trc,
            "trrd": device.timing.trrd,
            "trrd_l": device.timing.trrd_l,
            "tfaw": device.timing.tfaw,
            "trcd": device.timing.trcd,
            "twr": device.timing.twr,
            "trtp": device.timing.trtp,
            "trp": device.timing.trp,
            "tras": device.timing.tras,
            "trfc": device.timing.trfc,
            "tref_interval": device.timing.tref_interval,
            "rows_per_refresh": device.timing.rows_per_refresh,
        },
        "logic_blocks": [_block_to_dict(block)
                         for block in device.logic_blocks],
        "pattern": [command.value for command in device.pattern],
    }


def _net_to_dict(net: SignalNet) -> Dict[str, Any]:
    return {
        "name": net.name,
        "trigger": net.trigger.value,
        "operations": sorted(op.value for op in net.operations),
        "rail": net.rail.value,
        "component": net.component,
        "segments": [
            {
                "kind": segment.kind.value,
                "start": list(segment.start),
                "end": list(segment.end) if segment.end else None,
                "fraction": segment.fraction,
                "direction": segment.direction,
                "wires": segment.wires,
                "toggle": segment.toggle,
                "buffer_w_n": segment.buffer_w_n,
                "buffer_w_p": segment.buffer_w_p,
                "mux_ratio": segment.mux_ratio,
            }
            for segment in net.segments
        ],
    }


def _block_to_dict(block: LogicBlock) -> Dict[str, Any]:
    return {
        "name": block.name,
        "n_gates": block.n_gates,
        "w_n": block.w_n,
        "w_p": block.w_p,
        "transistors_per_gate": block.transistors_per_gate,
        "layout_density": block.layout_density,
        "wiring_density": block.wiring_density,
        "operations": sorted(op.value for op in block.operations),
        "toggle": block.toggle,
        "trigger": block.trigger.value,
        "rail": block.rail.value,
        "component": block.component,
    }


def from_dict(data: Dict[str, Any]) -> DramDescription:
    """Rebuild a description from :func:`to_dict` output."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise DescriptionError(
            f"unsupported description schema version {version!r}"
        )
    array_data = data["floorplan"]["array"]
    floorplan = PhysicalFloorplan(
        array=ArrayArchitecture(**array_data),
        horizontal=tuple(data["floorplan"]["horizontal"]),
        vertical=tuple(data["floorplan"]["vertical"]),
        widths=dict(data["floorplan"]["widths"]),
        heights=dict(data["floorplan"]["heights"]),
        array_types=frozenset(data["floorplan"]["array_types"]),
    )
    nets: List[SignalNet] = []
    for net_data in data["signaling"]:
        segments = tuple(
            SignalSegment(
                kind=SegmentKind(seg["kind"]),
                start=tuple(seg["start"]),
                end=tuple(seg["end"]) if seg["end"] else None,
                fraction=seg["fraction"],
                direction=seg["direction"],
                wires=seg["wires"],
                toggle=seg["toggle"],
                buffer_w_n=seg["buffer_w_n"],
                buffer_w_p=seg["buffer_w_p"],
                mux_ratio=seg["mux_ratio"],
            )
            for seg in net_data["segments"]
        )
        nets.append(SignalNet(
            name=net_data["name"],
            segments=segments,
            trigger=Trigger(net_data["trigger"]),
            operations=frozenset(net_data["operations"]),
            rail=Rail(net_data["rail"]),
            component=net_data["component"],
        ))
    blocks = tuple(
        LogicBlock(
            name=block["name"],
            n_gates=block["n_gates"],
            w_n=block["w_n"],
            w_p=block["w_p"],
            transistors_per_gate=block["transistors_per_gate"],
            layout_density=block["layout_density"],
            wiring_density=block["wiring_density"],
            operations=frozenset(block["operations"]),
            toggle=block["toggle"],
            trigger=Trigger(block["trigger"]),
            rail=Rail(block["rail"]),
            component=block["component"],
        )
        for block in data["logic_blocks"]
    )
    from .signaling import SignalingFloorplan

    return DramDescription(
        name=data["name"],
        interface=data["interface"],
        node=data["node"],
        technology=TechnologyParameters(**data["technology"]),
        voltages=VoltageSet(**data["voltages"]),
        floorplan=floorplan,
        signaling=SignalingFloorplan(tuple(nets)),
        spec=Specification(**data["spec"]),
        timing=TimingParameters(**data["timing"]),
        logic_blocks=blocks,
        pattern=Pattern(tuple(Command(token)
                              for token in data["pattern"])),
        constant_current=data["constant_current"],
    )


def dumps_json(device: DramDescription, indent: int = 2) -> str:
    """Serialise a description to a JSON string."""
    return json.dumps(to_dict(device), indent=indent)


def loads_json(text: str) -> DramDescription:
    """Parse a JSON string into a description."""
    return from_dict(json.loads(text))
