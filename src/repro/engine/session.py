"""The evaluation session — shared construction path for all analyses.

An :class:`EvaluationSession` owns a :class:`~repro.engine.cache.ModelCache`
and offers the three operations every sweep is made of:

* :meth:`EvaluationSession.model` — the (cached) built model of a device;
* :meth:`EvaluationSession.evaluate` — pattern power of a device;
* :meth:`EvaluationSession.map` — evaluate a callable over many devices,
  optionally on a thread pool, with deterministic result ordering.

Sessions are cheap to create; analyses that are not handed one create a
private session per call (:func:`ensure_session`), which keeps the
public API backward compatible while still deduplicating construction
*within* that call.  Handing one session to several analyses extends the
reuse across them — the nominal device of a sensitivity Pareto, a corner
sweep and a scheme comparison is then built exactly once.

Parallelism caveat: ``jobs > 1`` uses ``concurrent.futures``
``ThreadPoolExecutor``.  The model is pure Python, so threads overlap
little compute under the GIL; the knob exists for API stability (and
pays off when evaluation callables release the GIL or block).  Results
are ordered by input position regardless of completion order, and the
cache is lock-protected, so parallel and serial runs are bit-for-bit
identical.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import (Callable, Iterable, List, Optional, Sequence, Tuple,
                    TypeVar)

from ..core import ChargeEvent, DramPowerModel, PatternPower
from ..description import DramDescription, Pattern
from ..errors import ModelError
from .cache import DEFAULT_CAPACITY, EngineStats, ModelCache

Result = TypeVar("Result")


class EvaluationSession:
    """One shared context for building and evaluating device models."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.cache = ModelCache(capacity=capacity)

    # ------------------------------------------------------------------
    def model(self, device: DramDescription,
              events: Optional[Tuple[ChargeEvent, ...]] = None
              ) -> DramPowerModel:
        """The built power model of ``device`` (cached by fingerprint).

        ``events`` overrides the charge-event list (scheme-transformed
        models); such models bypass the cache but reuse geometry.
        """
        return self.cache.model(device, events=events)

    def evaluate(self, device: DramDescription,
                 pattern: Optional[Pattern] = None) -> PatternPower:
        """Pattern power of ``device`` (the device default pattern when
        ``pattern`` is omitted)."""
        return self.model(device).pattern_power(pattern)

    def with_events(self, model: DramPowerModel,
                    events: Tuple[ChargeEvent, ...]) -> DramPowerModel:
        """A sibling of ``model`` with a substituted charge-event list.

        Geometry is shared with the original model; the result is not
        cached (events are not part of the fingerprint key).
        """
        return DramPowerModel(model.device, events=events,
                              geometry=model.geometry)

    # ------------------------------------------------------------------
    def map(self, devices: Iterable[DramDescription],
            fn: Callable[[DramPowerModel], Result],
            jobs: Optional[int] = None) -> List[Result]:
        """Apply ``fn`` to the built model of every device, in order.

        ``jobs`` > 1 evaluates on a thread pool; the result list is
        always ordered like ``devices`` and equals the serial result.
        """
        devices = list(devices)
        if jobs is not None and jobs <= 0:
            raise ModelError("jobs must be a positive worker count")
        if jobs is None or jobs == 1 or len(devices) <= 1:
            return [fn(self.model(device)) for device in devices]
        workers = min(jobs, len(devices))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda dev: fn(self.model(dev)),
                                 devices))

    def map_devices(self, devices: Iterable[DramDescription],
                    fn: Callable[[DramDescription], Result],
                    jobs: Optional[int] = None) -> List[Result]:
        """Like :meth:`map` but hands ``fn`` the description itself.

        For evaluation functions that route through the session on
        their own (e.g. scheme evaluations building several models).
        """
        return self.map(devices, lambda model: fn(model.device),
                        jobs=jobs)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """Counter snapshot of the underlying model cache."""
        return self.cache.stats()


def ensure_session(session: Optional[EvaluationSession]
                   ) -> EvaluationSession:
    """``session`` itself, or a fresh private one when ``None``.

    The standard prologue of every analysis entry point: passing no
    session preserves the historical per-call behaviour; passing one
    shares the model cache across calls.
    """
    if session is None:
        return EvaluationSession()
    return session


def evaluate_many(devices: Sequence[DramDescription],
                  fn: Callable[[DramPowerModel], Result],
                  jobs: Optional[int] = None,
                  session: Optional[EvaluationSession] = None
                  ) -> List[Result]:
    """One-shot convenience over :meth:`EvaluationSession.map`."""
    return ensure_session(session).map(devices, fn, jobs=jobs)
