"""The evaluation session — shared construction path for all analyses.

An :class:`EvaluationSession` owns a :class:`~repro.engine.cache.ModelCache`
and offers the three operations every sweep is made of:

* :meth:`EvaluationSession.model` — the (cached) built model of a device;
* :meth:`EvaluationSession.evaluate` — pattern power of a device;
* :meth:`EvaluationSession.map` — evaluate a callable over many devices,
  on a selectable backend, with deterministic result ordering.

Sessions are cheap to create; analyses that are not handed one create a
private session per call (:func:`ensure_session`), which keeps the
public API backward compatible while still deduplicating construction
*within* that call.  Handing one session to several analyses extends the
reuse across them — the nominal device of a sensitivity Pareto, a corner
sweep and a scheme comparison is then built exactly once.

Backends: ``map(..., backend=...)`` selects ``"serial"`` (default),
``"thread"`` (``concurrent.futures`` threads — the model is pure
Python, so the GIL leaves little compute overlap; useful when the
evaluation callable blocks or releases the GIL) or ``"process"``
(contiguous shards on a ``ProcessPoolExecutor`` of per-worker
sessions — real CPU scale-out; requires a picklable callable) or
``"vector"`` (batchable sweep families fold as (variants × events)
array math in-process — see :mod:`repro.engine.vector`; needs the
optional numpy dependency and degrades to serial without it) or
``"auto"`` (serial vs process vs vector chosen per call from the
sweep width, the measured per-build and per-fold costs and the
usable core count).  Serial, thread and process preserve input
ordering and equal the serial result bit-for-bit; vector agrees to
~1e-15 relative.  Passing only ``jobs > 1`` keeps the historical
thread-pool behaviour.  The process backend survives worker loss: a
crashed or killed worker's chunks are retried once on a fresh pool
and then degrade to in-parent serial evaluation, with the recovery
recorded in ``session.stats`` (``pool_retries``,
``serial_fallbacks``).

With ``cache_dir`` set, the session's model cache spills to a
persistent on-disk store (see :mod:`repro.engine.diskcache`), so
repeated runs — and process-backend workers, which inherit the same
directory — skip cold builds entirely.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import (Callable, Iterable, List, Optional, Sequence, Tuple,
                    TypeVar)

from ..core import ChargeEvent, DramPowerModel, PatternPower
from ..description import DramDescription, Pattern
from ..errors import ModelError
from .cache import DEFAULT_CAPACITY, EngineStats, ModelCache
from .diskcache import DiskModelCache
from .executor import (AUTO, VECTOR, choose_backend, default_jobs,
                       estimate_build_seconds, estimate_vector_seconds,
                       is_picklable, process_map, resolve_backend)
from .fingerprint import fingerprint
from .vector import (MIN_BATCH, VectorPlan, build_family_models,
                     numpy_available, plan_batches)

Result = TypeVar("Result")


class _DeviceCall:
    """Picklable adapter turning ``fn(device)`` into ``fn(model)``.

    :meth:`EvaluationSession.map_devices` needs the adapter to be a
    module-level class (not a lambda) so the process backend can ship
    it to workers.
    """

    def __init__(self, fn: Callable[[DramDescription], Result]):
        self.fn = fn

    def __call__(self, model: DramPowerModel) -> Result:
        return self.fn(model.device)


class EvaluationSession:
    """One shared context for building and evaluating device models."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 cache_dir: Optional[str] = None,
                 disk: Optional[DiskModelCache] = None):
        if disk is None and cache_dir is not None:
            disk = DiskModelCache(cache_dir)
        self.cache = ModelCache(capacity=capacity, disk=disk)
        #: Directory handed to process-backend workers so their private
        #: sessions share the same persistent store.
        self.cache_dir = (str(disk.directory) if disk is not None
                          else None)

    # ------------------------------------------------------------------
    def model(self, device: DramDescription,
              events: Optional[Tuple[ChargeEvent, ...]] = None
              ) -> DramPowerModel:
        """The built power model of ``device`` (cached by fingerprint).

        ``events`` overrides the charge-event list (scheme-transformed
        models); such models bypass the cache but reuse geometry.
        """
        return self.cache.model(device, events=events)

    def evaluate(self, device: DramDescription,
                 pattern: Optional[Pattern] = None) -> PatternPower:
        """Pattern power of ``device`` (the device default pattern when
        ``pattern`` is omitted)."""
        return self.model(device).pattern_power(pattern)

    def with_events(self, model: DramPowerModel,
                    events: Tuple[ChargeEvent, ...]) -> DramPowerModel:
        """A sibling of ``model`` with a substituted charge-event list.

        Geometry is shared with the original model; the result is not
        cached (events are not part of the fingerprint key).
        """
        return DramPowerModel(model.device, events=events,
                              geometry=model.geometry)

    # ------------------------------------------------------------------
    def _call_with(self, index: int, device: DramDescription,
                   model: DramPowerModel,
                   fn: Callable[[DramPowerModel], Result]) -> Result:
        """Apply ``fn`` to a built model, naming the device on failure."""
        try:
            return fn(model)
        except ModelError:
            raise
        except Exception as exc:
            raise ModelError(
                f"evaluation callable failed for device {index} "
                f"(fingerprint {fingerprint(device)[:12]}): "
                f"{type(exc).__name__}: {exc}") from exc

    def _evaluate_one(self, index: int, device: DramDescription,
                      fn: Callable[[DramPowerModel], Result]) -> Result:
        """Build + evaluate one device, naming it on callable failure."""
        return self._call_with(index, device, self.model(device), fn)

    def map_vectorized(self, devices: Iterable[DramDescription],
                       fn: Callable[[DramPowerModel], Result],
                       plan: Optional[VectorPlan] = None
                       ) -> List[Result]:
        """Apply ``fn`` over models built by the columnar kernel.

        The whole batch's models come from
        :func:`~repro.engine.vector.build_family_models` — warm LRU
        hits reused, batchable families folded as (variants × events)
        arrays, the rest built scalar — then ``fn`` runs serially in
        input order.  Results agree with :meth:`map` to ~1e-15
        relative (float summation order is the only difference);
        without numpy the call degrades to the scalar serial path and
        sets the ``vector_downgrades`` stats marker.
        """
        devices = list(devices)
        models = build_family_models(devices, self.cache, plan=plan)
        return [self._call_with(index, device, model, fn)
                for index, (device, model)
                in enumerate(zip(devices, models))]

    def map(self, devices: Iterable[DramDescription],
            fn: Callable[[DramPowerModel], Result],
            jobs: Optional[int] = None,
            backend: Optional[str] = None) -> List[Result]:
        """Apply ``fn`` to the built model of every device, in order.

        ``backend`` selects serial, thread, process or vector
        execution (see the module docstring); omitted, ``jobs > 1``
        keeps the historical thread pool.  ``"auto"`` picks serial,
        process or the columnar vector kernel per call from the sweep
        width, the session's measured per-build and per-fold costs
        and the worker count
        (:func:`~repro.engine.executor.choose_backend`); an
        unpicklable callable downgrades auto to serial instead of
        failing.  The result list is always ordered like ``devices``;
        serial, thread and process agree bit-for-bit, the vector
        backend to ~1e-15 relative (see :meth:`map_vectorized`).  A
        raising ``fn`` surfaces as a :class:`ModelError` naming the
        failing device's index and fingerprint.
        """
        devices = list(devices)
        backend = resolve_backend(backend, jobs)
        workers = jobs if jobs is not None else default_jobs()
        plan = None
        if backend == AUTO:
            snapshot = self.stats
            if len(devices) >= MIN_BATCH and numpy_available():
                candidate = plan_batches(devices)
                if candidate.eligible:
                    plan = candidate
            backend = choose_backend(
                len(devices), jobs,
                estimate_build_seconds(snapshot),
                expected_hit_rate=snapshot.hit_rate,
                vector_eligible=plan is not None,
                vector_seconds=estimate_vector_seconds(snapshot))
            if backend == "process" and not is_picklable(fn):
                backend = "serial"
        if backend == VECTOR:
            return self.map_vectorized(devices, fn, plan=plan)
        if backend == "process" and len(devices) > 1 and workers > 1:
            try:
                # Export the sweep's first device as the shared base:
                # its clean stages seed every worker over shared
                # memory.  Failures just skip the store — the device
                # will then surface its error in a worker with the
                # usual index/fingerprint labelling.
                shm_payload = self.cache.stage_export(devices[0])
            except Exception:
                shm_payload = None
            results, worker_stats = process_map(
                devices, fn, jobs=workers,
                capacity=self.cache.capacity,
                cache_dir=self.cache_dir,
                shm_payload=shm_payload)
            self.cache.absorb(worker_stats)
            return results
        if (backend == "serial" or workers == 1
                or len(devices) <= 1):
            return [self._evaluate_one(index, device, fn)
                    for index, device in enumerate(devices)]
        workers = min(workers, len(devices))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(
                lambda pair: self._evaluate_one(pair[0], pair[1], fn),
                enumerate(devices)))

    def map_devices(self, devices: Iterable[DramDescription],
                    fn: Callable[[DramDescription], Result],
                    jobs: Optional[int] = None,
                    backend: Optional[str] = None) -> List[Result]:
        """Like :meth:`map` but hands ``fn`` the description itself.

        For evaluation functions that route through the session on
        their own (e.g. scheme evaluations building several models).
        """
        return self.map(devices, _DeviceCall(fn), jobs=jobs,
                        backend=backend)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> EngineStats:
        """Counter snapshot of the underlying model cache."""
        return self.cache.stats()


def ensure_session(session: Optional[EvaluationSession]
                   ) -> EvaluationSession:
    """``session`` itself, or a fresh private one when ``None``.

    The standard prologue of every analysis entry point: passing no
    session preserves the historical per-call behaviour; passing one
    shares the model cache across calls.
    """
    if session is None:
        return EvaluationSession()
    return session


def evaluate_many(devices: Sequence[DramDescription],
                  fn: Callable[[DramPowerModel], Result],
                  jobs: Optional[int] = None,
                  backend: Optional[str] = None,
                  session: Optional[EvaluationSession] = None
                  ) -> List[Result]:
    """One-shot convenience over :meth:`EvaluationSession.map`."""
    return ensure_session(session).map(devices, fn, jobs=jobs,
                                       backend=backend)
