"""Declarative device perturbations — sweeps as *deltas*, not clones.

The sweep code used to scatter ad-hoc ``dataclasses.replace`` /
``scale_path`` chains through every analysis module.  A
:class:`Variant` instead *describes* a perturbation — an ordered list
of primitive deltas (scale a dotted path, set a dotted path, scale a
logic-block field, or an arbitrary transform) — and applies it to any
base description on demand.

Variants are immutable and composable: every builder method returns an
extended copy, and :meth:`Variant.merged` concatenates two variants.
Because a variant is data (up to the custom-transform escape hatch), a
sweep definition can be inspected, labelled and reused across base
devices — exactly what the corner, Monte-Carlo and sensitivity sweeps
need.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Tuple

from ..description import DramDescription

Transform = Callable[[DramDescription], DramDescription]

#: Logic-block fields clamped to a physical ceiling of 1.0 when scaled.
_LOGIC_UNIT_FIELDS = ("layout_density", "wiring_density", "toggle")


@dataclass(frozen=True)
class _Delta:
    """One primitive perturbation step."""

    kind: str
    """``scale``, ``set``, ``logic`` or ``call``."""
    target: str = ""
    """Dotted parameter path, or logic-block field name."""
    value: Any = None
    """Factor (scale/logic), new value (set) or transform (call)."""

    def apply(self, device: DramDescription) -> DramDescription:
        if self.kind == "scale":
            return device.scale_path(self.target, self.value)
        if self.kind == "set":
            return device.replace_path(self.target, self.value)
        if self.kind == "logic":
            return _scale_logic_blocks(device, self.target, self.value)
        return self.value(device)


def _scale_logic_blocks(device: DramDescription, field: str,
                        factor: float) -> DramDescription:
    """Scale one field of every logic block, with physical clamps."""
    blocks = []
    for block in device.logic_blocks:
        scaled = getattr(block, field) * factor
        if field == "n_gates":
            scaled = max(1, int(round(scaled)))
        if field in _LOGIC_UNIT_FIELDS:
            scaled = min(1.0, scaled)
        blocks.append(dataclasses.replace(block, **{field: scaled}))
    return device.evolve(logic_blocks=tuple(blocks))


@dataclass(frozen=True)
class Variant:
    """An ordered, immutable bundle of description deltas."""

    label: str = ""
    """Optional human-readable name (corner/sample labels)."""
    deltas: Tuple[_Delta, ...] = ()

    # -- builders ------------------------------------------------------
    def scaled(self, path: str, factor: float) -> "Variant":
        """Extend with: multiply the dotted-path parameter by a factor."""
        return self._extended(_Delta("scale", path, factor))

    def scaled_paths(self, paths: Iterable[str],
                     factor: float) -> "Variant":
        """Extend with the same factor over several dotted paths."""
        variant = self
        for path in paths:
            variant = variant.scaled(path, factor)
        return variant

    def with_value(self, path: str, value: Any) -> "Variant":
        """Extend with: set the dotted-path parameter to a value."""
        return self._extended(_Delta("set", path, value))

    def scaled_logic(self, field: str, factor: float) -> "Variant":
        """Extend with: scale one field of every peripheral logic block
        (gate counts round to ≥1, densities/toggle clamp at 1.0)."""
        return self._extended(_Delta("logic", field, factor))

    def transformed(self, transform: Transform) -> "Variant":
        """Extend with an arbitrary device transform (escape hatch for
        coupled perturbations such as rail/efficiency co-scaling)."""
        return self._extended(_Delta("call", "", transform))

    def merged(self, other: "Variant") -> "Variant":
        """This variant followed by ``other`` (labels joined)."""
        label = "+".join(part for part in (self.label, other.label)
                         if part)
        return Variant(label=label, deltas=self.deltas + other.deltas)

    def labelled(self, label: str) -> "Variant":
        """The same deltas under a new label."""
        return Variant(label=label, deltas=self.deltas)

    def _extended(self, delta: _Delta) -> "Variant":
        return Variant(label=self.label, deltas=self.deltas + (delta,))

    # -- application ---------------------------------------------------
    def apply(self, device: DramDescription) -> DramDescription:
        """The base description with every delta applied in order."""
        for delta in self.deltas:
            device = delta.apply(device)
        return device

    def __call__(self, device: DramDescription) -> DramDescription:
        return self.apply(device)

    def __bool__(self) -> bool:
        return bool(self.deltas)

    # -- stage introspection -------------------------------------------
    def touched_fields(self) -> Tuple[str, ...]:
        """The top-level description fields this variant may change.

        Path deltas touch their dotted path's root field; logic deltas
        touch ``logic_blocks``; ``call`` deltas are opaque transforms
        and conservatively touch every field.  Sorted and deduplicated.
        """
        fields = set()
        for delta in self.deltas:
            if delta.kind in ("scale", "set"):
                fields.add(delta.target.split(".", 1)[0])
            elif delta.kind == "logic":
                fields.add("logic_blocks")
            else:
                fields.update(
                    item.name
                    for item in dataclasses.fields(DramDescription))
        return tuple(sorted(fields))

    def dirty_stages(self) -> Tuple[str, ...]:
        """Pipeline stages this variant invalidates (see
        :func:`repro.engine.stages.dirty_stages`).

        A voltage-only variant, for example, reports
        ``("charge", "current", "power")`` — its sweeps reuse the
        geometry and capacitance stages of the base model verbatim.
        """
        from .stages import dirty_stages
        return dirty_stages(self.touched_fields())


def scaling(paths: Iterable[str], factor: float,
            label: str = "") -> Variant:
    """A variant scaling each of ``paths`` by ``factor``."""
    return Variant(label=label).scaled_paths(paths, factor)
