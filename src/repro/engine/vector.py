"""Columnar vectorized evaluation of sweep families.

A sweep family — the variants of a sensitivity Pareto, a Monte-Carlo
draw, a voltage or technology trend — is a batch of devices that share
a floorplan and differ in a handful of numeric fields.  The scalar
path builds each variant's model independently; even with perfect
stage-cache reuse, the per-variant charge → current → power fold
dominates (the incremental benchmarks record voltage sweeps at ~1×
warm).  This module folds the *whole family at once* as array math:

* devices group by their **geometry** stage key (shared floorplan and
  spec, hence shared firing rates) and subgroup by the **structure
  signature** of their skeleton lists
  (:func:`repro.core.events.skeleton_signature` — same rails, swing
  references, triggers, gating and components in the same order);
* within a subgroup, per-event energy is one broadcast expression
  over ``(variants × events)`` capacitance/count matrices and
  ``(variants × rails)`` level/efficiency matrices — the mirror of
  ``count · C · swing · V_rail / eff`` per event;
* the per-operation fold is one matmul against a shared
  ``(events × buckets)`` firing-weight matrix whose columns are the
  ``(command, component)`` buckets of the scalar
  :class:`~repro.core.operations.OperationEnergies` — so every variant
  lands real :class:`~repro.core.DramPowerModel` objects whose folded
  energies agree with the scalar oracle to ~1e-15 relative (the only
  difference is float summation order).

numpy is an *optional* dependency (the ``repro[vector]`` extra): with
numpy missing every entry point degrades to the scalar path and sets
the one-time ``vector_downgrades`` marker in
:class:`~repro.engine.cache.EngineStats`.  Structures the kernel
cannot express — singleton subgroups, empty event lists, non-clocked
background events — fall back to the scalar path silently and are
counted as ``vector_fallbacks``.  Vector-built models enter the
session's in-memory LRU (so later scalar lookups hit) but are not
written to the disk cache: refolding is cheaper than a pickle
round-trip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy leg
    _np = None

from ..core.builder import build_skeletons
from ..core.events import (TRIGGER_KIND, Component, skeleton_columns,
                           skeleton_signature)
from ..core.model import DramPowerModel
from ..core.operations import (EnergyBreakdown, OperationEnergies,
                               command_activity_time)
from ..description import Command, DramDescription
from ..description.voltages import RAIL_INDEX
from ..floorplan import FloorplanGeometry
from .stages import chain_stage_key

#: Narrowest sweep the auto policy will consider vector-eligible: the
#: kernel's per-batch setup (grouping, weight matrix, array staging)
#: only amortises over a real family.  Explicit ``backend="vector"``
#: calls fold any subgroup of two or more.
MIN_BATCH = 8


def numpy_available() -> bool:
    """Whether the columnar kernel can run in this process."""
    return _np is not None


class VectorIneligible(Exception):
    """A subgroup's structure cannot be expressed columnarly."""


@dataclass(frozen=True)
class VectorPlan:
    """Grouping of one device batch for the columnar kernel.

    Built by :func:`plan_batches`; carries the geometry/capacitance
    stage keys so :func:`build_family_models` does not hash them a
    second time when ``backend="auto"`` already planned the call.
    """

    geometry_keys: Tuple[str, ...]
    """Per-device geometry stage key (grouping axis)."""
    capacitance_keys: Tuple[str, ...]
    """Per-device capacitance stage key (skeleton identity)."""
    groups: Dict[str, Tuple[int, ...]]
    """Geometry key → indices of the devices sharing it."""

    @property
    def eligible(self) -> bool:
        """Whether any group is wide enough for the auto policy."""
        return any(len(members) >= MIN_BATCH
                   for members in self.groups.values())


#: Stage-input field names, loaded once (identity-dedup below).
_GEOMETRY_FIELDS = ("floorplan", "spec")
_CAPACITANCE_FIELDS = ("technology", "floorplan", "spec", "signaling",
                       "logic_blocks")


def plan_batches(devices: Sequence[DramDescription]) -> VectorPlan:
    """Group a device batch by shared geometry stage key.

    Two chained hashes per device (geometry, capacitance) — the head
    of the :func:`~repro.engine.stages.stage_keys` chain — instead of
    all five: the kernel never keys charge/current/power artifacts.
    Variants built by ``dataclasses.replace`` share their unchanged
    sub-objects, so the hashes dedupe by input *identity* within the
    call — a 64-point voltage family hashes its shared floorplan and
    spec once, not 64 times.  (Identity keys are only valid while the
    devices stay alive, which the local scope guarantees.)
    """
    geometry_keys: List[str] = []
    capacitance_keys: List[str] = []
    groups: Dict[str, List[int]] = {}
    memo: Dict[Tuple, str] = {}
    for index, device in enumerate(devices):
        identity = tuple(id(getattr(device, name))
                         for name in _GEOMETRY_FIELDS)
        gkey = memo.get(identity)
        if gkey is None:
            gkey = chain_stage_key("", "geometry", device)
            memo[identity] = gkey
        identity = (gkey,) + tuple(id(getattr(device, name))
                                   for name in _CAPACITANCE_FIELDS)
        ckey = memo.get(identity)
        if ckey is None:
            ckey = chain_stage_key(gkey, "capacitance", device)
            memo[identity] = ckey
        geometry_keys.append(gkey)
        capacitance_keys.append(ckey)
        groups.setdefault(gkey, []).append(index)
    return VectorPlan(
        geometry_keys=tuple(geometry_keys),
        capacitance_keys=tuple(capacitance_keys),
        groups={gkey: tuple(members)
                for gkey, members in groups.items()},
    )


def _check_signature(signature: Tuple) -> None:
    """Reject structures the fold cannot express (→ scalar path)."""
    if not signature:
        raise VectorIneligible("empty event list")
    for entry in signature:
        swing_rail, divisor, rail, trigger, operations, _component = entry
        if trigger not in TRIGGER_KIND:
            raise VectorIneligible(f"unknown trigger {trigger!r}")
        if not operations and TRIGGER_KIND[trigger] == 0:
            raise VectorIneligible("non-clocked background event")
        if swing_rail not in RAIL_INDEX or rail not in RAIL_INDEX:
            raise VectorIneligible("unknown rail")
        if not divisor:
            raise VectorIneligible("zero swing divisor")


def _weight_layout(signature: Tuple, device: DramDescription):
    """The shared firing-weight matrix of one structure signature.

    Returns ``(weight_columns, layout, background)`` where
    ``weight_columns[b][e]`` is event *e*'s firings contribution to
    bucket *b*, ``layout`` maps each command to its ordered
    ``(component, bucket)`` pairs and ``background`` is the same for
    the always-on buckets.  Bucket presence and component order mirror
    the scalar fold exactly: a ``(command, component)`` bucket exists
    iff some event with that component fires on that command, in
    first-seen event order — so the per-variant
    :class:`~repro.core.operations.EnergyBreakdown` dicts come out
    insertion-ordered like the oracle's.
    """
    spec = device.spec
    events = len(signature)
    weight_columns: List[List[float]] = []
    layout: List[Tuple[Command, List[Tuple[Component, int]]]] = []
    for command in Command:
        duration = command_activity_time(device, command)
        rates = (1.0, duration * spec.f_ctrlclock,
                 duration * spec.f_dataclock)
        buckets: Dict[Component, int] = {}
        ordered: List[Tuple[Component, int]] = []
        for position, entry in enumerate(signature):
            _swing_rail, _div, _rail, trigger, operations, component \
                = entry
            if not operations or command not in operations:
                continue
            column = buckets.get(component)
            if column is None:
                column = len(weight_columns)
                buckets[component] = column
                ordered.append((component, column))
                weight_columns.append([0.0] * events)
            weight_columns[column][position] = \
                rates[TRIGGER_KIND[trigger]]
        layout.append((command, ordered))
    clock_rates = (0.0, spec.f_ctrlclock, spec.f_dataclock)
    buckets = {}
    background: List[Tuple[Component, int]] = []
    for position, entry in enumerate(signature):
        _swing_rail, _div, _rail, trigger, operations, component = entry
        if operations:
            continue
        column = buckets.get(component)
        if column is None:
            column = len(weight_columns)
            buckets[component] = column
            background.append((component, column))
            weight_columns.append([0.0] * events)
        weight_columns[column][position] = \
            clock_rates[TRIGGER_KIND[trigger]]
    return weight_columns, layout, background


def _fold_subgroup(devices: Sequence[DramDescription],
                   members: Sequence[Tuple[int, str]],
                   signature: Tuple,
                   skeletons_by_ckey: Dict[str, tuple],
                   plan: VectorPlan,
                   geometry: FloorplanGeometry,
                   cache,
                   models: List[Optional[DramPowerModel]]) -> None:
    """Fold one structure-aligned subgroup and store its models."""
    _check_signature(signature)
    first_device = devices[members[0][0]]
    weight_columns, layout, background_layout = _weight_layout(
        signature, first_device)

    swing_index = [RAIL_INDEX[entry[0]] for entry in signature]
    inverse_divisor = [1.0 / entry[1] for entry in signature]
    rail_index = [RAIL_INDEX[entry[2]] for entry in signature]

    columns_cache: Dict[str, tuple] = {}
    capacitance_rows = []
    count_rows = []
    level_rows = []
    efficiency_rows = []
    for index, _key in members:
        device = devices[index]
        ckey = plan.capacitance_keys[index]
        columns = columns_cache.get(ckey)
        if columns is None:
            columns = skeleton_columns(skeletons_by_ckey[ckey])
            columns_cache[ckey] = columns
        capacitance_rows.append(columns[0])
        count_rows.append(columns[1])
        level_rows.append(device.voltages.rail_levels())
        efficiency_rows.append(device.voltages.rail_efficiencies())

    levels = _np.asarray(level_rows)
    efficiency = _np.asarray(efficiency_rows)
    swing = levels[:, swing_index] * _np.asarray(inverse_divisor)
    # Per-firing energy of every (variant, event) cell: the broadcast
    # of  count · C · swing · level(rail) / eff(rail).
    energy_per_firing = (
        _np.asarray(capacitance_rows) * _np.asarray(count_rows) * swing
        * levels[:, rail_index] / efficiency[:, rail_index])
    # One matmul folds all (command, component) buckets of the family.
    buckets = energy_per_firing @ _np.asarray(weight_columns).T
    rows = buckets.tolist()

    for row, (index, key) in zip(rows, members):
        device = devices[index]
        energies = {
            command: EnergyBreakdown(
                {component: row[column]
                 for component, column in ordered})
            for command, ordered in layout
        }
        folded_background = EnergyBreakdown(
            {component: row[column]
             for component, column in background_layout})
        if device.constant_current:
            folded_background.add(
                Component.POWER,
                device.constant_current * device.voltages.vdd)
        skeletons = skeletons_by_ckey[plan.capacitance_keys[index]]
        folded = OperationEnergies.from_folded(
            device, energies, folded_background, skeletons)
        model = DramPowerModel(device,
                               geometry=geometry.rebind(device),
                               skeletons=skeletons, energies=folded)
        models[index] = cache.store_built(key, model)


def build_family_models(devices: Sequence[DramDescription], cache,
                        plan: Optional[VectorPlan] = None
                        ) -> List[DramPowerModel]:
    """The built model of every device, folded columnarly where possible.

    The vector analogue of calling
    :meth:`~repro.engine.cache.ModelCache.model` per device: in-memory
    LRU hits are reused (and counted) exactly as on the scalar path,
    the remainder is grouped, folded and stored back into the LRU, and
    anything unfoldable — singleton subgroups, structures the fold
    cannot express, numpy missing — takes the scalar path instead.
    The result list is ordered like ``devices`` and every entry is a
    fully usable :class:`~repro.core.DramPowerModel`.
    """
    devices = list(devices)
    models: List[Optional[DramPowerModel]] = [None] * len(devices)
    if _np is None:
        cache.record_vector_downgrade()
        for index, device in enumerate(devices):
            models[index] = cache.model(device)
        return models
    if plan is None:
        plan = plan_batches(devices)

    pending: Dict[str, List[Tuple[int, str]]] = {}
    for index, device in enumerate(devices):
        key, cached = cache.lookup(device)
        if cached is not None:
            models[index] = cached
        else:
            pending.setdefault(plan.geometry_keys[index],
                               []).append((index, key))

    batches = 0
    builds = 0
    leftover: List[Tuple[int, str]] = []
    started = time.perf_counter()
    for gkey, entries in pending.items():
        stages = cache.stages
        geometry = stages.get("geometry", gkey)
        if geometry is None:
            geometry = FloorplanGeometry(devices[entries[0][0]])
            stages.put("geometry", gkey, geometry)

        skeletons_by_ckey: Dict[str, tuple] = {}
        for index, _key in entries:
            ckey = plan.capacitance_keys[index]
            if ckey in skeletons_by_ckey:
                continue
            skeletons = stages.get("capacitance", ckey)
            if skeletons is None:
                device = devices[index]
                skeletons = build_skeletons(device,
                                            geometry.rebind(device))
                stages.put("capacitance", ckey, skeletons)
            skeletons_by_ckey[ckey] = skeletons

        signature_by_ckey = {
            ckey: skeleton_signature(skeletons)
            for ckey, skeletons in skeletons_by_ckey.items()
        }
        subgroups: Dict[Tuple, List[Tuple[int, str]]] = {}
        for index, key in entries:
            signature = signature_by_ckey[plan.capacitance_keys[index]]
            subgroups.setdefault(signature, []).append((index, key))

        for signature, members in subgroups.items():
            if len(members) < 2:
                leftover.extend(members)
                continue
            try:
                _fold_subgroup(devices, members, signature,
                               skeletons_by_ckey, plan, geometry,
                               cache, models)
            except VectorIneligible:
                leftover.extend(members)
                continue
            batches += 1
            builds += len(members)
    elapsed = time.perf_counter() - started

    for index, _key in leftover:
        models[index] = cache.model(devices[index])
    cache.record_vector(batches=batches, builds=builds,
                        fallbacks=len(leftover), seconds=elapsed)
    return models
