"""Shared-memory transport of stage artifacts to pool workers.

The process backend historically had every worker rebuild (or
disk-load) the swept base model from scratch, because worker sessions
start empty.  The ROADMAP's shared-memory model store closes that gap:
the parent pickles the base model's *stage payload* (the
``{stage: (key, artifact)}`` export of :mod:`repro.engine.stages`) into
one :mod:`multiprocessing.shared_memory` segment before the pool
starts; each worker attaches read-only during pool initialisation,
unpickles the payload, and seeds its private stage cache — so a
worker's first build of any sweep variant already reuses every clean
stage.

Robustness rules:

* every failure (no shm support, attach refused, corrupt payload) is
  swallowed and counted — the sweep falls back to per-worker cold
  builds and results are unaffected;
* the segment layout is an 8-byte little-endian payload length followed
  by the pickle, so attachers never trust the kernel's page-rounded
  segment size;
* workers must not *track* the segment: Python's resource tracker
  would otherwise unlink it when the first worker exits.  Python 3.13+
  exposes ``track=False``; earlier versions need the unregister
  workaround applied here;
* the parent owns the segment lifetime and unlinks it in a
  ``try/finally`` around the whole pooled map, crash or not.
"""

from __future__ import annotations

import pickle
from typing import Any, Optional

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    resource_tracker = None
    shared_memory = None

#: Byte width of the length header preceding the pickled payload.
_HEADER_BYTES = 8


def shm_available() -> bool:
    """Whether this platform offers POSIX shared memory."""
    return shared_memory is not None


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker adoption.

    Attaching registers the segment with the process's resource
    tracker on Python < 3.13, which would unlink it when any single
    attacher exits — destroying it for the parent and every sibling
    worker.  ``track=False`` (3.13+) expresses that directly; earlier
    versions get registration suppressed for the duration of the
    attach (pool initializers run single-threaded per process, so the
    swap cannot race another registration).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedStageStore:
    """One shared-memory segment holding a pickled stage payload."""

    def __init__(self, segment):
        self._segment = segment

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._segment.name

    @classmethod
    def create(cls, payload: Any) -> "SharedStageStore":
        """Publish ``payload`` into a fresh shared-memory segment.

        Raises on any failure (no shm support, unpicklable payload,
        shm mount full) — the caller counts the error and proceeds
        without a store.
        """
        if shared_memory is None:
            raise RuntimeError("shared memory is not available")
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + len(blob))
        try:
            segment.buf[:_HEADER_BYTES] = len(blob).to_bytes(
                _HEADER_BYTES, "little")
            segment.buf[_HEADER_BYTES:_HEADER_BYTES + len(blob)] = blob
        except Exception:
            segment.close()
            segment.unlink()
            raise
        return cls(segment)

    @staticmethod
    def load(name: str) -> Any:
        """Attach to segment ``name``, unpickle its payload, detach.

        Raises on any failure; the worker counts the error and seeds
        nothing.  The segment itself is left alive for the parent and
        the other workers.
        """
        if shared_memory is None:
            raise RuntimeError("shared memory is not available")
        segment = _attach_untracked(name)
        try:
            length = int.from_bytes(segment.buf[:_HEADER_BYTES], "little")
            if length > len(segment.buf) - _HEADER_BYTES:
                raise ValueError(
                    f"shared stage payload header claims {length} bytes "
                    f"in a {len(segment.buf)}-byte segment")
            payload = pickle.loads(
                bytes(segment.buf[_HEADER_BYTES:_HEADER_BYTES + length]))
        finally:
            segment.close()
        return payload

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent, never raises)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except Exception:
            pass
        try:
            segment.unlink()
        except Exception:
            pass


def publish_stage_payload(payload: Any) -> Optional[SharedStageStore]:
    """A :class:`SharedStageStore` holding ``payload``, or ``None``.

    Convenience wrapper that turns every creation failure into
    ``None`` so callers only need one error path.
    """
    if payload is None:
        return None
    try:
        return SharedStageStore.create(payload)
    except Exception:
        return None
