"""Stage-level incremental model construction.

The paper's Figure-4 pipeline is a chain of stages — resolve the
floorplan **geometry**, extract wire/device **capacitance**, determine
per-event **charge**, fold into per-operation **current** (energies),
evaluate the default-pattern **power** — and each stage reads only a
subset of the description's fields.  A sweep that perturbs one field
therefore only invalidates the stages that read it *and everything
downstream*; every earlier stage can be reused verbatim.

This module makes that reuse explicit:

* :data:`STAGE_INPUTS` records which description fields each stage
  reads (audited against the actual field accesses of the floorplan,
  circuit and operation code);
* :func:`stage_keys` fingerprints each stage by chaining the SHA-256 of
  its own inputs onto its parent stage's key, so a stage key matches
  exactly when the stage artifact *and its whole upstream* are
  bit-for-bit reusable;
* :class:`StageCache` is a bounded, thread-safe LRU of stage artifacts
  keyed by ``(stage, key)``;
* :func:`build_model` assembles a :class:`DramPowerModel` from cached
  artifacts, building only the stages whose keys miss.  Reused
  geometry/energies are rebound to the evaluated device via their
  ``rebind`` methods so lazy device-reading paths stay consistent.

Assembled models are bit-for-bit identical to cold builds: skeleton
resolution applies exactly the swing arithmetic of the one-step
builder, and reused artifacts are only ever keyed by the full value of
every field they read.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

from ..core import DramPowerModel
from ..core.builder import build_skeletons, resolve_events
from ..core.operations import OperationEnergies
from ..description import DramDescription
from ..floorplan import FloorplanGeometry
from .fingerprint import canonical_form

#: Pipeline stages in dependency order (each depends on all before it
#: through key chaining).
STAGE_ORDER: Tuple[str, ...] = (
    "geometry", "capacitance", "charge", "current", "power",
)

#: Description fields each stage reads directly.  Fields listed nowhere
#: (``interface``, ``node``, ``timing``) do not influence any stage
#: artifact — they are consumed by reporting layers that read the
#: device through the model, never by construction.
STAGE_INPUTS: Dict[str, Tuple[str, ...]] = {
    "geometry": ("floorplan", "spec"),
    "capacitance": ("technology", "floorplan", "spec", "signaling",
                    "logic_blocks"),
    "charge": ("voltages",),
    "current": ("voltages", "spec", "constant_current"),
    "power": ("name", "pattern", "spec", "voltages"),
}

#: Inverse view: description field → stages that read it directly.
FIELD_STAGES: Dict[str, Tuple[str, ...]] = {}
for _stage in STAGE_ORDER:
    for _field in STAGE_INPUTS[_stage]:
        FIELD_STAGES[_field] = FIELD_STAGES.get(_field, ()) + (_stage,)

#: Default number of stage artifacts kept alive.
DEFAULT_STAGE_CAPACITY = 1024


def dirty_stages(fields: Iterable[str]) -> Tuple[str, ...]:
    """Stages invalidated by a change to ``fields`` (downstream closure).

    Returns the suffix of :data:`STAGE_ORDER` starting at the earliest
    stage that reads any of the fields — later stages are always dirty
    too, because their keys chain off the dirty stage's key.  Fields no
    stage reads return an empty tuple (the change cannot alter any
    artifact).
    """
    touched = set(fields)
    for index, stage in enumerate(STAGE_ORDER):
        if touched.intersection(STAGE_INPUTS[stage]):
            return STAGE_ORDER[index:]
    return ()


def chain_stage_key(parent: str, stage: str,
                    device: DramDescription) -> str:
    """One link of the stage-key chain: hash ``stage``'s own inputs
    onto its parent's key.

    Exposed separately so callers that only need the head of the
    chain — the vectorized kernel groups sweep families by geometry
    and capacitance keys alone — can stop hashing after two links
    instead of paying for all five stages.
    """
    tokens = [stage, "|", parent]
    for name in STAGE_INPUTS[stage]:
        tokens.append("|")
        tokens.append(canonical_form(getattr(device, name)))
    return hashlib.sha256("".join(tokens).encode("utf-8")).hexdigest()


def stage_keys(device: DramDescription) -> Dict[str, str]:
    """Chained SHA-256 key per stage for ``device``.

    ``key[stage] = sha256(stage | key[parent] | canonical(inputs))`` —
    two devices share a stage key exactly when that stage and every
    stage upstream of it would compute bit-identical artifacts.
    """
    keys: Dict[str, str] = {}
    parent = ""
    for stage in STAGE_ORDER:
        parent = chain_stage_key(parent, stage, device)
        keys[stage] = parent
    return keys


class StageCache:
    """Bounded, thread-safe LRU of pipeline-stage artifacts.

    Entries are keyed ``(stage, key)`` with ``key`` from
    :func:`stage_keys`.  Hit/miss counters cover :meth:`get` only —
    seeding via :meth:`put` is free — so the counters read as "stages
    reused" vs "stages computed" across all cold model builds.
    """

    def __init__(self, capacity: int = DEFAULT_STAGE_CAPACITY):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, stage: str, key: str) -> Optional[Any]:
        """The cached artifact of ``(stage, key)``, or ``None``."""
        slot = (stage, key)
        with self._lock:
            artifact = self._entries.get(slot)
            if artifact is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(slot)
            return artifact

    def put(self, stage: str, key: str, artifact: Any) -> None:
        """Store an artifact (keeps the first copy on a race)."""
        slot = (stage, key)
        with self._lock:
            if slot not in self._entries:
                self._entries[slot] = artifact
            self._entries.move_to_end(slot)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def counters(self) -> Tuple[int, int]:
        """``(hits, misses)`` — cumulative :meth:`get` outcomes."""
        with self._lock:
            return self._hits, self._misses

    def clear(self) -> None:
        """Drop every artifact (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()


def build_model(device: DramDescription,
                stages: StageCache) -> DramPowerModel:
    """Build ``device``'s model, reusing every stage whose key hits.

    Identical output to ``DramPowerModel(device)``; only the work
    differs.  A voltage-only perturbation, for example, reuses the
    geometry and capacitance artifacts and recomputes charge, current
    and power only.
    """
    keys = stage_keys(device)

    geometry = stages.get("geometry", keys["geometry"])
    if geometry is None:
        geometry = FloorplanGeometry(device)
        stages.put("geometry", keys["geometry"], geometry)
    else:
        geometry = geometry.rebind(device)

    skeletons = stages.get("capacitance", keys["capacitance"])
    if skeletons is None:
        skeletons = build_skeletons(device, geometry)
        stages.put("capacitance", keys["capacitance"], skeletons)

    events = stages.get("charge", keys["charge"])
    if events is None:
        events = resolve_events(skeletons, device.voltages)
        stages.put("charge", keys["charge"], events)

    energies = stages.get("current", keys["current"])
    if energies is None:
        energies = OperationEnergies(device, events)
        stages.put("current", keys["current"], energies)
    else:
        energies = energies.rebind(device)

    default_power = stages.get("power", keys["power"])
    model = DramPowerModel(device, events=events, geometry=geometry,
                           skeletons=skeletons, energies=energies,
                           default_power=default_power)
    if default_power is None:
        stages.put("power", keys["power"], model.pattern_power())
    return model


def stage_payload(device: DramDescription,
                  model: DramPowerModel) -> Optional[Dict[str, Tuple[str, Any]]]:
    """Exportable ``{stage: (key, artifact)}`` of one built model.

    Used to ship a base model's stages to pool workers (the
    shared-memory model store).  Returns ``None`` for models built
    around substituted event lists — their events are not the canonical
    charge artifact of the device.
    """
    if model.skeletons is None:
        return None
    keys = stage_keys(device)
    return {
        "geometry": (keys["geometry"], model.geometry),
        "capacitance": (keys["capacitance"], model.skeletons),
        "charge": (keys["charge"], model.events),
        "current": (keys["current"], model.energies),
        "power": (keys["power"], model.pattern_power()),
    }


def seed_stage_cache(stages: StageCache,
                     payload: Dict[str, Tuple[str, Any]]) -> int:
    """Insert an exported stage payload; returns entries seeded."""
    seeded = 0
    for stage in STAGE_ORDER:
        entry = payload.get(stage)
        if entry is None:
            continue
        key, artifact = entry
        stages.put(stage, key, artifact)
        seeded += 1
    return seeded
