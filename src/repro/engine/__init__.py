"""Unified evaluation engine: shared model construction for all analyses.

Every analysis in :mod:`repro.analysis`, every scheme in
:mod:`repro.schemes` and the module-level model in :mod:`repro.system`
evaluate many device *variants* of a handful of base descriptions.
Rebuilding floorplan geometry and the charge-event list for each variant
from scratch wastes most of a sweep's time whenever the same description
recurs — which it does constantly: the nominal point of a sensitivity
Pareto, the "typical" corner, the revisited coordinates of the
calibration descent.

The engine provides one construction path for all of them:

* :func:`repro.engine.fingerprint.fingerprint` — a canonical,
  order-stable key of a :class:`~repro.description.DramDescription`
  (recursive dataclass walk, independent of ``repr``);
* :class:`repro.engine.cache.ModelCache` — a bounded LRU memoising
  built :class:`~repro.core.DramPowerModel` instances by fingerprint,
  with hit/miss/build-time counters;
* :class:`repro.engine.session.EvaluationSession` — the user-facing
  façade: ``model(device)``, ``evaluate(device, pattern)`` and
  ``map(devices, fn, jobs=N, backend=...)`` batch evaluation on a
  serial, thread or process backend;
* :class:`repro.engine.diskcache.DiskModelCache` — a persistent,
  versioned on-disk spill of built models (fingerprint-keyed, with a
  model-code-hash invalidation token), so repeated processes skip
  cold builds;
* :mod:`repro.engine.executor` — contiguous sharding of sweeps onto a
  ``ProcessPoolExecutor`` of per-worker sessions, with merged
  statistics and ordered, bit-for-bit-identical results;
* :class:`repro.engine.variant.Variant` — declarative perturbations
  (deltas) of a base description, replacing ad-hoc
  ``dataclasses.replace`` scattering in the sweep code;
* :mod:`repro.engine.stages` — the Figure-4 pipeline split into
  individually fingerprinted stages (geometry, capacitance, charge,
  current, power) with a :class:`~repro.engine.stages.StageCache`, so
  cold builds reuse every stage whose inputs are unchanged;
* :mod:`repro.engine.shm` — the shared-memory stage store: pool
  workers seed their stage caches from the parent's base model
  instead of rebuilding it per worker;
* :mod:`repro.engine.vector` — the columnar kernel: batchable sweep
  families evaluate as (variants × events) array math against the
  scalar path as bit-level oracle, picked automatically by
  ``backend="auto"`` when numpy is installed (the ``repro[vector]``
  extra) and reported through the ``vector_*`` counters of
  :class:`~repro.engine.cache.EngineStats`.

All analysis entry points accept an optional ``session`` argument; when
omitted a private session is created per call, so existing code keeps
working unchanged while callers that share a session across calls get
cross-analysis reuse for free.
"""

from .cache import EngineStats, ModelCache, merge_stats
from .diskcache import DiskModelCache, default_cache_dir, model_code_token
from .executor import (AUTO, BACKENDS, VECTOR, choose_backend,
                       default_jobs, estimate_build_seconds,
                       estimate_vector_seconds, resolve_backend)
from .fingerprint import canonical_form, fingerprint
from .session import EvaluationSession, ensure_session, evaluate_many
from .shm import SharedStageStore, shm_available
from .stages import (FIELD_STAGES, STAGE_INPUTS, STAGE_ORDER, StageCache,
                     build_model, dirty_stages, stage_keys)
from .variant import Variant, scaling
from .vector import (MIN_BATCH, VectorPlan, build_family_models,
                     numpy_available, plan_batches)

__all__ = [
    "AUTO",
    "BACKENDS",
    "VECTOR",
    "MIN_BATCH",
    "VectorPlan",
    "build_family_models",
    "numpy_available",
    "plan_batches",
    "choose_backend",
    "default_jobs",
    "estimate_build_seconds",
    "estimate_vector_seconds",
    "DiskModelCache",
    "EngineStats",
    "merge_stats",
    "ModelCache",
    "canonical_form",
    "default_cache_dir",
    "fingerprint",
    "model_code_token",
    "resolve_backend",
    "EvaluationSession",
    "ensure_session",
    "evaluate_many",
    "FIELD_STAGES",
    "STAGE_INPUTS",
    "STAGE_ORDER",
    "StageCache",
    "SharedStageStore",
    "build_model",
    "dirty_stages",
    "shm_available",
    "stage_keys",
    "Variant",
    "scaling",
]
