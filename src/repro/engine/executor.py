"""Process-based parallel execution of evaluation sweeps.

The model is pure Python, so the thread backend of
:meth:`~repro.engine.session.EvaluationSession.map` overlaps almost no
compute under the GIL.  This module adds real CPU scale-out: the device
list is sharded into contiguous chunks, each chunk's serialized
:class:`~repro.description.DramDescription` list is shipped to a
``ProcessPoolExecutor`` whose workers each own a private
:class:`~repro.engine.session.EvaluationSession` (same capacity and
disk-cache directory as the parent), and the per-chunk results come
back in submission order — so the merged result list is bit-for-bit
identical to the serial run (pickle round-trips floats exactly).

Contract with callers:

* the evaluation callable must be **picklable** — a module-level
  function or a :func:`functools.partial` of one; lambdas and closures
  are rejected up front with a clear :class:`~repro.errors.ModelError`;
* a raising callable surfaces as a :class:`ModelError` naming the
  failing device's *index* and *fingerprint* (the worker traceback is
  appended), never as a bare pickled traceback;
* each worker's cache counters are snapshotted per chunk and merged
  back into the parent session via
  :meth:`~repro.engine.cache.ModelCache.absorb`, so ``session.stats``
  describes the whole sweep regardless of backend;
* a crashed or killed worker does **not** abort the sweep: the chunks
  lost to the broken pool are re-dispatched once onto a fresh pool,
  and chunks that die again degrade to in-parent serial evaluation —
  results stay bit-for-bit identical to the serial run either way,
  and the degradation is recorded in
  :class:`~repro.engine.cache.EngineStats` (``pool_retries``,
  ``serial_fallbacks``).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import traceback
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import (Any, Callable, Dict, List, Optional, Sequence,
                    Tuple)

from ..errors import ModelError
from .cache import DEFAULT_CAPACITY, EngineStats, merge_stats
from .fingerprint import fingerprint
from .shm import SharedStageStore, publish_stage_payload
from .stages import seed_stage_cache

#: The recognised execution backends.
BACKENDS = ("serial", "thread", "process")

#: The deferred backend name: resolved per call from the sweep width,
#: the measured per-build cost and the usable worker count.
AUTO = "auto"

#: The columnar backend name: eligible sweep families fold as
#: (variants × events) array math in-process (see
#: :mod:`repro.engine.vector`); ineligible devices fall back to the
#: scalar path silently.
VECTOR = "vector"

#: Assumed cold-build cost (s) before any measurement exists; the
#: observed ``build_seconds / misses`` of the session replaces it as
#: soon as one cold build has been timed.
DEFAULT_BUILD_SECONDS = 0.005

#: Amortised cost (s) of adding one process-pool worker: fork/spawn,
#: pool plumbing and the worker's private session.  Deliberately
#: pessimistic — overestimating keeps small sweeps serial, which is
#: the cheap mistake.
WORKER_STARTUP_SECONDS = 0.1

#: Sweeps at or below this width never leave the serial path; pool
#: overhead can only lose on one or two builds.
SERIAL_WIDTH_LIMIT = 2

#: Assumed per-variant cost (s) of the columnar kernel before any
#: measurement exists.  Deliberately below the scalar default — a
#: vector-eligible family folds an order of magnitude faster than it
#: builds — but conservative against the measured reality (~1e-4 s)
#: so the first decision does not over-promise.
DEFAULT_VECTOR_SECONDS = 0.0005


def resolve_backend(backend: Optional[str],
                    jobs: Optional[int]) -> str:
    """The effective backend of a ``map`` call.

    ``None`` preserves the historical behaviour: serial unless
    ``jobs > 1``, which selects threads.  ``"auto"`` passes through
    unresolved — the caller holds the sweep width and cost estimate
    that :func:`choose_backend` needs.  Anything else not named in
    :data:`BACKENDS` raises, as does a non-positive ``jobs`` — this is
    the single validation point for every backend, so serial and
    thread calls reject ``jobs=0`` exactly like the process pool does.
    """
    if jobs is not None and jobs <= 0:
        raise ModelError("jobs must be a positive worker count")
    if backend is None:
        return "thread" if jobs is not None and jobs > 1 else "serial"
    if backend in (AUTO, VECTOR):
        return backend
    if backend not in BACKENDS:
        raise ModelError(
            f"unknown backend {backend!r}; choose from "
            + "/".join(BACKENDS + (AUTO, VECTOR)))
    return backend


def estimate_build_seconds(stats=None) -> float:
    """Per-model cold-build cost estimate (s) for the auto policy.

    Seeded from an :class:`~repro.engine.cache.EngineStats` snapshot
    when it has timed at least one cold build; the conservative
    :data:`DEFAULT_BUILD_SECONDS` otherwise.
    """
    if stats is not None and stats.misses > 0:
        observed = stats.build_seconds / stats.misses
        if observed > 0.0:
            return observed
    return DEFAULT_BUILD_SECONDS


def estimate_vector_seconds(stats=None) -> float:
    """Per-variant columnar-fold cost estimate (s) for the auto policy.

    Seeded from the session's measured ``vector_seconds /
    vector_builds`` once the kernel has folded anything; the
    conservative :data:`DEFAULT_VECTOR_SECONDS` before that.  This is
    the cost-model fix for vector-eligible families: seeding the
    decision from scalar ``build_seconds`` alone made ``auto`` pick
    process sharding for sweeps the in-process columnar fold wins.
    """
    if stats is not None and getattr(stats, "vector_builds", 0) > 0:
        observed = stats.vector_seconds / stats.vector_builds
        if observed > 0.0:
            return observed
    return DEFAULT_VECTOR_SECONDS


def choose_backend(width: int, jobs: Optional[int] = None,
                   build_seconds: Optional[float] = None,
                   expected_hit_rate: float = 0.0,
                   vector_eligible: bool = False,
                   vector_seconds: Optional[float] = None) -> str:
    """The serial/process/vector decision behind ``backend="auto"``.

    Compares the projected serial cost (``width`` x ``build_seconds``,
    discounted by the cache hit rate the session has been observing)
    against the projected pool cost (per-worker startup plus the
    sharded build time) and returns the cheaper backend.  The thread
    backend is never chosen: the model is pure Python, so threads
    cannot beat serial under the GIL — they exist for callables that
    block or release it, which the policy cannot detect.

    ``expected_hit_rate`` folds the warm-cache reality into the serial
    projection only: a serial run on this session reuses its warm
    model cache, while pool workers start from scratch (stage seeding
    softens but does not erase that, and the pessimism keeps the cheap
    mistake — staying serial — the likely one).  A session that has
    been answering 90 % of lookups from cache projects a 10×-smaller
    serial cost and correctly stays serial for re-runs of a sweep it
    already holds.

    With ``vector_eligible`` (the caller found a batchable sweep
    family and numpy present) a third projection joins the
    comparison: ``width`` × the measured per-variant fold cost,
    discounted by the same hit rate — the columnar kernel runs
    in-process against this session's warm cache exactly like serial
    does.  A vectorized single process often beats eight scalar
    workers, so the fold cost must enter the decision *before* the
    serial-vs-process comparison, not after.

    ``width <= 2`` calls are always serial, so tiny lookups keep
    their short stacks.  A single usable worker rules out the pool —
    but **not** the vector kernel, which folds in-process on one core
    and therefore stays on the table even on single-CPU hosts.
    """
    workers = jobs if jobs is not None else default_jobs()
    if width <= SERIAL_WIDTH_LIMIT:
        return "serial"
    per_build = (build_seconds if build_seconds and build_seconds > 0
                 else DEFAULT_BUILD_SECONDS)
    rate = min(max(expected_hit_rate, 0.0), 1.0)
    serial_seconds = width * per_build * (1.0 - rate)
    if workers > 1:
        workers = min(workers, width)
        pooled_seconds = (workers * WORKER_STARTUP_SECONDS
                          + width * per_build / workers)
    else:
        pooled_seconds = float("inf")
    if vector_eligible:
        per_fold = (vector_seconds if vector_seconds
                    and vector_seconds > 0 else DEFAULT_VECTOR_SECONDS)
        folded_seconds = width * per_fold * (1.0 - rate)
        if (folded_seconds <= serial_seconds
                and folded_seconds <= pooled_seconds):
            return VECTOR
    return "process" if pooled_seconds < serial_seconds else "serial"


def is_picklable(fn: Callable) -> bool:
    """Whether ``fn`` can ship to process-pool workers.

    The auto policy downgrades to serial instead of failing when the
    callable cannot be pickled; an *explicit* ``backend="process"``
    still rejects it loudly (:func:`_ensure_picklable_callable`).
    """
    try:
        pickle.dumps(fn)
    except Exception:
        return False
    return True


def default_jobs() -> int:
    """Worker count when ``jobs`` is omitted: the usable CPU count."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def shard(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``count`` items.

    At most ``chunks`` ranges, balanced to within one item, in input
    order — so concatenating per-chunk results reproduces the input
    ordering exactly.
    """
    if count <= 0:
        return []
    chunks = max(1, min(chunks, count))
    base, extra = divmod(count, chunks)
    ranges = []
    start = 0
    for index in range(chunks):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _ensure_picklable_callable(fn: Callable) -> None:
    """Reject closures/lambdas before the pool turns them into noise."""
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise ModelError(
            "the process backend requires a picklable evaluation "
            "callable (a module-level function or functools.partial); "
            f"got {fn!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Worker side.  One EvaluationSession per worker process, built lazily
# by the pool initializer and reused across that worker's chunks.
# ----------------------------------------------------------------------
_WORKER_SESSION = None

#: Counter events (``shm_loads``/``shm_errors``) produced by the pool
#: initializer, which runs *before* the first chunk's stats snapshot —
#: folded into that chunk's delta by :func:`_run_chunk` so the parent
#: merge sees them exactly once.
_WORKER_PENDING: Optional[Dict[str, int]] = None


def _initialize_worker(capacity: int, cache_dir: Optional[str],
                       shm_name: Optional[str] = None) -> None:
    """Pool initializer: build this worker's private session.

    With ``shm_name`` given, the worker seeds its stage cache from the
    parent's shared-memory stage payload, so its first build of any
    sweep variant already reuses every clean pipeline stage instead of
    rebuilding (or disk-loading) the base model from scratch.  Any
    attach failure is counted and otherwise ignored.
    """
    global _WORKER_SESSION, _WORKER_PENDING
    from .session import EvaluationSession
    _WORKER_SESSION = EvaluationSession(capacity=capacity,
                                        cache_dir=cache_dir)
    _WORKER_PENDING = None
    if shm_name is not None:
        try:
            payload = SharedStageStore.load(shm_name)
            seed_stage_cache(_WORKER_SESSION.cache.stages, payload)
            _WORKER_PENDING = {"shm_loads": 1}
        except Exception:
            _WORKER_PENDING = {"shm_errors": 1}


def _evaluate_chunk(session,
                    payload: Tuple[int, bytes, Callable, str]) -> Tuple:
    """Evaluate one contiguous chunk against ``session``.

    Returns ``("ok", results, stats_delta)`` or
    ``("error", (index, label, message), stats_delta)`` — exceptions
    are reported as data so the parent can raise one well-formed
    :class:`ModelError` instead of unpickling arbitrary tracebacks.
    Shared by the worker entry point and the parent-side serial
    fallback, so a degraded chunk evaluates exactly like a pooled one.
    """
    start, blob, fn, mode = payload
    items = pickle.loads(blob)
    before = session.stats
    results: List[Any] = []
    failure = None
    for offset, item in enumerate(items):
        try:
            if mode == "model":
                results.append(fn(session.model(item)))
            else:
                results.append(fn(session, item))
        except Exception as exc:
            if mode == "model":
                label = "fingerprint " + fingerprint(item)[:12]
            else:
                label = repr(getattr(item, "name", item))
            message = (f"{type(exc).__name__}: {exc}\n"
                       + traceback.format_exc())
            failure = (start + offset, label, message)
            break
    delta = session.stats.delta(before)
    if failure is not None:
        return ("error", failure, delta)
    return ("ok", results, delta)


def _run_chunk(payload: Tuple[int, bytes, Callable, str]) -> Tuple:
    """Worker entry point: evaluate a chunk on the worker session."""
    global _WORKER_PENDING
    status, body, delta = _evaluate_chunk(_WORKER_SESSION, payload)
    if _WORKER_PENDING:
        delta = dataclasses.replace(
            delta,
            shm_loads=(delta.shm_loads
                       + _WORKER_PENDING.get("shm_loads", 0)),
            shm_errors=(delta.shm_errors
                        + _WORKER_PENDING.get("shm_errors", 0)))
        _WORKER_PENDING = None
    return (status, body, delta)


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
def _dispatch_round(payloads: List[Tuple], pending: List[int],
                    outcomes: Dict[int, Tuple], workers: int,
                    capacity: int, cache_dir: Optional[str],
                    shm_name: Optional[str] = None
                    ) -> List[int]:
    """One pool attempt over the pending chunks.

    Completed chunks land in ``outcomes``; the indices of chunks lost
    to worker death (``BrokenExecutor``) are returned for the caller
    to retry.  A worker crash only breaks *this* pool — completed
    futures keep their results.
    """
    lost: List[int] = []
    with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_initialize_worker,
            initargs=(capacity, cache_dir, shm_name)) as pool:
        futures = {}
        for index in pending:
            try:
                futures[index] = pool.submit(_run_chunk,
                                             payloads[index])
            except BrokenExecutor:
                lost.append(index)
        for index, future in futures.items():
            try:
                outcomes[index] = future.result()
            except BrokenExecutor:
                lost.append(index)
    return sorted(lost)


def _pooled_map(items: Sequence, fn: Callable, mode: str,
                jobs: Optional[int], capacity: int,
                cache_dir: Optional[str],
                shm_payload=None
                ) -> Tuple[List, EngineStats]:
    _ensure_picklable_callable(fn)
    workers = jobs if jobs is not None else default_jobs()
    if workers <= 0:
        raise ModelError("jobs must be a positive worker count")
    ranges = shard(len(items), workers)
    payloads = [(start, pickle.dumps(list(items[start:stop])), fn, mode)
                for start, stop in ranges]
    outcomes: Dict[int, Tuple] = {}
    pending = list(range(len(payloads)))
    pool_retries = 0
    store = publish_stage_payload(shm_payload)
    shm_stores = 1 if store is not None else 0
    shm_errors = 1 if (shm_payload is not None and store is None) else 0
    try:
        shm_name = store.name if store is not None else None
        for attempt in (0, 1):
            if not pending:
                break
            if attempt:
                pool_retries += len(pending)
            pending = _dispatch_round(payloads, pending, outcomes,
                                      workers, capacity, cache_dir,
                                      shm_name)
        serial_fallbacks = len(pending)
        if pending:
            # Both pool attempts lost these chunks (e.g. a callable
            # that kills every worker, or a host that cannot fork):
            # degrade to in-parent evaluation on one private session
            # mirroring a worker's, so the results stay identical to
            # the pooled run.  The session seeds straight from the
            # in-parent payload — no shared memory needed.
            from .session import EvaluationSession
            fallback = EvaluationSession(capacity=capacity,
                                         cache_dir=cache_dir)
            if shm_payload is not None:
                seed_stage_cache(fallback.cache.stages, shm_payload)
            for index in pending:
                outcomes[index] = _evaluate_chunk(fallback,
                                                  payloads[index])
    finally:
        # The parent owns the segment: unlink it whatever happened
        # above, so no /dev/shm entry outlives the sweep.
        if store is not None:
            store.destroy()
    merged: Optional[EngineStats] = None
    failure = None
    results: List = []
    for index in range(len(payloads)):
        status, body, delta = outcomes[index]
        merged = delta if merged is None else merge_stats(merged, delta)
        if status == "error":
            if failure is None:
                failure = body
        else:
            results.extend(body)
    if failure is not None:
        index, label, message = failure
        raise ModelError(
            f"worker evaluation failed for device {index} "
            f"({label}): {message}")
    if merged is None:
        merged = EngineStats(hits=0, misses=0, evictions=0, size=0,
                             capacity=capacity, build_seconds=0.0)
    if pool_retries or serial_fallbacks or shm_stores or shm_errors:
        merged = dataclasses.replace(
            merged,
            pool_retries=merged.pool_retries + pool_retries,
            serial_fallbacks=(merged.serial_fallbacks
                              + serial_fallbacks),
            shm_stores=merged.shm_stores + shm_stores,
            shm_errors=merged.shm_errors + shm_errors)
    return results, merged


def process_map(devices: Sequence, fn: Callable,
                jobs: Optional[int] = None,
                capacity: int = DEFAULT_CAPACITY,
                cache_dir: Optional[str] = None,
                shm_payload=None
                ) -> Tuple[List, EngineStats]:
    """``fn(model)`` over every device, sharded across processes.

    Returns ``(results, merged_worker_stats)``; results are ordered
    exactly like ``devices`` and equal the serial evaluation
    bit-for-bit.  Used by :meth:`EvaluationSession.map`.  With
    ``shm_payload`` (a stage export of the sweep's base model) the
    workers seed their stage caches over shared memory instead of
    rebuilding the base model each.
    """
    return _pooled_map(devices, fn, "model", jobs, capacity, cache_dir,
                       shm_payload=shm_payload)


def process_map_items(items: Sequence, fn: Callable,
                      jobs: Optional[int] = None,
                      capacity: int = DEFAULT_CAPACITY,
                      cache_dir: Optional[str] = None,
                      shm_payload=None
                      ) -> Tuple[List, EngineStats]:
    """``fn(session, item)`` over arbitrary picklable items.

    The scheme evaluator uses this shape: items are scheme objects and
    the callable routes its own model builds through the per-worker
    session.
    """
    return _pooled_map(items, fn, "item", jobs, capacity, cache_dir,
                       shm_payload=shm_payload)
