"""Bounded LRU cache of built power models, keyed by fingerprint.

Building a :class:`~repro.core.DramPowerModel` means resolving the
floorplan geometry, deriving the full charge-event list and folding it
into per-operation energies — by far the dominant cost of any sweep.
The cache memoises the *whole built model*: a hit returns the identical
object, so repeated evaluations of equal descriptions share geometry,
events and energies bit-for-bit.

The cache is thread-safe (a single lock around the table) so an
:class:`~repro.engine.session.EvaluationSession` can hand it to a
thread pool, and bounded (least-recently-used eviction) so open-ended
sweeps cannot grow memory without limit.

Two extensions feed the scale-out paths:

* an optional :class:`~repro.engine.diskcache.DiskModelCache` is
  consulted on every LRU miss and written on every cold build, so
  repeated processes (CLI runs, CI jobs, pool workers) skip cold
  builds entirely — a disk hit counts as a *hit* in the statistics,
  since no model was built;
* :meth:`ModelCache.absorb` folds the counter deltas of per-worker
  caches back into the parent, so a process-backend sweep reports one
  coherent :class:`EngineStats` line.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import ChargeEvent, DramPowerModel
from ..description import DramDescription
from ..errors import ModelError
from .diskcache import DiskModelCache
from .fingerprint import fingerprint
from .stages import (DEFAULT_STAGE_CAPACITY, STAGE_ORDER, StageCache,
                     build_model, seed_stage_cache, stage_payload)

#: Default number of built models kept alive.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of one cache's counters (all cumulative)."""

    hits: int
    """Lookups answered from the in-memory cache."""
    misses: int
    """Lookups that had to build a model (cold builds)."""
    evictions: int
    """Models dropped by the LRU bound."""
    size: int
    """Models currently held — an occupancy gauge, not a counter:
    merges across worker caches take the maximum, never the sum."""
    capacity: int
    """Maximum models held."""
    build_seconds: float
    """Total wall-clock time spent building models (s)."""
    disk_hits: int = 0
    """LRU misses answered by the on-disk cache (no build needed)."""
    disk_misses: int = 0
    """LRU misses the on-disk cache could not answer either."""
    disk_writes: int = 0
    """Cold builds persisted to the on-disk cache."""
    disk_corrupt: int = 0
    """Disk entries skipped as corrupt or stale (treated as misses)."""
    pool_retries: int = 0
    """Process-backend chunks re-dispatched to a fresh pool after a
    worker died (crash/kill) mid-sweep."""
    serial_fallbacks: int = 0
    """Process-backend chunks degraded to in-parent serial evaluation
    after the fresh-pool retry died too."""
    stage_hits: int = 0
    """Pipeline stages reused from the stage cache during cold model
    builds (geometry/capacitance/charge/current/power granularity)."""
    stage_misses: int = 0
    """Pipeline stages that had to be computed during cold builds."""
    shm_stores: int = 0
    """Shared-memory stage payloads published for pool workers."""
    shm_loads: int = 0
    """Worker stage caches seeded from a shared-memory payload."""
    shm_errors: int = 0
    """Shared-memory store/attach attempts that failed (the sweep
    falls back to per-worker cold builds; results are unaffected)."""
    vector_batches: int = 0
    """Sweep-family batches folded columnarly by the vectorized
    kernel (one batch = one (variants × events) array fold)."""
    vector_builds: int = 0
    """Models assembled from vector-folded energies instead of a
    scalar cold build."""
    vector_fallbacks: int = 0
    """Devices a vectorized call routed back through the scalar
    path (structure too small or not batchable); results identical."""
    vector_downgrades: int = 0
    """One-time marker: a vector-eligible call found numpy missing
    and the whole session degraded to the scalar path (0 or 1)."""
    vector_seconds: float = 0.0
    """Total wall-clock time spent in the columnar kernel (s)."""

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return (self.hits + self.disk_hits + self.misses
                + self.vector_builds)

    @property
    def hit_rate(self) -> float:
        """Lookups answered without a cold build; 0.0 before the
        first lookup.  Disk hits count — no model was built."""
        if not self.lookups:
            return 0.0
        return (self.hits + self.disk_hits) / self.lookups

    @property
    def stage_lookups(self) -> int:
        """Total stage-cache lookups during cold builds."""
        return self.stage_hits + self.stage_misses

    @property
    def stage_hit_rate(self) -> float:
        """Pipeline stages reused instead of recomputed; 0.0 before
        the first cold build."""
        if not self.stage_lookups:
            return 0.0
        return self.stage_hits / self.stage_lookups

    def __str__(self) -> str:
        text = (f"hits={self.hits} misses={self.misses} "
                f"hit-rate={self.hit_rate:.1%} size={self.size}/"
                f"{self.capacity} build-time={self.build_seconds:.3f}s")
        if self.stage_hits or self.stage_misses:
            text += (f" stages[hits={self.stage_hits} "
                     f"misses={self.stage_misses} "
                     f"hit-rate={self.stage_hit_rate:.1%}]")
        if (self.disk_hits or self.disk_misses or self.disk_writes
                or self.disk_corrupt):
            text += (f" disk[hits={self.disk_hits} "
                     f"misses={self.disk_misses} "
                     f"writes={self.disk_writes} "
                     f"corrupt={self.disk_corrupt}]")
        if self.shm_stores or self.shm_loads or self.shm_errors:
            text += (f" shm[stores={self.shm_stores} "
                     f"loads={self.shm_loads} "
                     f"errors={self.shm_errors}]")
        if (self.vector_batches or self.vector_builds
                or self.vector_fallbacks or self.vector_downgrades):
            text += (f" vector[batches={self.vector_batches} "
                     f"builds={self.vector_builds} "
                     f"fallbacks={self.vector_fallbacks} "
                     f"downgrades={self.vector_downgrades} "
                     f"time={self.vector_seconds:.3f}s]")
        if self.pool_retries or self.serial_fallbacks:
            text += (f" faults[pool-retries={self.pool_retries} "
                     f"serial-fallbacks={self.serial_fallbacks}]")
        return text

    @classmethod
    def from_dict(cls, payload) -> "EngineStats":
        """Rebuild a snapshot from a JSON-ish mapping.

        Accepts the ``engine`` payload of ``GET /stats`` verbatim:
        unknown keys (derived properties like ``hit_rate``) are
        ignored and missing counters default, so snapshots survive a
        round trip through older or newer wire formats.  Malformed
        values raise ``TypeError``/``ValueError`` for the caller.
        """
        fields = {field.name for field in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in dict(payload).items()
                  if key in fields}
        for key in ("hits", "misses", "evictions", "size", "capacity",
                    "build_seconds"):
            kwargs.setdefault(key, 0)
        return cls(**kwargs)

    def delta(self, since: "EngineStats") -> "EngineStats":
        """The counter growth between ``since`` and this snapshot.

        ``size``/``capacity`` are states, not counters; the delta
        keeps this snapshot's values.  Used to report exactly the work
        one sweep (or one worker chunk) performed.
        """
        return EngineStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
            size=self.size,
            capacity=self.capacity,
            build_seconds=self.build_seconds - since.build_seconds,
            disk_hits=self.disk_hits - since.disk_hits,
            disk_misses=self.disk_misses - since.disk_misses,
            disk_writes=self.disk_writes - since.disk_writes,
            disk_corrupt=self.disk_corrupt - since.disk_corrupt,
            pool_retries=self.pool_retries - since.pool_retries,
            serial_fallbacks=(self.serial_fallbacks
                              - since.serial_fallbacks),
            stage_hits=self.stage_hits - since.stage_hits,
            stage_misses=self.stage_misses - since.stage_misses,
            shm_stores=self.shm_stores - since.shm_stores,
            shm_loads=self.shm_loads - since.shm_loads,
            shm_errors=self.shm_errors - since.shm_errors,
            vector_batches=self.vector_batches - since.vector_batches,
            vector_builds=self.vector_builds - since.vector_builds,
            vector_fallbacks=(self.vector_fallbacks
                              - since.vector_fallbacks),
            vector_downgrades=(self.vector_downgrades
                               - since.vector_downgrades),
            vector_seconds=self.vector_seconds - since.vector_seconds,
        )


def merge_stats(left: EngineStats, right: EngineStats) -> EngineStats:
    """Counter-wise sum of two snapshots (or deltas).

    ``size`` is an occupancy *gauge*, not a counter: N caches each
    holding k models do not hold N·k models between them from any one
    cache's point of view, so the merge takes the maximum occupancy
    and keeps the left (first) operand's configured capacity.  Shared
    by the process-backend chunk merge and the multi-worker service's
    cluster ``/stats`` (which overrides ``capacity`` with the fleet
    total it computes itself).
    """
    return EngineStats(
        hits=left.hits + right.hits,
        misses=left.misses + right.misses,
        evictions=left.evictions + right.evictions,
        size=max(left.size, right.size),
        capacity=left.capacity,
        build_seconds=left.build_seconds + right.build_seconds,
        disk_hits=left.disk_hits + right.disk_hits,
        disk_misses=left.disk_misses + right.disk_misses,
        disk_writes=left.disk_writes + right.disk_writes,
        disk_corrupt=left.disk_corrupt + right.disk_corrupt,
        pool_retries=left.pool_retries + right.pool_retries,
        serial_fallbacks=left.serial_fallbacks + right.serial_fallbacks,
        stage_hits=left.stage_hits + right.stage_hits,
        stage_misses=left.stage_misses + right.stage_misses,
        shm_stores=left.shm_stores + right.shm_stores,
        shm_loads=left.shm_loads + right.shm_loads,
        shm_errors=left.shm_errors + right.shm_errors,
        vector_batches=left.vector_batches + right.vector_batches,
        vector_builds=left.vector_builds + right.vector_builds,
        vector_fallbacks=left.vector_fallbacks + right.vector_fallbacks,
        vector_downgrades=max(left.vector_downgrades,
                              right.vector_downgrades),
        vector_seconds=left.vector_seconds + right.vector_seconds,
    )


class ModelCache:
    """LRU-memoised construction of :class:`DramPowerModel` instances."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 disk: Optional[DiskModelCache] = None):
        if capacity <= 0:
            raise ModelError("cache capacity must be positive")
        self.capacity = capacity
        self.disk = disk
        self._models: "OrderedDict[str, DramPowerModel]" = OrderedDict()
        self._lock = threading.Lock()
        self.stages = StageCache(
            max(DEFAULT_STAGE_CAPACITY, capacity * len(STAGE_ORDER)))
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._build_seconds = 0.0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_writes = 0
        self._disk_corrupt = 0
        self._pool_retries = 0
        self._serial_fallbacks = 0
        self._stage_hits_extra = 0
        self._stage_misses_extra = 0
        self._shm_stores = 0
        self._shm_loads = 0
        self._shm_errors = 0
        self._vector_batches = 0
        self._vector_builds = 0
        self._vector_fallbacks = 0
        self._vector_downgrades = 0
        self._vector_seconds = 0.0

    def __len__(self) -> int:
        return len(self._models)

    # ------------------------------------------------------------------
    # Vectorized-kernel hooks.  The columnar kernel wants the raw LRU —
    # consult it per device, then store whole folded batches — without
    # triggering the scalar cold-build path of :meth:`model`.
    # ------------------------------------------------------------------
    def lookup(self, device: DramDescription
               ) -> Tuple[str, Optional[DramPowerModel]]:
        """``(fingerprint, cached model or None)`` — LRU probe only.

        A hit counts as a hit; a miss counts *nothing* here — the
        kernel either folds the model (counted as ``vector_builds``
        via :meth:`record_vector`) or falls back to :meth:`model`,
        which does its own accounting.  The disk cache is not
        consulted: vector-built models are cheaper to refold than to
        round-trip through pickle.
        """
        key = fingerprint(device)
        with self._lock:
            cached = self._models.get(key)
            if cached is not None:
                self._hits += 1
                self._models.move_to_end(key)
        return key, cached

    def store_built(self, key: str,
                    model: DramPowerModel) -> DramPowerModel:
        """Insert an externally built model under ``key``.

        Keeps the first copy on a race (hits stay identity-stable)
        and returns the canonical instance.  Vector-built models are
        not written to the disk cache — see :meth:`lookup`.
        """
        with self._lock:
            racing = self._models.get(key)
            if racing is not None:
                self._models.move_to_end(key)
                return racing
            self._models[key] = model
            while len(self._models) > self.capacity:
                self._models.popitem(last=False)
                self._evictions += 1
        return model

    def record_vector(self, batches: int = 0, builds: int = 0,
                      fallbacks: int = 0, seconds: float = 0.0) -> None:
        """Count columnar-kernel work (batches folded, models built,
        scalar fallbacks, kernel wall-clock)."""
        with self._lock:
            self._vector_batches += batches
            self._vector_builds += builds
            self._vector_fallbacks += fallbacks
            self._vector_seconds += seconds

    def record_vector_downgrade(self) -> None:
        """Set the one-time numpy-missing downgrade marker."""
        with self._lock:
            self._vector_downgrades = 1

    # ------------------------------------------------------------------
    def model(self, device: DramDescription,
              events: Optional[Tuple[ChargeEvent, ...]] = None
              ) -> DramPowerModel:
        """The built model of ``device``, from cache when possible.

        Lookup order: in-memory LRU, then the disk cache (when
        configured), then a cold build — which is persisted to disk so
        the *next* process hits.  With ``events`` given
        (scheme-transformed charge lists) the returned model is built
        fresh around those events — it is never cached, since events
        are not part of the key — but it still reuses the cached
        model's resolved geometry.
        """
        key = fingerprint(device)
        with self._lock:
            cached = self._models.get(key)
            if cached is not None:
                self._hits += 1
                self._models.move_to_end(key)
        if cached is None:
            loaded = self.disk.load(key) if self.disk is not None else None
            elapsed = 0.0
            if loaded is None:
                started = time.perf_counter()
                built = build_model(device, self.stages)
                elapsed = time.perf_counter() - started
            else:
                built = loaded
                payload = stage_payload(device, loaded)
                if payload is not None:
                    # Disk-loaded stages feed later incremental builds.
                    seed_stage_cache(self.stages, payload)
            stored_fresh = False
            with self._lock:
                if loaded is not None:
                    self._disk_hits += 1
                else:
                    self._misses += 1
                    self._build_seconds += elapsed
                    if self.disk is not None:
                        self._disk_misses += 1
                racing = self._models.get(key)
                if racing is not None:
                    # Another thread built it first; keep one canonical
                    # model so hits stay identity-stable.
                    cached = racing
                    self._models.move_to_end(key)
                else:
                    cached = built
                    self._models[key] = cached
                    stored_fresh = loaded is None
                    while len(self._models) > self.capacity:
                        self._models.popitem(last=False)
                        self._evictions += 1
            if stored_fresh and self.disk is not None:
                if self.disk.store(key, cached):
                    with self._lock:
                        self._disk_writes += 1
        if events is None:
            return cached
        return DramPowerModel(device, events=events,
                              geometry=cached.geometry)

    # ------------------------------------------------------------------
    def absorb(self, worker_stats: EngineStats) -> None:
        """Fold a worker cache's counter *delta* into this cache.

        Process-backend workers build models in their own caches; the
        executor snapshots their counters per chunk and merges them
        here, so the parent session's statistics describe the whole
        sweep.  ``size``/``capacity`` stay the parent's own.
        """
        with self._lock:
            self._hits += worker_stats.hits
            self._misses += worker_stats.misses
            self._evictions += worker_stats.evictions
            self._build_seconds += worker_stats.build_seconds
            self._disk_hits += worker_stats.disk_hits
            self._disk_misses += worker_stats.disk_misses
            self._disk_writes += worker_stats.disk_writes
            self._disk_corrupt += worker_stats.disk_corrupt
            self._pool_retries += worker_stats.pool_retries
            self._serial_fallbacks += worker_stats.serial_fallbacks
            self._stage_hits_extra += worker_stats.stage_hits
            self._stage_misses_extra += worker_stats.stage_misses
            self._shm_stores += worker_stats.shm_stores
            self._shm_loads += worker_stats.shm_loads
            self._shm_errors += worker_stats.shm_errors
            self._vector_batches += worker_stats.vector_batches
            self._vector_builds += worker_stats.vector_builds
            self._vector_fallbacks += worker_stats.vector_fallbacks
            self._vector_downgrades = max(
                self._vector_downgrades, worker_stats.vector_downgrades)
            self._vector_seconds += worker_stats.vector_seconds

    def record_shm(self, stores: int = 0, loads: int = 0,
                   errors: int = 0) -> None:
        """Count shared-memory store/load/error events (executor hook)."""
        with self._lock:
            self._shm_stores += stores
            self._shm_loads += loads
            self._shm_errors += errors

    def stage_export(self, device: DramDescription):
        """Exportable stage payload of ``device`` (builds if needed).

        The payload is what the shared-memory store ships to pool
        workers; ``None`` when the model carries no canonical stage
        artifacts.
        """
        return stage_payload(device, self.model(device))

    def clear(self) -> None:
        """Drop every cached model and stage artifact (counters keep
        accumulating)."""
        with self._lock:
            self._models.clear()
        self.stages.clear()

    def stats(self) -> EngineStats:
        """A consistent snapshot of the counters."""
        corrupt = (self.disk.corrupt_entries
                   if self.disk is not None else 0)
        stage_hits, stage_misses = self.stages.counters()
        with self._lock:
            return EngineStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._models),
                capacity=self.capacity,
                build_seconds=self._build_seconds,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
                disk_writes=self._disk_writes,
                disk_corrupt=self._disk_corrupt + corrupt,
                pool_retries=self._pool_retries,
                serial_fallbacks=self._serial_fallbacks,
                stage_hits=stage_hits + self._stage_hits_extra,
                stage_misses=stage_misses + self._stage_misses_extra,
                shm_stores=self._shm_stores,
                shm_loads=self._shm_loads,
                shm_errors=self._shm_errors,
                vector_batches=self._vector_batches,
                vector_builds=self._vector_builds,
                vector_fallbacks=self._vector_fallbacks,
                vector_downgrades=self._vector_downgrades,
                vector_seconds=self._vector_seconds,
            )
