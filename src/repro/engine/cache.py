"""Bounded LRU cache of built power models, keyed by fingerprint.

Building a :class:`~repro.core.DramPowerModel` means resolving the
floorplan geometry, deriving the full charge-event list and folding it
into per-operation energies — by far the dominant cost of any sweep.
The cache memoises the *whole built model*: a hit returns the identical
object, so repeated evaluations of equal descriptions share geometry,
events and energies bit-for-bit.

The cache is thread-safe (a single lock around the table) so an
:class:`~repro.engine.session.EvaluationSession` can hand it to a
thread pool, and bounded (least-recently-used eviction) so open-ended
sweeps cannot grow memory without limit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import ChargeEvent, DramPowerModel
from ..description import DramDescription
from ..errors import ModelError
from .fingerprint import fingerprint

#: Default number of built models kept alive.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of one cache's counters (all cumulative)."""

    hits: int
    """Lookups answered from the cache."""
    misses: int
    """Lookups that had to build a model."""
    evictions: int
    """Models dropped by the LRU bound."""
    size: int
    """Models currently held."""
    capacity: int
    """Maximum models held."""
    build_seconds: float
    """Total wall-clock time spent building models (s)."""

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / lookups; 0.0 before the first lookup."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def __str__(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"hit-rate={self.hit_rate:.1%} size={self.size}/"
                f"{self.capacity} build-time={self.build_seconds:.3f}s")


class ModelCache:
    """LRU-memoised construction of :class:`DramPowerModel` instances."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ModelError("cache capacity must be positive")
        self.capacity = capacity
        self._models: "OrderedDict[str, DramPowerModel]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._build_seconds = 0.0

    def __len__(self) -> int:
        return len(self._models)

    # ------------------------------------------------------------------
    def model(self, device: DramDescription,
              events: Optional[Tuple[ChargeEvent, ...]] = None
              ) -> DramPowerModel:
        """The built model of ``device``, from cache when possible.

        With ``events`` given (scheme-transformed charge lists) the
        returned model is built fresh around those events — it is never
        cached, since events are not part of the key — but it still
        reuses the cached model's resolved geometry.
        """
        key = fingerprint(device)
        with self._lock:
            cached = self._models.get(key)
            if cached is not None:
                self._hits += 1
                self._models.move_to_end(key)
            else:
                self._misses += 1
        if cached is None:
            started = time.perf_counter()
            cached = DramPowerModel(device)
            elapsed = time.perf_counter() - started
            with self._lock:
                self._build_seconds += elapsed
                racing = self._models.get(key)
                if racing is not None:
                    # Another thread built it first; keep one canonical
                    # model so hits stay identity-stable.
                    cached = racing
                    self._models.move_to_end(key)
                else:
                    self._models[key] = cached
                    while len(self._models) > self.capacity:
                        self._models.popitem(last=False)
                        self._evictions += 1
        if events is None:
            return cached
        return DramPowerModel(device, events=events,
                              geometry=cached.geometry)

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every cached model (counters keep accumulating)."""
        with self._lock:
            self._models.clear()

    def stats(self) -> EngineStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return EngineStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._models),
                capacity=self.capacity,
                build_seconds=self._build_seconds,
            )
