"""Canonical device fingerprints — the engine's cache keys.

A fingerprint must satisfy two properties the naive ``repr`` route does
not guarantee:

* **stability** — the same description value always produces the same
  key, independent of object identity, insertion order of mappings, or
  cosmetic ``repr`` changes between library versions;
* **sensitivity** — any change to any model-relevant parameter (every
  Table-I input: capacitances, voltages, organisation, floorplan sizes,
  logic blocks, the command pattern…) produces a different key.

Both follow from a recursive walk over the frozen dataclass tree:
fields are visited in declaration order, mappings and sets are sorted,
floats are serialised exactly (``float.hex``), and every token is
type-tagged so ``1`` and ``1.0`` and ``"1"`` cannot collide.  The token
stream is hashed with SHA-256.

Because descriptions are frozen, every dataclass node memoises its own
canonical form (stashed on the instance) the first time it is walked.
``dataclasses.replace`` shares the unchanged sub-objects between a
device and its variants, so fingerprinting a perturbed copy only
re-walks the spine from the changed leaf to the root — the rest is
O(1) lookups.  The memo is invisible to ``==``/``repr`` (dataclass
equality only compares declared fields) and is only ever valid because
description objects are immutable.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Dict, List, Tuple

from ..description import DramDescription
from ..errors import ModelError

#: Field-name tuples per dataclass type (``dataclasses.fields`` is too
#: slow to call once per node on a hot path).
_FIELDS_BY_TYPE: Dict[type, Tuple[str, ...]] = {}

#: Attribute under which a frozen dataclass node memoises its own
#: canonical form (safe: descriptions are immutable, and dataclass
#: ``==`` / ``repr`` never look at undeclared attributes).
_MEMO_ATTR = "_engine_canonical_memo"


def _field_names(cls: type) -> Tuple[str, ...]:
    names = _FIELDS_BY_TYPE.get(cls)
    if names is None:
        names = tuple(field.name for field in dataclasses.fields(cls))
        _FIELDS_BY_TYPE[cls] = names
    return names


def _walk(value: Any, out: List[str]) -> None:
    """Append the canonical token stream of one value (recursive)."""
    kind = type(value)
    if kind is float:
        out.append("F:" + value.hex())
    elif kind is int:
        out.append("I:%d" % value)
    elif kind is bool:
        out.append("B:%d" % value)
    elif kind is str:
        out.append("S:%d:%s" % (len(value), value))
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        memo = getattr(value, _MEMO_ATTR, None)
        if memo is not None:
            out.append(memo)
            return
        sub: List[str] = ["D:" + kind.__name__ + "("]
        for name in _field_names(kind):
            sub.append(name + "=")
            _walk(getattr(value, name), sub)
        sub.append(")")
        memo = "".join(sub)
        object.__setattr__(value, _MEMO_ATTR, memo)
        out.append(memo)
    elif isinstance(value, enum.Enum):
        out.append("E:" + kind.__name__ + "." + value.name)
    elif isinstance(value, bool):
        out.append("B:%d" % value)
    elif isinstance(value, int):
        out.append("I:%d" % value)
    elif isinstance(value, float):
        out.append("F:" + value.hex())
    elif isinstance(value, str):
        out.append("S:%d:%s" % (len(value), value))
    elif value is None:
        out.append("N")
    elif isinstance(value, (tuple, list)):
        out.append("T:%d[" % len(value))
        for item in value:
            _walk(item, out)
        out.append("]")
    elif isinstance(value, (frozenset, set)):
        out.append("X:%d{" % len(value))
        for item in sorted(value, key=str):
            _walk(item, out)
        out.append("}")
    elif isinstance(value, dict):
        out.append("M:%d{" % len(value))
        for key in sorted(value, key=str):
            _walk(key, out)
            out.append(":")
            _walk(value[key], out)
        out.append("}")
    else:
        raise ModelError(
            f"cannot fingerprint value of type {kind.__name__}"
        )


def canonical_form(value: Any) -> str:
    """The full canonical token string of a value (mainly for tests).

    Two values have the same canonical form exactly when the engine
    considers them interchangeable as cache keys.
    """
    out: List[str] = []
    _walk(value, out)
    return "".join(out)


def fingerprint(device: DramDescription) -> str:
    """SHA-256 fingerprint of a device description (the cache key)."""
    out: List[str] = []
    _walk(device, out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()
