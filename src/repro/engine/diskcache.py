"""Persistent on-disk spill of built power models.

The in-memory :class:`~repro.engine.cache.ModelCache` dies with its
process, so every CLI run, CI job and worker starts cold.  This module
adds the disk layer underneath it: a fingerprint-keyed store of pickled
:class:`~repro.core.DramPowerModel` objects that survives across
processes, so a warm cache directory answers every repeated build with
an unpickle (~3x cheaper than a cold build, and shared by all runs).

Correctness over speed:

* **versioning** — every entry embeds a schema version and a
  *model-code token* (a hash over the source of every module that
  shapes a built model: ``core``, ``floorplan``, ``circuits``,
  ``description``).  Entries written by different model code are
  ignored, never deserialised into wrong results;
* **atomic writes** — entries are written to a temporary file and
  ``os.replace``d into place, so readers never observe a torn file;
* **corrupt-entry tolerance** — a truncated, unpicklable or
  mislabelled entry is treated as a miss (and counted), never raised.

The directory defaults to ``~/.cache/repro`` (``REPRO_CACHE_DIR`` or
``XDG_CACHE_HOME`` override it); the CLI exposes ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..core import DramPowerModel

#: Bumped whenever the entry layout itself changes shape.
SCHEMA_VERSION = 1

#: Packages whose source determines the content of a built model; any
#: change to any of their files invalidates every disk entry.
_TOKEN_PACKAGES = ("core", "floorplan", "circuits", "description")

_TOKEN_CACHE: Optional[str] = None


def default_cache_dir() -> Path:
    """The cache directory used when no ``--cache-dir`` is given.

    ``$REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def model_code_token() -> str:
    """SHA-256 over the source of every model-shaping module.

    Two interpreter runs compute the same token exactly when the code
    that turns a description into energies is byte-identical — the
    invalidation story for the disk cache: a stale entry's token no
    longer matches and the entry is silently ignored.
    """
    global _TOKEN_CACHE
    if _TOKEN_CACHE is None:
        digest = hashlib.sha256()
        digest.update(b"schema:%d" % SCHEMA_VERSION)
        root = Path(__file__).resolve().parent.parent
        for package in _TOKEN_PACKAGES:
            for path in sorted((root / package).rglob("*.py")):
                digest.update(path.name.encode("utf-8"))
                digest.update(path.read_bytes())
        _TOKEN_CACHE = digest.hexdigest()
    return _TOKEN_CACHE


class DiskModelCache:
    """Fingerprint-keyed file store of pickled built models.

    One instance serves one cache directory and one invalidation token;
    entries live under a token-scoped subdirectory, so a model-code
    change simply starts a fresh namespace instead of mixing entries.
    The store never raises on I/O or deserialisation problems — a
    broken entry or an unwritable directory degrades to a cold build.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 token: Optional[str] = None):
        self.directory = (Path(directory) if directory is not None
                          else default_cache_dir())
        self.token = token if token is not None else model_code_token()
        self._entries = (self.directory
                         / f"v{SCHEMA_VERSION}-{self.token[:16]}")
        #: Entries that existed but could not be used (unpicklable,
        #: truncated, or carrying a foreign schema/token/fingerprint).
        self.corrupt_entries = 0

    def _path(self, key: str) -> Path:
        return self._entries / (key + ".pkl")

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[DramPowerModel]:
        """The stored model of ``key``, or ``None`` on any miss.

        Corrupt or stale entries count in :attr:`corrupt_entries` and
        read as misses; no failure mode raises.
        """
        try:
            blob = self._path(key).read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(blob)
            if (payload["schema"] != SCHEMA_VERSION
                    or payload["token"] != self.token
                    or payload["fingerprint"] != key):
                raise ValueError("stale or foreign cache entry")
            model = payload["model"]
            if not isinstance(model, DramPowerModel):
                raise TypeError("entry does not hold a model")
            return model
        except Exception:
            self.corrupt_entries += 1
            return None

    def store(self, key: str, model: DramPowerModel) -> bool:
        """Atomically persist ``model`` under ``key``; False on failure.

        The entry is complete-or-absent: it is staged in a temporary
        file and renamed into place, so concurrent readers and writers
        (parallel workers, parallel CI jobs) never see a torn entry.
        No failure mode raises or leaks the staging file — I/O errors
        and serialisation errors alike just return ``False``.
        """
        payload = {
            "schema": SCHEMA_VERSION,
            "token": self.token,
            "fingerprint": key,
            "model": model,
        }
        staging = None
        try:
            self._entries.mkdir(parents=True, exist_ok=True)
            handle, staging = tempfile.mkstemp(
                dir=self._entries, prefix=key[:8] + "-", suffix=".tmp")
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(staging, self._path(key))
            staging = None
            return True
        except Exception:
            # Not just OSError: a model holding an unpicklable
            # attribute raises PicklingError mid-dump, and the "never
            # raises" contract covers that too — the write degrades to
            # a cold build next time.
            return False
        finally:
            if staging is not None:
                try:
                    os.unlink(staging)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of entries currently stored for this token."""
        try:
            return sum(1 for _ in self._entries.glob("*.pkl"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Delete every entry of this token's namespace."""
        try:
            for path in self._entries.glob("*.pkl"):
                try:
                    path.unlink()
                except OSError:
                    pass
        except OSError:
            pass
