"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``idd``          — datasheet IDD currents of a built or described device
``pattern``      — power of a command pattern on a device
``verify``       — the Figure 8/9 model-vs-datasheet comparison
``trends``       — the Figure 11/12/13 generation tables
``sensitivity``  — the Figure 10 Pareto for one device
``schemes``      — the Section V scheme comparison for one device
``trace``        — trace-based power of a generated workload or an
external trace file (k6 / gem5-mase / NDJSON, gzip transparent)
``dump``         — serialise a built device to the description language
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import DramPowerModel, Pattern, build_device
from .analysis import (
    energy_reduction_factors,
    format_table,
    generation_trend,
    sensitivity,
    verification_report,
    verify_ddr2,
    verify_ddr3,
)
from .core.idd import standard_idd_suite
from .core.trace import evaluate_trace
from .trace import AddressDecoder, replay_trace_file
from .description import DramDescription
from .engine import EvaluationSession
from .dsl import dumps, load
from .schemes import compare_schemes, scheme_report
from .units import parse_quantity
from .workloads import random_trace, streaming_trace


def _parse_density(text: str) -> int:
    """Parse a density like ``2Gb`` or ``512M`` as *binary* bits.

    Memory capacities use binary prefixes: 1 Gb = 2³⁰ bits.
    """
    cleaned = text.strip()
    if cleaned.endswith("bit"):
        cleaned = cleaned[:-3]
    elif cleaned.endswith("b"):
        cleaned = cleaned[:-1]
    shifts = {"G": 30, "M": 20, "K": 10, "k": 10}
    if cleaned and cleaned[-1] in shifts:
        return int(float(cleaned[:-1])) << shifts[cleaned[-1]]
    return int(float(cleaned))


def _device_from_args(args: argparse.Namespace) -> DramDescription:
    """Build or load the device a subcommand operates on."""
    if getattr(args, "file", None):
        return load(args.file)
    kwargs = {}
    if args.interface:
        kwargs["interface"] = args.interface
    if args.density:
        kwargs["density_bits"] = _parse_density(args.density)
    if args.datarate:
        kwargs["datarate"] = parse_quantity(args.datarate)
    return build_device(args.node, io_width=args.width, **kwargs)


def _add_device_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--file", help="description-language file to load "
                                       "(overrides the build options)")
    parser.add_argument("--node", type=float, default=55,
                        help="technology node in nm (default 55)")
    parser.add_argument("--interface",
                        choices=["SDR", "DDR", "DDR2", "DDR3", "DDR4",
                                 "DDR5"],
                        help="interface family (default: node mainstream)")
    parser.add_argument("--density",
                        help="density in bits, units allowed (e.g. 2Gb)")
    parser.add_argument("--width", type=int, default=16,
                        help="I/O width (default 16)")
    parser.add_argument("--datarate",
                        help="per-pin data rate (e.g. 1.6Gbps)")


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """The uniform sweep-execution options of every sweep subcommand."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="evaluate sweep variants with N workers "
                             "(default: every usable CPU)")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "serial", "thread",
                                 "process", "vector"],
                        help="sweep execution backend (default auto: "
                             "serial, process or vector chosen per "
                             "call from the sweep width, the measured "
                             "per-build and per-fold costs and the "
                             "usable core count; process = real "
                             "multi-core scale-out, vector = columnar "
                             "numpy kernel over batchable sweep "
                             "families)")
    parser.add_argument("--cache-dir", dest="cache_dir", default=None,
                        help="persistent on-disk model cache directory "
                             "(default: disabled; ~/.cache/repro is "
                             "the conventional location)")


def _session_from_args(args: argparse.Namespace) -> EvaluationSession:
    """One evaluation session per CLI command, disk-backed on demand."""
    return EvaluationSession(
        cache_dir=getattr(args, "cache_dir", None))


def _cmd_idd(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    model = DramPowerModel(device)
    rows = [[result.measure.value, round(result.milliamps, 1),
             round(result.power.power * 1e3, 1)]
            for result in standard_idd_suite(model).values()]
    print(format_table(["measure", "mA", "mW"], rows,
                       title=f"IDD currents of {device.name}"))
    return 0


def _cmd_pattern(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    model = DramPowerModel(device)
    pattern = Pattern.parse(args.loop)
    result = model.pattern_power(pattern)
    print(f"device       : {device.name}")
    print(f"pattern      : {pattern}")
    print(f"power        : {result.power * 1e3:.1f} mW "
          f"({result.current * 1e3:.1f} mA)")
    print(f"energy/bit   : {result.energy_per_bit_pj:.2f} pJ")
    rows = [[name, round(value * 1e3, 1)]
            for name, value in result.breakdown.as_dict().items()]
    print(format_table(["component", "mW"], rows))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.standard in ("ddr2", "both"):
        print(verification_report(verify_ddr2(),
                                  title="Figure 8 - 1G DDR2 (mA)"))
        print()
    if args.standard in ("ddr3", "both"):
        print(verification_report(verify_ddr3(),
                                  title="Figure 9 - 1G DDR3 (mA)"))
    return 0


def _cmd_trends(args: argparse.Namespace) -> int:
    points = generation_trend(io_width=args.width,
                              session=_session_from_args(args),
                              jobs=args.jobs, backend=args.backend)
    rows = [[point.node_nm, point.interface,
             point.datarate / 1e9, point.vdd, point.die_area_mm2,
             point.idd0_ma, point.idd4r_ma, point.energy_idd7_pj]
            for point in points]
    print(format_table(
        ["node nm", "interface", "Gb/s", "Vdd", "die mm2", "IDD0 mA",
         "IDD4R mA", "pJ/bit"],
        rows, title="Figures 11-13 - generation trends",
    ))
    early, late = energy_reduction_factors(points)
    print(f"\nenergy reduction per generation: {early:.2f}x "
          f"(170->44nm), {late:.2f}x (44->16nm)")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    results = sensitivity(device, variation=args.variation,
                          session=_session_from_args(args),
                          jobs=args.jobs, backend=args.backend)
    rows = [[result.name, f"{result.impact:+.1%}"] for result in results]
    print(format_table(
        ["parameter", f"impact of +/-{args.variation:.0%}"], rows,
        title=f"Figure 10 - sensitivity of {device.name}",
    ))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    results = compare_schemes(device, session=_session_from_args(args),
                              jobs=args.jobs, backend=args.backend)
    print(scheme_report(results,
                        title=f"Section V - schemes on {device.name}"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    model = DramPowerModel(device)
    if args.trace_file:
        return _trace_file(args, device, model)
    if args.workload == "streaming":
        commands = streaming_trace(device, args.accesses,
                                   read_fraction=args.read_fraction)
    else:
        commands = random_trace(device, args.accesses,
                                row_hit_rate=args.hit_rate,
                                read_fraction=args.read_fraction,
                                seed=args.seed)
    result = evaluate_trace(model, commands)
    print(f"device        : {device.name}")
    print(f"workload      : {args.workload}, {args.accesses} accesses")
    print(f"duration      : {result.duration * 1e6:.2f} us")
    print(f"row hit rate  : {result.row_hit_rate:.2f}")
    print(f"bandwidth     : "
          f"{result.data_bits / result.duration / 1e9:.2f} Gb/s")
    print(f"average power : {result.average_power * 1e3:.1f} mW "
          f"({result.average_current * 1e3:.1f} mA)")
    print(f"energy/bit    : {result.energy_per_bit * 1e12:.2f} pJ")
    return 0


def _trace_file(args: argparse.Namespace, device, model) -> int:
    """``repro trace <file>``: replay an external trace on the chosen
    backend (serial fold, columnar kernel or rank-sharded processes)
    and summarize."""
    decoder = AddressDecoder.from_device(
        device, policy=args.policy,
        channel_bits=args.channel_bits, rank_bits=args.rank_bits,
        offset_bits=args.offset_bits)
    fmt = None if args.format == "auto" else args.format
    started = time.perf_counter()
    accumulator, backend = replay_trace_file(
        model, args.trace_file, fmt=fmt, decoder=decoder,
        clock=parse_quantity(args.clock), strict=args.strict,
        backend=args.backend, jobs=args.jobs)
    elapsed = time.perf_counter() - started
    result = accumulator.result()
    commands_seen = accumulator.commands_seen
    rate = commands_seen / elapsed if elapsed > 0 else float("inf")
    print(f"device        : {device.name}")
    print(f"backend       : {backend}")
    print(f"trace         : {args.trace_file} "
          f"({commands_seen} commands)")
    print(f"duration      : {result.duration * 1e6:.2f} us")
    print(f"row hit rate  : {result.row_hit_rate:.2f} "
          f"(hits {result.row_hits}, misses {result.row_misses}, "
          f"conflicts {result.row_conflicts})")
    if result.data_bits:
        print(f"bandwidth     : "
              f"{result.data_bits / result.duration / 1e9:.2f} Gb/s")
    print(f"average power : {result.average_power * 1e3:.1f} mW "
          f"({result.average_current * 1e3:.1f} mA)")
    if result.data_bits:
        print(f"energy/bit    : "
              f"{result.energy_per_bit * 1e12:.2f} pJ")
    print(f"throughput    : {rate / 1e6:.2f} Mcmd/s")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .analysis import check_device

    device = _device_from_args(args)
    session = _session_from_args(args)
    session.model(device)
    results = check_device(device, session=session)
    rows = [[result.severity, result.check, result.message]
            for result in results]
    print(format_table(["severity", "check", "finding"], rows,
                       title=f"Feasibility of {device.name}"))
    stats = session.stats
    print(f"engine: {stats}")
    if stats.stage_lookups:
        print(f"stage-cache: hits={stats.stage_hits} "
              f"misses={stats.stage_misses} "
              f"hit-rate={stats.stage_hit_rate:.1%}")
    if stats.vector_batches or stats.vector_downgrades:
        print(f"vector: batches={stats.vector_batches} "
              f"builds={stats.vector_builds} "
              f"fallbacks={stats.vector_fallbacks} "
              f"downgrades={stats.vector_downgrades} "
              f"time={stats.vector_seconds:.3f}s")
    if session.cache_dir is not None:
        print(f"model-cache: dir={session.cache_dir} "
              f"hit-rate={stats.hit_rate:.1%} "
              f"cold-builds={stats.misses} "
              f"disk-hits={stats.disk_hits} "
              f"disk-writes={stats.disk_writes}")
    return 0 if all(result.is_ok for result in results) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging
    import os

    from .service import ApiKeyAuth, ServiceLimits, create_service
    from .service.prefork import serve_prefork

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    limits = ServiceLimits(max_inflight=args.max_inflight,
                           max_queue=args.max_queue,
                           queue_timeout=args.queue_timeout,
                           request_timeout=args.request_timeout,
                           retry_after=args.retry_after,
                           result_cache=args.result_cache)
    auth = ApiKeyAuth.from_options(keys=args.api_key)
    cache = args.cache_dir or "disabled"
    guard = f"{len(auth)} API key(s)" if auth is not None else "open"
    jobs_dir = args.jobs_dir
    if jobs_dir is None and args.cache_dir is not None:
        jobs_dir = os.path.join(args.cache_dir, "jobs")
    jobs = jobs_dir or "disabled"
    if args.workers > 1:
        supervisor = serve_prefork(
            host=args.host, port=args.port, workers=args.workers,
            capacity=args.capacity, cache_dir=args.cache_dir,
            limits=limits, auth=auth,
            affinity=not args.no_affinity,
            preseed=not args.no_preseed,
            jobs_dir=jobs_dir, job_ttl=args.job_ttl)
        print(f"repro service listening on "
              f"http://{args.host}:{supervisor.port} "
              f"({args.workers} workers, "
              f"model-cache capacity={args.capacity}, "
              f"cache-dir={cache}, jobs-dir={jobs}, "
              f"auth={guard}, "
              f"affinity={'off' if args.no_affinity else 'on'}); "
              f"SIGTERM or Ctrl-C drains and exits",
              flush=True)
        supervisor.run_until_signal()
        print("repro service stopped "
              f"({supervisor.respawns} worker respawns)")
        return 0
    service = create_service(host=args.host, port=args.port,
                             capacity=args.capacity,
                             cache_dir=args.cache_dir,
                             limits=limits, auth=auth,
                             jobs_dir=jobs_dir,
                             job_ttl=args.job_ttl)
    print(f"repro service listening on "
          f"http://{args.host}:{service.server_port} "
          f"(model-cache capacity={args.capacity}, "
          f"cache-dir={cache}, jobs-dir={jobs}, auth={guard}, "
          f"in-flight<={limits.max_inflight}, "
          f"queue<={limits.max_queue}, "
          f"request-timeout={limits.request_timeout:g}s); "
          f"SIGTERM or Ctrl-C drains and exits",
          flush=True)
    service.run()
    print("repro service stopped")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from .client import ServiceClient
    from .errors import JobError, JobNotFound, ServiceError

    client = ServiceClient(args.url, api_key=args.api_key,
                           timeout=args.timeout)
    try:
        if args.job_command == "submit":
            try:
                params = json.loads(args.params)
            except ValueError as exc:
                print(f"error: --params is not valid JSON: {exc}",
                      file=sys.stderr)
                return 2
            handle = client.submit_job(
                args.kind, params=params,
                chunk_size=args.chunk_size,
                idempotency_key=args.key)
            if args.wait:
                print(json.dumps(handle.result(), indent=2))
            else:
                print(json.dumps(handle.submitted, indent=2))
        elif args.job_command == "status":
            print(json.dumps(client.job(args.job_id).status(),
                             indent=2))
        elif args.job_command == "watch":
            handle = client.job(args.job_id)
            last = None
            for status in handle.watch(interval=args.interval,
                                       timeout=args.timeout_watch):
                line = (f"{status.get('state')} "
                        f"{status.get('chunks_done', 0)}/"
                        f"{status.get('chunks_total', '?')} chunks "
                        f"({status.get('units_done', 0)}/"
                        f"{status.get('units_total', '?')} units)")
                if line != last:
                    print(line, flush=True)
                    last = line
        elif args.job_command == "result":
            result = client.job(args.job_id).result(
                timeout=args.timeout_watch)
            print(json.dumps(result, indent=2))
        elif args.job_command == "cancel":
            print(json.dumps(client.job(args.job_id).cancel(),
                             indent=2))
        else:  # list
            print(json.dumps(client.request("GET", "/jobs"),
                             indent=2))
    except JobNotFound as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    except JobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .analysis import export_all

    paths = export_all(args.directory)
    for path in paths:
        print(f"wrote {path}")
    return 0


def _cmd_corners(args: argparse.Namespace) -> int:
    from .analysis.corners import VENDOR_SPREAD_CORNERS, corner_sweep
    from .analysis.montecarlo import monte_carlo

    device = _device_from_args(args)
    session = _session_from_args(args)
    corners = (VENDOR_SPREAD_CORNERS if args.vendor
               else None)
    bands = (corner_sweep(device, corners=corners, session=session,
                          jobs=args.jobs, backend=args.backend)
             if corners
             else corner_sweep(device, session=session, jobs=args.jobs,
                               backend=args.backend))
    rows = []
    for band in bands:
        rows.append([band.measure.value, round(band.minimum, 1),
                     round(band.typical, 1), round(band.maximum, 1),
                     f"{band.spread:.1%}"])
    label = "vendor-spread" if args.vendor else "process"
    print(format_table(
        ["measure", "min mA", "typ mA", "max mA", "spread"],
        rows, title=f"{label} corners of {device.name}",
    ))
    if args.samples:
        print()
        rows = []
        for dist in monte_carlo(device, samples=args.samples,
                                seed=args.seed, session=session,
                                jobs=args.jobs,
                                backend=args.backend):
            rows.append([dist.measure.value, round(dist.mean, 1),
                         round(dist.stdev, 2),
                         round(dist.percentile(0.95), 1),
                         f"{dist.guard_band:.3f}"])
        print(format_table(
            ["measure", "mean mA", "sigma", "p95 mA", "p95/mean"],
            rows, title=f"Monte-Carlo ({args.samples} samples)",
        ))
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from .description import Command

    device = _device_from_args(args)
    model = DramPowerModel(device)
    command = Command(args.operation)
    rows = []
    for event, energy in model.event_energies(command):
        rows.append([
            event.name,
            event.component.value,
            event.rail.value,
            f"{event.count:g}",
            f"{event.capacitance * 1e15:.2f}",
            f"{event.swing:.2f}",
            round(energy * 1e12, 2),
        ])
    print(format_table(
        ["event", "component", "rail", "count", "C (fF)", "swing (V)",
         "energy (pJ)"],
        rows,
        title=f"Charge events of one {command.value} on {device.name}",
    ))
    total = model.operation_energy(command)
    print(f"\ntotal: {total * 1e12:.1f} pJ per {command.value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.compare import compare_report
    from .dsl import load as load_description

    left = load_description(args.left)
    right = load_description(args.right)
    print(compare_report(left, right))
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .analysis.breakdown import breakdown_report
    from .floorplan import FloorplanGeometry

    device = _device_from_args(args)
    geometry = FloorplanGeometry(device)
    spec = device.spec
    print(f"device        : {device.name}")
    print(f"interface     : {device.interface}, "
          f"{spec.datarate / 1e9:g} Gb/s/pin, x{spec.io_width}, "
          f"prefetch {spec.prefetch}")
    print(f"organisation  : {spec.banks} banks x {spec.rows_per_bank} "
          f"rows x {spec.page_bits} bits/page "
          f"({device.density_label})")
    print(f"array         : {device.floorplan.array.bitline_arch} "
          f"bitlines, {device.floorplan.array.bits_per_bitline} "
          f"cells/BL, {device.swls_per_activate} SWLs/activate, "
          f"{device.csls_per_access} CSLs/access")
    print(f"die           : {geometry.die_width * 1e3:.1f} x "
          f"{geometry.die_height * 1e3:.1f} mm = "
          f"{geometry.die_area * 1e6:.1f} mm2, efficiency "
          f"{geometry.array_efficiency:.0%}")
    print(f"stripes       : SA {geometry.sa_stripe_share:.1%}, "
          f"SWD {geometry.swd_stripe_share:.1%} of die")
    volts = device.voltages
    print(f"voltages      : Vdd {volts.vdd:g}, Vint {volts.vint:g}, "
          f"Vbl {volts.vbl:g}, Vpp {volts.vpp:g} V")
    print()
    model = DramPowerModel(device)
    print(breakdown_report(model))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    device = _device_from_args(args)
    if args.format == "json":
        from .description.jsonio import dumps_json
        text = dumps_json(device)
    else:
        text = dumps(device)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {device.name} to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bottom-up DRAM power model "
                    "(Vogelsang, MICRO 2010 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    idd = subparsers.add_parser("idd", help="datasheet IDD currents")
    _add_device_arguments(idd)
    idd.set_defaults(handler=_cmd_idd)

    pattern = subparsers.add_parser("pattern",
                                    help="power of a command pattern")
    _add_device_arguments(pattern)
    pattern.add_argument("--loop",
                         default="act nop wrt nop rd nop pre nop",
                         help="command loop (paper syntax)")
    pattern.set_defaults(handler=_cmd_pattern)

    verify = subparsers.add_parser("verify",
                                   help="Figure 8/9 datasheet comparison")
    verify.add_argument("standard", nargs="?", default="both",
                        choices=["ddr2", "ddr3", "both"])
    verify.set_defaults(handler=_cmd_verify)

    trends = subparsers.add_parser("trends",
                                   help="Figure 11-13 generation tables")
    trends.add_argument("--width", type=int, default=16)
    _add_sweep_arguments(trends)
    trends.set_defaults(handler=_cmd_trends)

    sens = subparsers.add_parser("sensitivity",
                                 help="Figure 10 parameter Pareto")
    _add_device_arguments(sens)
    sens.add_argument("--variation", type=float, default=0.2)
    _add_sweep_arguments(sens)
    sens.set_defaults(handler=_cmd_sensitivity)

    schemes = subparsers.add_parser("schemes",
                                    help="Section V scheme comparison")
    _add_device_arguments(schemes)
    _add_sweep_arguments(schemes)
    schemes.set_defaults(handler=_cmd_schemes)

    trace = subparsers.add_parser("trace",
                                  help="trace-based workload power")
    _add_device_arguments(trace)
    trace.add_argument("trace_file", nargs="?", default=None,
                       help="external trace file to evaluate (k6 / "
                            "gem5-mase / NDJSON, gzip transparent); "
                            "omit to price a generated workload")
    trace.add_argument("--format", default="auto",
                       choices=["auto", "k6", "mase", "jsonl"],
                       help="trace line format (default: sniffed)")
    trace.add_argument("--clock", default="1GHz",
                       help="cycle clock of the trace's cycle stamps "
                            "(default 1GHz)")
    trace.add_argument("--policy", default="row-bank-column",
                       choices=["row-bank-column", "bank-row-column"],
                       help="address bit-slice ordering")
    trace.add_argument("--channel-bits", dest="channel_bits",
                       type=int, default=0)
    trace.add_argument("--rank-bits", dest="rank_bits", type=int,
                       default=0)
    trace.add_argument("--offset-bits", dest="offset_bits", type=int,
                       default=None,
                       help="low address bits below the column field "
                            "(default: one access width)")
    trace.add_argument("--strict", action="store_true",
                       help="raise on protocol/timing violations "
                            "instead of pricing the trace as given")
    trace.add_argument("--backend", default="auto",
                       choices=["auto", "serial", "vector", "process"],
                       help="replay backend: serial fold, columnar "
                            "kernel (numpy), rank-sharded processes, "
                            "or cost-based auto (default)")
    trace.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the process "
                            "backend (default: usable CPUs)")
    trace.add_argument("--workload", default="random",
                       choices=["random", "streaming"])
    trace.add_argument("--accesses", type=int, default=2000)
    trace.add_argument("--hit-rate", dest="hit_rate", type=float,
                       default=0.5)
    trace.add_argument("--read-fraction", dest="read_fraction",
                       type=float, default=0.67)
    trace.add_argument("--seed", type=int, default=1)
    trace.set_defaults(handler=_cmd_trace)

    check = subparsers.add_parser(
        "check", help="feasibility checks (stripe shares, die area)")
    _add_device_arguments(check)
    _add_sweep_arguments(check)
    check.set_defaults(handler=_cmd_check)

    serve = subparsers.add_parser(
        "serve", help="long-lived evaluation service over HTTP "
                      "(see docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8080)")
    serve.add_argument("--capacity", type=int, default=256,
                       help="in-memory model cache capacity "
                            "(default 256 models)")
    serve.add_argument("--cache-dir", dest="cache_dir", default=None,
                       help="persistent on-disk model cache directory "
                            "(default: disabled)")
    serve.add_argument("--jobs-dir", dest="jobs_dir", default=None,
                       help="durable job journal directory; default "
                            "<cache-dir>/jobs when --cache-dir is "
                            "set, else the job API is disabled")
    serve.add_argument("--job-ttl", dest="job_ttl",
                       type=float, default=3600.0,
                       help="seconds a finished job's journal and "
                            "result stay on disk before GC "
                            "(default 3600)")
    serve.add_argument("--max-inflight", dest="max_inflight",
                       type=int, default=8,
                       help="concurrent requests admitted before "
                            "queueing (default 8)")
    serve.add_argument("--max-queue", dest="max_queue",
                       type=int, default=16,
                       help="requests allowed to wait for a slot; "
                            "beyond this the service sheds with 429 "
                            "(default 16)")
    serve.add_argument("--queue-timeout", dest="queue_timeout",
                       type=float, default=5.0,
                       help="seconds a request may wait for a slot "
                            "before a 503 (default 5)")
    serve.add_argument("--request-timeout", dest="request_timeout",
                       type=float, default=30.0,
                       help="per-request deadline in seconds, 0 "
                            "disables; clients may override per "
                            "request via X-Request-Timeout "
                            "(default 30)")
    serve.add_argument("--retry-after", dest="retry_after",
                       type=float, default=1.0,
                       help="Retry-After hint sent with shed "
                            "responses, seconds (default 1)")
    serve.add_argument("--result-cache", dest="result_cache",
                       type=int, default=256,
                       help="memoized /evaluate responses kept in "
                            "the LRU result cache, 0 disables "
                            "(default 256)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes; >1 pre-forks a "
                            "supervised fleet sharing the port via "
                            "SO_REUSEPORT (default 1)")
    serve.add_argument("--api-key", dest="api_key", action="append",
                       default=None, metavar="KEY",
                       help="require this X-Api-Key on every request "
                            "but /healthz (repeatable; also read "
                            "from $REPRO_API_KEYS)")
    serve.add_argument("--no-affinity", dest="no_affinity",
                       action="store_true",
                       help="disable fingerprint-affinity redirects "
                            "between pre-fork workers")
    serve.add_argument("--no-preseed", dest="no_preseed",
                       action="store_true",
                       help="skip the shared-memory stage preseed "
                            "of pre-fork workers")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request (DEBUG level)")
    serve.set_defaults(handler=_cmd_serve)

    jobs = subparsers.add_parser(
        "jobs", help="submit and track durable jobs on a running "
                     "service")
    jobs.add_argument("--url", default="http://127.0.0.1:8080",
                      help="service base URL "
                           "(default http://127.0.0.1:8080)")
    jobs.add_argument("--api-key", dest="api_key", default=None,
                      help="X-Api-Key sent with every request")
    jobs.add_argument("--timeout", type=float, default=60.0,
                      help="per-request HTTP timeout in seconds "
                           "(default 60)")
    jobs_sub = jobs.add_subparsers(dest="job_command", required=True)
    submit = jobs_sub.add_parser(
        "submit", help="POST /jobs: submit a durable job")
    submit.add_argument("kind",
                        choices=["montecarlo", "evaluate", "sweep"],
                        help="job kind")
    submit.add_argument("--params", default="{}",
                        help="job parameters as a JSON object "
                             "(default {})")
    submit.add_argument("--chunk-size", dest="chunk_size", type=int,
                        default=None,
                        help="units checkpointed per journal chunk")
    submit.add_argument("--key", default=None,
                        help="idempotency key: resubmits land on "
                             "the same job")
    submit.add_argument("--wait", action="store_true",
                        help="block until done and print the result")
    status = jobs_sub.add_parser(
        "status", help="GET /jobs/<id>: state and progress")
    status.add_argument("job_id")
    watch = jobs_sub.add_parser(
        "watch", help="poll a job, printing progress until terminal")
    watch.add_argument("job_id")
    watch.add_argument("--interval", type=float, default=0.5,
                       help="poll interval, seconds (default 0.5)")
    watch.add_argument("--timeout", dest="timeout_watch", type=float,
                       default=None,
                       help="give up after this many seconds")
    result = jobs_sub.add_parser(
        "result", help="wait for and print a job's final result")
    result.add_argument("job_id")
    result.add_argument("--timeout", dest="timeout_watch",
                        type=float, default=None,
                        help="give up after this many seconds")
    cancel = jobs_sub.add_parser(
        "cancel", help="DELETE /jobs/<id>: cooperative cancel")
    cancel.add_argument("job_id")
    jobs_sub.add_parser("list", help="GET /jobs: list known jobs")
    jobs.set_defaults(handler=_cmd_jobs)

    export = subparsers.add_parser(
        "export", help="write all experiment data as CSV/JSON")
    export.add_argument("directory", help="output directory")
    export.set_defaults(handler=_cmd_export)

    corners = subparsers.add_parser(
        "corners", help="process/vendor corner bands and Monte-Carlo")
    _add_device_arguments(corners)
    corners.add_argument("--vendor", action="store_true",
                         help="use the wider vendor-spread corner set")
    corners.add_argument("--samples", type=int, default=0,
                         help="add a Monte-Carlo run with N samples")
    corners.add_argument("--seed", type=int, default=1)
    _add_sweep_arguments(corners)
    corners.set_defaults(handler=_cmd_corners)

    events = subparsers.add_parser(
        "events", help="per-event energy catalog of one operation")
    _add_device_arguments(events)
    events.add_argument("--operation", default="act",
                        choices=["act", "pre", "rd", "wr"])
    events.set_defaults(handler=_cmd_events)

    compare = subparsers.add_parser(
        "compare", help="diff two description files and their IDDs")
    compare.add_argument("left", help="first description file")
    compare.add_argument("right", help="second description file")
    compare.set_defaults(handler=_cmd_compare)

    info = subparsers.add_parser(
        "info", help="device organisation, geometry and breakdown")
    _add_device_arguments(info)
    info.set_defaults(handler=_cmd_info)

    report = subparsers.add_parser(
        "report", help="full reproduction report (all experiments)")
    report.add_argument("-o", "--output",
                        help="output file (default stdout)")
    report.set_defaults(handler=_cmd_report)

    dump = subparsers.add_parser(
        "dump", help="serialise a device to the description language")
    _add_device_arguments(dump)
    dump.add_argument("-o", "--output", help="output file (default stdout)")
    dump.add_argument("--format", choices=["dsl", "json"], default="dsl",
                      help="output format (default: the description "
                           "language)")
    dump.set_defaults(handler=_cmd_dump)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
