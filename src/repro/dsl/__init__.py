"""The DRAM description language (paper Section III.B).

The original model was a Perl program reading a description file; this
package provides the equivalent front end.  The concrete syntax follows
the paper's published excerpts where available (``CellArray BL=v
BitsPerBL=512 BLtype=open``, ``Vertical blocks = A1 P1 P2 P1 A1``,
``SizeVertical A1=3396um P1=200um P2=530um``, segment statements with
``inside=0_2 fraction=25% dir=h mux=1:8`` and ``start=0_2 end=3_2
PchW=19.2 NchW=9.6``, ``IO width=16 datarate=1.6Gbps``, ``Pattern loop=
act nop wrt nop rd nop pre nop``) and fills the unspecified parts with the
same keyword=value style.

Grammar
-------
A file is a sequence of *sections*; a section header is a bare word on its
own line (``FloorplanPhysical``, ``FloorplanSignaling``, ``Specification``,
``Voltages``, ``Technology``, ``Timing``, ``LogicBlocks``) and the
top-level statements ``Device …`` and ``Pattern loop= …``.  Every other
line is a *statement*: a keyword followed by ``key=value`` pairs.  Values
carry units (``165nm``, ``1.6Gbps``, ``25%``, ``1:8``).  ``#`` starts a
comment.  Two special statement forms exist: ``<axis> blocks = NAME…``
(block sequences) and ``Pattern loop= CMD…`` (command loops).

Entry points
------------
* :func:`loads` — parse a description string into a
  :class:`~repro.description.DramDescription`;
* :func:`load`  — parse a file;
* :func:`dumps` — serialise a description back to the language;
* :func:`dump`  — write a file.

Round trip is lossless: ``loads(dumps(device))`` evaluates to the same
power as ``device``.
"""

from .lexer import Line, Statement, tokenize
from .parser import ParsedDescription, parse
from .builder import build
from .writer import dumps


def loads(text: str, source: str = "<string>"):
    """Parse description-language text into a DramDescription."""
    return build(parse(tokenize(text, source)))


def load(path):
    """Parse a description-language file into a DramDescription."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), source=str(path))


def dump(device, path) -> None:
    """Serialise a DramDescription into a description-language file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(device))


__all__ = [
    "Line",
    "Statement",
    "tokenize",
    "ParsedDescription",
    "parse",
    "build",
    "loads",
    "load",
    "dumps",
    "dump",
]
