"""Tokenizer for the description language.

Turns raw text into a stream of :class:`Statement` objects: a keyword,
optional ``key=value`` pairs and an optional word list (for the two list
forms ``… blocks = A1 P1 …`` and ``Pattern loop= act nop …``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import DslSyntaxError

_KEYWORD_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_PAIR_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(\S*)$")


@dataclass(frozen=True)
class Line:
    """One significant source line."""

    number: int
    text: str
    source: str = "<input>"


@dataclass(frozen=True)
class Statement:
    """One tokenized statement."""

    keyword: str
    pairs: Dict[str, str] = field(default_factory=dict)
    words: Tuple[str, ...] = ()
    line: int = 0
    source: str = "<input>"

    @property
    def is_section_header(self) -> bool:
        """True for a bare keyword with no arguments."""
        return not self.pairs and not self.words


def _strip_comment(text: str) -> str:
    index = text.find("#")
    if index >= 0:
        return text[:index]
    return text


def _split_list_form(tokens: List[str]) -> Tuple[str, List[str]]:
    """Recognise ``KEY <marker> = WORDS…`` / ``KEY <marker>= WORDS…``.

    Returns (marker, words) or raises ValueError when not a list form.
    """
    if len(tokens) < 2:
        raise ValueError("not a list form")
    marker = tokens[1]
    rest = tokens[2:]
    if marker.endswith("="):
        return marker[:-1], rest
    if rest and rest[0] == "=":
        return marker, rest[1:]
    raise ValueError("not a list form")


#: Markers introducing a word-list statement.
LIST_MARKERS = ("blocks", "loop")


def tokenize(text: str, source: str = "<input>") -> List[Statement]:
    """Tokenize description text into statements."""
    statements: List[Statement] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw).strip()
        if not stripped:
            continue
        tokens = stripped.split()
        keyword = tokens[0]
        if not _KEYWORD_RE.match(keyword):
            raise DslSyntaxError(
                f"invalid keyword {keyword!r}", line=number, source=source
            )
        # List forms: "Vertical blocks = A1 P1 P2", "Pattern loop= act nop".
        if len(tokens) > 1:
            marker = tokens[1].rstrip("=")
            if marker in LIST_MARKERS:
                try:
                    marker, words = _split_list_form(tokens)
                except ValueError:
                    raise DslSyntaxError(
                        f"malformed {marker!r} list", line=number,
                        source=source,
                    ) from None
                if not words:
                    raise DslSyntaxError(
                        f"empty {marker!r} list", line=number, source=source
                    )
                statements.append(Statement(
                    keyword=keyword, pairs={}, words=tuple(words),
                    line=number, source=source,
                ))
                continue
        pairs: Dict[str, str] = {}
        for token in tokens[1:]:
            match = _PAIR_RE.match(token)
            if not match:
                raise DslSyntaxError(
                    f"expected key=value, got {token!r}", line=number,
                    source=source,
                )
            key, value = match.group(1), match.group(2)
            if key in pairs:
                raise DslSyntaxError(
                    f"duplicate key {key!r}", line=number, source=source
                )
            pairs[key] = value
        statements.append(Statement(
            keyword=keyword, pairs=pairs, words=(), line=number,
            source=source,
        ))
    return statements
