"""Serializer: DramDescription → description-language text.

The writer emits every quantity with a natural SI prefix; the builder
reads them back losslessly (within float formatting precision, which is
kept at 9 significant digits to guarantee power-identical round trips).
"""

from __future__ import annotations

from typing import List

from ..description import DramDescription
from ..description.signaling import SegmentKind


def _quantity(value: float, unit: str = "") -> str:
    """Format a float compactly but losslessly (9 significant digits)."""
    text = f"{value:.9g}"
    return f"{text}{unit}"


def _operations(operations) -> str:
    if not operations:
        return ""
    return ",".join(sorted(op.value for op in operations))


def dumps(device: DramDescription) -> str:
    """Serialise a description to the description language."""
    lines: List[str] = []
    out = lines.append

    out(f"# DRAM description: {device.name}")
    out(f"Device name={device.name} interface={device.interface} "
        f"node={_quantity(device.node)} "
        f"constant={_quantity(device.constant_current)}")
    out("")

    # ---- physical floorplan ------------------------------------------
    array = device.floorplan.array
    out("FloorplanPhysical")
    out(f"CellArray BL={array.bitline_direction} "
        f"BitsPerBL={array.bits_per_bitline} "
        f"BitsPerSWL={array.bits_per_swl} "
        f"BLtype={array.bitline_arch.value} "
        f"BlocksPerCSL={array.blocks_per_csl}")
    out(f"Pitch WLpitch={_quantity(array.wl_pitch)} "
        f"BLpitch={_quantity(array.bl_pitch)} "
        f"SAwidth={_quantity(array.width_sa_stripe)} "
        f"SWDwidth={_quantity(array.width_swd_stripe)}")
    out("Horizontal blocks = " + " ".join(device.floorplan.horizontal))
    out("Vertical blocks = " + " ".join(device.floorplan.vertical))
    out("ArrayTypes blocks = "
        + " ".join(sorted(device.floorplan.array_types)))
    if device.floorplan.widths:
        pairs = " ".join(f"{name}={_quantity(size)}" for name, size in
                         sorted(device.floorplan.widths.items()))
        out(f"SizeHorizontal {pairs}")
    if device.floorplan.heights:
        pairs = " ".join(f"{name}={_quantity(size)}" for name, size in
                         sorted(device.floorplan.heights.items()))
        out(f"SizeVertical {pairs}")
    out("")

    # ---- signaling floorplan -----------------------------------------
    if len(device.signaling):
        out("FloorplanSignaling")
        for net in device.signaling:
            ops = _operations(net.operations)
            out(f"Net name={net.name} trigger={net.trigger.value} "
                f"ops={ops} rail={net.rail.value} "
                f"component={net.component}")
        for net in device.signaling:
            for segment in net.segments:
                parts = [f"Seg net={net.name}"]
                if segment.kind is SegmentKind.INSIDE:
                    parts.append(
                        f"inside={segment.start[0]}_{segment.start[1]}")
                    parts.append(f"fraction={_quantity(segment.fraction)}")
                    parts.append(f"dir={segment.direction}")
                else:
                    parts.append(
                        f"start={segment.start[0]}_{segment.start[1]}")
                    parts.append(f"end={segment.end[0]}_{segment.end[1]}")
                parts.append(f"wires={segment.wires}")
                parts.append(f"toggle={_quantity(segment.toggle)}")
                if segment.buffer_w_n:
                    parts.append(f"NchW={_quantity(segment.buffer_w_n)}")
                if segment.buffer_w_p:
                    parts.append(f"PchW={_quantity(segment.buffer_w_p)}")
                if segment.mux_ratio != 1.0:
                    parts.append(f"mux=1:{_quantity(segment.mux_ratio)}")
                out(" ".join(parts))
        out("")

    # ---- specification ------------------------------------------------
    spec = device.spec
    out("Specification")
    out(f"IO width={spec.io_width} datarate={_quantity(spec.datarate)} "
        f"prefetch={spec.prefetch}")
    out(f"Clock number={spec.n_clock_wires} "
        f"frequency={_quantity(spec.f_dataclock)}")
    out(f"Control frequency={_quantity(spec.f_ctrlclock)} "
        f"bankadd={spec.bank_bits} rowadd={spec.row_bits} "
        f"coladd={spec.col_bits} misc={spec.n_misc_control} "
        f"groups={spec.bank_groups}")
    out("")

    # ---- voltages ------------------------------------------------------
    volts = device.voltages
    out("Voltages")
    out(f"Supply vdd={_quantity(volts.vdd)} vint={_quantity(volts.vint)} "
        f"vbl={_quantity(volts.vbl)} vpp={_quantity(volts.vpp)}")
    out(f"Efficiency vint={_quantity(volts.eff_vint)} "
        f"vbl={_quantity(volts.eff_vbl)} vpp={_quantity(volts.eff_vpp)}")
    out("")

    # ---- technology -----------------------------------------------------
    out("Technology")
    for name, value in device.technology.items():
        out(f"Param {name}={_quantity(value)}")
    out("")

    # ---- timing ---------------------------------------------------------
    timing = device.timing
    out("Timing")
    out(f"Row trc={_quantity(timing.trc)} trrd={_quantity(timing.trrd)} "
        f"trrdl={_quantity(timing.trrd_l)} "
        f"tfaw={_quantity(timing.tfaw)} trfc={_quantity(timing.trfc)} "
        f"trcd={_quantity(timing.trcd)} trp={_quantity(timing.trp)} "
        f"twr={_quantity(timing.twr)} trtp={_quantity(timing.trtp)} "
        f"tras={_quantity(timing.tras)} "
        f"trefi={_quantity(timing.tref_interval)} "
        f"rowsperref={timing.rows_per_refresh}")
    out("")

    # ---- logic blocks ----------------------------------------------------
    if device.logic_blocks:
        out("LogicBlocks")
        for block in device.logic_blocks:
            ops = _operations(block.operations)
            out(f"Block name={block.name} gates={block.n_gates} "
                f"wn={_quantity(block.w_n)} wp={_quantity(block.w_p)} "
                f"tpg={_quantity(block.transistors_per_gate)} "
                f"density={_quantity(block.layout_density)} "
                f"wiring={_quantity(block.wiring_density)} "
                f"toggle={_quantity(block.toggle)} "
                f"trigger={block.trigger.value} ops={ops} "
                f"rail={block.rail.value} component={block.component}")
        out("")

    # ---- pattern ----------------------------------------------------------
    out("Pattern loop= " + str(device.pattern))
    out("")
    return "\n".join(lines)
