"""Builder: raw parsed description → validated DramDescription.

Unit conversion happens here: all quantities accept SI suffixes
(``165nm``, ``1.6Gbps``, ``25%``).  Following the paper's signaling
excerpt (``PchW=19.2 NchW=9.6``), bare numbers in device-width fields are
micrometres.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..description import (
    DramDescription,
    LogicBlock,
    Pattern,
    PhysicalFloorplan,
    Rail,
    SignalingFloorplan,
    Specification,
    TechnologyParameters,
    TimingParameters,
    VoltageSet,
)
from ..description.floorplan import ArrayArchitecture, BitlineArchitecture
from ..description.signaling import (
    SegmentKind,
    SignalNet,
    SignalSegment,
    Trigger,
)
from ..errors import DslValidationError
from ..units import parse_quantity, parse_ratio
from .parser import ParsedDescription


def _require(pairs: Dict[str, str], key: str, context: str) -> str:
    if key not in pairs:
        raise DslValidationError(f"{context}: missing {key!r}")
    return pairs[key]


def _width(value: str) -> float:
    """Device width with the paper's bare-number convention.

    The paper's excerpt writes ``PchW=19.2 NchW=9.6`` meaning micrometres.
    Bare numbers of at least 0.01 are therefore micrometres; smaller bare
    numbers are already SI metres (no physical transistor is narrower than
    10 nm or wider than 10 mm, so the ranges cannot collide).  Values with
    a unit suffix are parsed as usual.
    """
    try:
        number = float(value)
    except ValueError:
        return parse_quantity(value)
    if number >= 0.01:
        return number * 1e-6
    return number


def _coordinate(value: str, context: str) -> Tuple[int, int]:
    """Grid coordinate written as ``x_y``, e.g. ``0_2``."""
    parts = value.split("_")
    if len(parts) != 2:
        raise DslValidationError(
            f"{context}: coordinate must be x_y, got {value!r}"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise DslValidationError(
            f"{context}: coordinate must be integers, got {value!r}"
        ) from None


def _operations(value: str) -> frozenset:
    """Comma-separated command list; empty means background/always."""
    value = value.strip()
    if not value or value == "always":
        return frozenset()
    return frozenset(token.strip() for token in value.split(",")
                     if token.strip())


# ----------------------------------------------------------------------
# Section builders
# ----------------------------------------------------------------------
def _build_floorplan(parsed: ParsedDescription) -> PhysicalFloorplan:
    cell = parsed.merged_pairs("FloorplanPhysical", "CellArray")
    pitch = parsed.merged_pairs("FloorplanPhysical", "Pitch")
    # The paper's excerpt puts pitches on a second CellArray line; accept
    # both homes.
    source = dict(cell)
    source.update(pitch)
    array = ArrayArchitecture(
        bitline_direction=_require(source, "BL", "CellArray"),
        bits_per_bitline=int(parse_quantity(
            _require(source, "BitsPerBL", "CellArray"))),
        bits_per_swl=int(parse_quantity(
            _require(source, "BitsPerSWL", "CellArray"))),
        bitline_arch=BitlineArchitecture(
            _require(source, "BLtype", "CellArray")),
        blocks_per_csl=int(parse_quantity(source.get("BlocksPerCSL", "1"))),
        wl_pitch=parse_quantity(_require(source, "WLpitch", "CellArray")),
        bl_pitch=parse_quantity(_require(source, "BLpitch", "CellArray")),
        width_sa_stripe=parse_quantity(
            _require(source, "SAwidth", "CellArray")),
        width_swd_stripe=parse_quantity(
            _require(source, "SWDwidth", "CellArray")),
    )
    horizontal = parsed.statements("FloorplanPhysical", "Horizontal")
    vertical = parsed.statements("FloorplanPhysical", "Vertical")
    if not horizontal or not vertical:
        raise DslValidationError(
            "FloorplanPhysical needs Horizontal and Vertical block lists"
        )
    array_types = parsed.statements("FloorplanPhysical", "ArrayTypes")
    types = (frozenset(array_types[0].words) if array_types
             else frozenset({"A1"}))
    widths = {name: parse_quantity(value) for name, value in
              parsed.merged_pairs("FloorplanPhysical",
                                  "SizeHorizontal").items()}
    heights = {name: parse_quantity(value) for name, value in
               parsed.merged_pairs("FloorplanPhysical",
                                   "SizeVertical").items()}
    return PhysicalFloorplan(
        array=array,
        horizontal=horizontal[0].words,
        vertical=vertical[0].words,
        widths=widths,
        heights=heights,
        array_types=types,
    )


def _build_signaling(parsed: ParsedDescription) -> SignalingFloorplan:
    nets: Dict[str, Dict] = {}
    for statement in parsed.statements("FloorplanSignaling", "Net"):
        pairs = statement.pairs
        name = _require(pairs, "name", "Net")
        if name in nets:
            raise DslValidationError(f"Net {name!r} declared twice")
        nets[name] = {
            "trigger": Trigger(pairs.get("trigger", "access")),
            "operations": _operations(pairs.get("ops", "")),
            "rail": Rail(pairs.get("rail", "vint")),
            "component": pairs.get("component", "datapath"),
            "segments": [],
        }
    for statement in parsed.statements("FloorplanSignaling", "Seg"):
        pairs = statement.pairs
        net_name = _require(pairs, "net", "Seg")
        if net_name not in nets:
            raise DslValidationError(
                f"Seg references undeclared net {net_name!r}"
            )
        common = dict(
            wires=int(parse_quantity(pairs.get("wires", "1"))),
            toggle=parse_quantity(pairs.get("toggle", "50%")),
            buffer_w_n=_width(pairs["NchW"]) if "NchW" in pairs else 0.0,
            buffer_w_p=_width(pairs["PchW"]) if "PchW" in pairs else 0.0,
            mux_ratio=parse_ratio(pairs.get("mux", "1")),
        )
        if "inside" in pairs:
            segment = SignalSegment(
                kind=SegmentKind.INSIDE,
                start=_coordinate(pairs["inside"], "Seg"),
                fraction=parse_quantity(pairs.get("fraction", "100%")),
                direction=pairs.get("dir", "h"),
                **common,
            )
        elif "start" in pairs and "end" in pairs:
            segment = SignalSegment(
                kind=SegmentKind.SPAN,
                start=_coordinate(pairs["start"], "Seg"),
                end=_coordinate(pairs["end"], "Seg"),
                **common,
            )
        else:
            raise DslValidationError(
                "Seg needs either inside=x_y or start=x_y end=x_y"
            )
        nets[net_name]["segments"].append(segment)
    built = []
    for name, info in nets.items():
        if not info["segments"]:
            raise DslValidationError(f"Net {name!r} has no segments")
        built.append(SignalNet(
            name=name,
            segments=tuple(info["segments"]),
            trigger=info["trigger"],
            operations=info["operations"],
            rail=info["rail"],
            component=info["component"],
        ))
    return SignalingFloorplan(tuple(built))


def _build_specification(parsed: ParsedDescription) -> Specification:
    io = parsed.merged_pairs("Specification", "IO")
    clock = parsed.merged_pairs("Specification", "Clock")
    control = parsed.merged_pairs("Specification", "Control")
    return Specification(
        io_width=int(parse_quantity(_require(io, "width", "IO"))),
        datarate=parse_quantity(_require(io, "datarate", "IO")),
        n_clock_wires=int(parse_quantity(clock.get("number", "2"))),
        f_dataclock=parse_quantity(_require(clock, "frequency", "Clock")),
        f_ctrlclock=parse_quantity(
            _require(control, "frequency", "Control")),
        bank_bits=int(parse_quantity(
            _require(control, "bankadd", "Control"))),
        row_bits=int(parse_quantity(
            _require(control, "rowadd", "Control"))),
        col_bits=int(parse_quantity(
            _require(control, "coladd", "Control"))),
        n_misc_control=int(parse_quantity(control.get("misc", "8"))),
        prefetch=int(parse_quantity(io.get("prefetch", "8"))),
        bank_groups=int(parse_quantity(control.get("groups", "1"))),
    )


def _build_voltages(parsed: ParsedDescription) -> VoltageSet:
    supply = parsed.merged_pairs("Voltages", "Supply")
    eff = parsed.merged_pairs("Voltages", "Efficiency")
    return VoltageSet(
        vdd=parse_quantity(_require(supply, "vdd", "Supply")),
        vint=parse_quantity(_require(supply, "vint", "Supply")),
        vbl=parse_quantity(_require(supply, "vbl", "Supply")),
        vpp=parse_quantity(_require(supply, "vpp", "Supply")),
        eff_vint=parse_quantity(eff.get("vint", "1")),
        eff_vbl=parse_quantity(eff.get("vbl", "1")),
        eff_vpp=parse_quantity(eff.get("vpp", "0.5")),
    )


def _build_technology(parsed: ParsedDescription) -> TechnologyParameters:
    pairs = parsed.merged_pairs("Technology", "Param")
    field_names = {f.name for f in
                   dataclasses.fields(TechnologyParameters)}
    unknown = set(pairs) - field_names
    if unknown:
        raise DslValidationError(
            f"unknown technology parameters: {', '.join(sorted(unknown))}"
        )
    missing = field_names - set(pairs)
    if missing:
        raise DslValidationError(
            "missing technology parameters: "
            f"{', '.join(sorted(missing))}"
        )
    values = {}
    for name, raw in pairs.items():
        value = parse_quantity(raw)
        if name == "bits_per_csl":
            value = int(value)
        values[name] = value
    return TechnologyParameters(**values)


def _build_timing(parsed: ParsedDescription) -> TimingParameters:
    row = parsed.merged_pairs("Timing", "Row")
    return TimingParameters(
        trc=parse_quantity(_require(row, "trc", "Row")),
        trrd=parse_quantity(row.get("trrd", "10ns")),
        trrd_l=parse_quantity(row.get("trrdl", "0")),
        tfaw=parse_quantity(row.get("tfaw", "40ns")),
        trfc=parse_quantity(row.get("trfc", "110ns")),
        trcd=parse_quantity(row.get("trcd", "0")),
        twr=parse_quantity(row.get("twr", "15ns")),
        trtp=parse_quantity(row.get("trtp", "7.5ns")),
        trp=parse_quantity(row.get("trp", "0")),
        tras=parse_quantity(row.get("tras", "0")),
        tref_interval=parse_quantity(row.get("trefi", "7.8us")),
        rows_per_refresh=int(parse_quantity(row.get("rowsperref", "8"))),
    )


def _build_logic(parsed: ParsedDescription) -> Tuple[LogicBlock, ...]:
    blocks = []
    for statement in parsed.statements("LogicBlocks", "Block"):
        pairs = statement.pairs
        blocks.append(LogicBlock(
            name=_require(pairs, "name", "Block"),
            n_gates=int(parse_quantity(_require(pairs, "gates", "Block"))),
            w_n=_width(_require(pairs, "wn", "Block")),
            w_p=_width(_require(pairs, "wp", "Block")),
            transistors_per_gate=parse_quantity(pairs.get("tpg", "4")),
            layout_density=parse_quantity(pairs.get("density", "25%")),
            wiring_density=parse_quantity(pairs.get("wiring", "50%")),
            operations=_operations(pairs.get("ops", "")),
            toggle=parse_quantity(pairs.get("toggle", "10%")),
            trigger=Trigger(pairs.get("trigger", "ctrl_clock")),
            rail=Rail(pairs.get("rail", "vint")),
            component=pairs.get("component", "control"),
        ))
    return tuple(blocks)


# ----------------------------------------------------------------------
def build(parsed: ParsedDescription) -> DramDescription:
    """Assemble the validated DramDescription from a parsed description."""
    device = parsed.device
    name = device.get("name", "dsl-device")
    interface = device.get("interface", "DDR3")
    node = parse_quantity(device.get("node", "55nm"))
    constant = parse_quantity(device.get("constant", "0"))
    kwargs = dict(
        name=name,
        interface=interface,
        node=node,
        technology=_build_technology(parsed),
        voltages=_build_voltages(parsed),
        floorplan=_build_floorplan(parsed),
        signaling=_build_signaling(parsed),
        spec=_build_specification(parsed),
        timing=_build_timing(parsed),
        logic_blocks=_build_logic(parsed),
        constant_current=constant,
    )
    if parsed.pattern:
        kwargs["pattern"] = Pattern.parse(" ".join(parsed.pattern))
    return DramDescription(**kwargs)


def build_optional_pattern(parsed: ParsedDescription) -> Optional[Pattern]:
    """The pattern of a parsed description, if one was given."""
    if parsed.pattern:
        return Pattern.parse(" ".join(parsed.pattern))
    return None
