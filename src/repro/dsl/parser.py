"""Parser: statement stream → structured raw description.

Performs the paper's "syntax check" stage: every statement must belong to
a known section and use known keywords; required sections must be
present.  Values stay as strings here — unit conversion happens in the
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DslSyntaxError
from .lexer import Statement

#: Section names and the statement keywords allowed inside them.
SECTIONS: Dict[str, Tuple[str, ...]] = {
    "FloorplanPhysical": ("CellArray", "Pitch", "Horizontal", "Vertical",
                          "ArrayTypes", "SizeHorizontal", "SizeVertical"),
    "FloorplanSignaling": ("Net", "Seg"),
    "Specification": ("IO", "Clock", "Control"),
    "Voltages": ("Supply", "Efficiency"),
    "Technology": ("Param",),
    "Timing": ("Row",),
    "LogicBlocks": ("Block",),
}

#: Statements allowed at top level (outside any section).
TOP_LEVEL = ("Device", "Pattern")

#: Sections that must appear in every description.
REQUIRED_SECTIONS = ("FloorplanPhysical", "Specification", "Voltages",
                     "Technology", "Timing")


@dataclass
class ParsedDescription:
    """The raw, syntax-checked description."""

    device: Dict[str, str] = field(default_factory=dict)
    pattern: Tuple[str, ...] = ()
    sections: Dict[str, List[Statement]] = field(default_factory=dict)

    def section(self, name: str) -> List[Statement]:
        """Statements of one section (empty list if absent)."""
        return self.sections.get(name, [])

    def statements(self, section: str, keyword: str) -> List[Statement]:
        """Statements of one keyword within a section."""
        return [statement for statement in self.section(section)
                if statement.keyword == keyword]

    def merged_pairs(self, section: str, keyword: str) -> Dict[str, str]:
        """Union of the key=value pairs of all statements of a keyword."""
        merged: Dict[str, str] = {}
        for statement in self.statements(section, keyword):
            for key, value in statement.pairs.items():
                if key in merged:
                    raise DslSyntaxError(
                        f"duplicate {keyword} key {key!r}",
                        line=statement.line, source=statement.source,
                    )
                merged[key] = value
        return merged


def parse(statements: List[Statement]) -> ParsedDescription:
    """Group statements into sections and syntax-check them."""
    result = ParsedDescription()
    current: Optional[str] = None
    for statement in statements:
        keyword = statement.keyword
        if keyword in SECTIONS and statement.is_section_header:
            current = keyword
            result.sections.setdefault(keyword, [])
            continue
        if keyword == "Device":
            result.device.update(statement.pairs)
            current = None
            continue
        if keyword == "Pattern":
            if not statement.words:
                raise DslSyntaxError(
                    "Pattern requires a loop= command list",
                    line=statement.line, source=statement.source,
                )
            result.pattern = statement.words
            current = None
            continue
        if current is None:
            raise DslSyntaxError(
                f"statement {keyword!r} outside any section "
                f"(top-level statements are {', '.join(TOP_LEVEL)})",
                line=statement.line, source=statement.source,
            )
        allowed = SECTIONS[current]
        if keyword not in allowed:
            raise DslSyntaxError(
                f"unknown statement {keyword!r} in section {current} "
                f"(allowed: {', '.join(allowed)})",
                line=statement.line, source=statement.source,
            )
        result.sections[current].append(statement)
    missing = [name for name in REQUIRED_SECTIONS
               if name not in result.sections]
    if missing:
        raise DslSyntaxError(
            f"missing required sections: {', '.join(missing)}"
        )
    return result
