"""Experiment E12b — Section V at module level: mini-rank (Zheng et al.).

Evaluates the mini-rank proposal where it actually operates: a 64-bit
rank of x8 devices.  Splitting the rank conserves column energy and
bandwidth while dividing the row energy — module energy per bit falls
with the divisor but saturates as background and data movement dominate.
"""

from repro.analysis import format_table
from repro.devices import build_device
from repro.system import mini_rank_study

from conftest import emit


def test_sec5_module_level(benchmark):
    device = build_device(55, io_width=8)
    results = benchmark(mini_rank_study, device, 8, (1, 2, 4))

    emit(format_table(
        ["configuration", "active devices", "module W", "Gb/s",
         "pJ/bit"],
        [[result.config_label, result.active_devices,
          round(result.power, 2),
          round(result.bandwidth / 1e9, 1),
          round(result.energy_per_bit * 1e12, 1)]
         for result in results.values()],
        title="Section V (module level) - mini-rank on a 64-bit rank "
              "of x8 DDR3 55nm",
    ))

    # Bandwidth conserved across splits.
    bandwidths = {round(result.bandwidth) for result in results.values()}
    assert len(bandwidths) == 1

    # Energy per bit falls with the divisor...
    energies = [results[k].energy_per_bit for k in (1, 2, 4)]
    assert energies[0] > energies[1] > energies[2]

    # ...but saturates: the /4 step saves less than the /2 step.
    first_step = energies[0] - energies[1]
    second_step = energies[1] - energies[2]
    assert second_step < first_step

    # Total saving stays below the row-energy share — column + background
    # are conserved.
    assert energies[2] > 0.5 * energies[0]
