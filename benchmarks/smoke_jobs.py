"""CI smoke check: durable jobs survive a SIGKILL'd fleet worker.

Runs the same keyed Monte-Carlo job twice and demands bit-identical
``result.json`` bytes:

* **baseline** — one in-process :class:`~repro.jobs.JobManager`
  executing the job start-to-finish, never interrupted;
* **chaos** — a 2-worker pre-fork fleet booted from the real CLI
  entry point.  Once the job has durably checkpointed a few chunks,
  the worker running it (the ``pid`` recorded in the job status) is
  SIGKILL'd mid-job.  The supervisor must respawn the worker,
  reassign the orphaned job, and the adopter must replay the
  write-ahead journal and finish the remaining chunks.

The final status must show ``replayed_chunks >= 1`` (the journal was
actually used) and ``replayed + computed == chunks_total``.  Resume
latency (kill to first sign of the adopting worker) and the chunk
accounting are recorded to ``benchmarks/BENCH_jobs.json``.

Usage: ``PYTHONPATH=src python benchmarks/smoke_jobs.py``
Exits non-zero on any failed expectation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.client import ServiceClient
from repro.jobs import JobManager, JobStore

#: One keyed job, submitted identically on both sides so the job id
#: (and therefore the id embedded in result.json) matches exactly.
JOB_KEY = "smoke-chaos-parity"
JOB_PARAMS = {"samples": 3200, "seed": 2026}
CHUNK_SIZE = 80  # -> 40 chunks, each a durable checkpoint
#: Chunks that must be journaled before the worker is killed, so the
#: resumed run provably replays real progress.
KILL_AFTER_CHUNKS = 6
WORKERS = 2


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fail(process, message):
    print(f"FAIL: {message}")
    if process is not None and process.poll() is None:
        process.kill()
        process.communicate(timeout=10)
    return 1


def _submit_payload():
    return {"kind": "montecarlo", "params": JOB_PARAMS,
            "chunk_size": CHUNK_SIZE, "idempotency_key": JOB_KEY}


def _baseline(root: str):
    """Uninterrupted single-process run; returns (bytes, seconds)."""
    store = JobStore(root)
    status, _ = store.submit(_submit_payload())
    manager = JobManager(root)
    started = time.perf_counter()
    manager.run_pending()
    elapsed = time.perf_counter() - started
    job_id = status["job"]
    final = store.status(job_id)
    if final["state"] != "done":
        raise RuntimeError(f"baseline ended {final['state']!r}")
    blob = (Path(root) / job_id / "result.json").read_bytes()
    return blob, elapsed


def _boot(cache_dir: str):
    port = _free_port()
    root = Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", "serve",
               "--port", str(port), "--cache-dir", cache_dir,
               "--workers", str(WORKERS), "--no-affinity"]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True,
                               env=env)
    return process, port


def _stop(process):
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=30)
    return process.returncode, output


def _wait_for_victim(handle, supervisor_pid):
    """Poll until the job has checkpointed enough; return its pid."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        status = handle.status()
        if status["state"] in ("done", "failed", "cancelled"):
            raise RuntimeError(
                f"job reached {status['state']!r} before the kill; "
                f"raise JOB_PARAMS['samples']")
        if (status["state"] == "running"
                and status.get("chunks_done", 0) >= KILL_AFTER_CHUNKS
                and isinstance(status.get("pid"), int)):
            pid = status["pid"]
            if pid == supervisor_pid:
                raise RuntimeError(
                    "job status names the supervisor pid")
            return pid, status["chunks_done"]
        time.sleep(0.02)
    raise RuntimeError("job never reached the kill threshold")


def _await_resume(handle, killed_pid):
    """Wait for adoption + completion; returns (latency, status)."""
    killed_at = time.monotonic()
    resumed_at = None
    deadline = killed_at + 120.0
    while time.monotonic() < deadline:
        try:
            status = handle.status()
        except Exception:  # noqa: BLE001 - fleet mid-respawn
            time.sleep(0.05)
            continue
        owner = status.get("pid")
        if resumed_at is None and isinstance(owner, int) \
                and owner != killed_pid:
            resumed_at = time.monotonic()
        if status["state"] == "done":
            if resumed_at is None:
                resumed_at = time.monotonic()
            return resumed_at - killed_at, status
        if status["state"] in ("failed", "cancelled"):
            raise RuntimeError(
                f"job ended {status['state']!r} after the kill: "
                f"{status.get('error')}")
        time.sleep(0.05)
    raise RuntimeError("job never finished after the kill")


def _chaos(cache_dir: str):
    """Kill a worker mid-job; returns (bytes, metrics) on success."""
    process, port = _boot(cache_dir)
    client = ServiceClient(f"http://127.0.0.1:{port}")
    try:
        if not client.wait_until_ready(timeout=60):
            raise RuntimeError(
                f"fleet never ready ({client.last_ready_error})")
        started = time.perf_counter()
        handle = client.submit_job(
            "montecarlo", params=JOB_PARAMS, chunk_size=CHUNK_SIZE,
            idempotency_key=JOB_KEY)
        victim, journaled = _wait_for_victim(handle, process.pid)
        os.kill(victim, signal.SIGKILL)
        print(f"killed worker pid {victim} after {journaled} "
              f"journaled chunks")
        latency, final = _await_resume(handle, victim)
        total = time.perf_counter() - started
    except Exception as exc:  # noqa: BLE001 - single fail funnel
        client.close()
        raise SystemExit(_fail(process, str(exc)))
    client.close()
    returncode, output = _stop(process)
    if returncode != 0:
        raise SystemExit(_fail(
            None, f"fleet exit code {returncode}\n{output}"))
    jobs_root = Path(cache_dir) / "jobs"
    blob = (jobs_root / handle.id / "result.json").read_bytes()
    return blob, {"final": final, "latency": latency,
                  "journaled_at_kill": journaled, "total": total}


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-jobs-") as tmp:
        baseline_blob, baseline_s = _baseline(
            os.path.join(tmp, "baseline-jobs"))
        print(f"baseline: uninterrupted run in {baseline_s:.2f}s")
        chaos_blob, chaos = _chaos(os.path.join(tmp, "cache"))

    final = chaos["final"]
    replayed = final.get("replayed_chunks", 0)
    computed = final.get("computed_chunks", 0)
    chunks_total = final.get("chunks_total", 0)
    if chaos_blob != baseline_blob:
        print("FAIL: resumed result differs from the uninterrupted "
              "baseline")
        return 1
    if replayed < 1:
        print("FAIL: resumed run replayed no journaled chunks")
        return 1
    if replayed + computed != chunks_total:
        print(f"FAIL: chunk accounting broken: {replayed} replayed "
              f"+ {computed} computed != {chunks_total} total")
        return 1

    metrics_path = Path(__file__).parent / "BENCH_jobs.json"
    metrics = {
        "jobs.workers": WORKERS,
        "jobs.samples": JOB_PARAMS["samples"],
        "jobs.chunks_total": chunks_total,
        "jobs.journaled_at_kill": chaos["journaled_at_kill"],
        "jobs.replayed_chunks": replayed,
        "jobs.computed_chunks": computed,
        "jobs.resume_latency_s": round(chaos["latency"], 3),
        "jobs.baseline_s": round(baseline_s, 3),
        "jobs.chaos_total_s": round(chaos["total"], 3),
        "jobs.parity": "byte-identical",
    }
    metrics_path.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n")
    print(f"metrics -> {metrics_path}")
    print(f"OK: SIGKILL'd worker mid-job; resume replayed "
          f"{replayed}/{chunks_total} chunks, computed {computed}, "
          f"result byte-identical; resume latency "
          f"{chaos['latency']:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
