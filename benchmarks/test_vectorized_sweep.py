"""Experiment E-VEC — columnar vectorized sweeps: scalar warm vs folded.

A 64-point sweep family is evaluated three ways through the engine:

* **cold** — every variant is a full scalar ``DramPowerModel`` build;
* **scalar warm** — the family maps through an
  :class:`~repro.engine.EvaluationSession` whose stage cache already
  holds the base model, ``backend="serial"`` (the incremental path of
  E-INC: clean stages reuse, dirty stages rebuild per variant);
* **vectorized** — the same warm-session scenario with
  ``backend="vector"``: the whole family folds as one
  (variants × events) broadcast plus one firing-weight matmul
  (:mod:`repro.engine.vector`).

Powers must agree with the scalar oracle to 1e-9 relative (measured
~1e-15: float summation order is the only difference).  Three families
are measured and recorded honestly:

* ``voltage``     — dirties charge → current → power only: the pure
  per-variant fold the kernel eliminates, and where the ≥3x
  acceptance floor is asserted;
* ``montecarlo``  — voltages plus the constant-current adder, the
  Monte-Carlo draw shape: folds like voltage;
* ``technology``  — dirties capacitance onward, so every variant still
  builds its skeleton list scalar before folding; the speedup is
  bounded by that scalar share (~1.5-2x — recorded, not asserted).

Numbers land in ``benchmarks/BENCH_vectorized.json``.
"""

import time

import pytest

from repro.core import DramPowerModel
from repro.engine import EvaluationSession, numpy_available

from conftest import emit, record_metrics

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="the vectorized kernel needs the repro[vector] extra")

POINTS = 64
TOLERANCE = 1e-9

#: family label → the (path, direction) pairs a variant perturbs.
#: Directions keep every draw physical: vint scales down so it never
#: crosses vdd, the constant-current adder scales up.
FAMILIES = {
    "voltage": (("voltages.vdd", 1.0), ("voltages.vint", 1.0)),
    "montecarlo": (("voltages.vint", -1.0), ("voltages.vbl", -1.0),
                   ("constant_current", 1.0)),
    "technology": (("technology.c_bitline", 1.0),),
}


def _variants(device, paths):
    # Steps start at 1 so no variant collapses onto the warm base.
    out = []
    for step in range(1, POINTS + 1):
        variant = device
        for offset, (path, sign) in enumerate(paths):
            variant = variant.scale_path(
                path, 1.0 + sign * (0.002 * step + 0.001 * offset))
        out.append(variant)
    return out


def _power(model):
    return model.pattern_power().power


def _measure_family(base, paths):
    devices = _variants(base, paths)

    started = time.perf_counter()
    cold = [_power(DramPowerModel(device)) for device in devices]
    cold_seconds = time.perf_counter() - started

    scalar_session = EvaluationSession()
    scalar_session.model(base)
    started = time.perf_counter()
    scalar = scalar_session.map(devices, _power, backend="serial")
    scalar_seconds = time.perf_counter() - started

    vector_session = EvaluationSession()
    vector_session.model(base)
    started = time.perf_counter()
    folded = vector_session.map(devices, _power, backend="vector")
    vector_seconds = time.perf_counter() - started

    # The scalar warm path is the bit-exact oracle; the fold agrees to
    # float-summation-order precision.
    assert scalar == cold
    for left, right in zip(folded, scalar):
        assert left == pytest.approx(right, rel=TOLERANCE)
    assert len(set(cold)) > 1  # the family actually moves the power

    stats = vector_session.stats
    assert stats.vector_batches >= 1
    assert stats.vector_builds == POINTS
    assert stats.vector_fallbacks == 0

    return {
        "cold_seconds": cold_seconds,
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "speedup_vs_cold": cold_seconds / vector_seconds,
        "speedup_vs_scalar_warm": scalar_seconds / vector_seconds,
    }


def _record(label, measured):
    record_metrics("BENCH_vectorized.json", {
        "vectorized.points": POINTS,
        f"vectorized.{label}.cold_ms":
            round(measured["cold_seconds"] * 1e3, 2),
        f"vectorized.{label}.scalar_warm_ms":
            round(measured["scalar_seconds"] * 1e3, 2),
        f"vectorized.{label}.vectorized_ms":
            round(measured["vector_seconds"] * 1e3, 2),
        f"vectorized.{label}.speedup_vs_cold":
            round(measured["speedup_vs_cold"], 2),
        f"vectorized.{label}.speedup_vs_scalar_warm":
            round(measured["speedup_vs_scalar_warm"], 2),
    })


def _emit(label, measured):
    emit(f"vectorized sweep ({label}, {POINTS} points): "
         f"cold {measured['cold_seconds'] * 1e3:.1f} ms, "
         f"scalar warm {measured['scalar_seconds'] * 1e3:.1f} ms, "
         f"vectorized {measured['vector_seconds'] * 1e3:.1f} ms, "
         f"{measured['speedup_vs_scalar_warm']:.2f}x vs scalar warm")


def test_vectorized_voltage_sweep(benchmark, ddr3_device):
    """Pure-fold family: the ≥3x acceptance criterion lives here."""
    measured = _measure_family(ddr3_device, FAMILIES["voltage"])
    _emit("voltage", measured)
    assert measured["speedup_vs_scalar_warm"] >= 3.0
    _record("voltage", measured)

    # pytest-benchmark records the steady-state fold cost on fresh
    # family values each round (the warm LRU never short-circuits it).
    session = EvaluationSession()
    session.model(ddr3_device)
    rounds = iter(range(1, 1_000_000))

    def fold_fresh_family():
        offset = 1.0 + next(rounds) * 1e-7
        devices = [
            device.scale_path("voltages.vbl", offset)
            for device in _variants(ddr3_device, FAMILIES["voltage"])
        ]
        return session.map(devices, _power, backend="vector")

    benchmark(fold_fresh_family)


def test_vectorized_montecarlo_sweep(ddr3_device):
    """The Monte-Carlo draw shape folds like a voltage family."""
    measured = _measure_family(ddr3_device, FAMILIES["montecarlo"])
    _emit("montecarlo", measured)
    assert measured["speedup_vs_scalar_warm"] >= 2.0
    _record("montecarlo", measured)


def test_vectorized_technology_sweep(ddr3_device):
    """Capacitance-dirty family: skeletons rebuild scalar, recorded
    honestly without a speedup floor."""
    measured = _measure_family(ddr3_device, FAMILIES["technology"])
    _emit("technology", measured)
    # Parity and counter assertions happened in _measure_family; the
    # speedup is bounded by the scalar skeleton share and recorded
    # as-is — no silent caps.
    assert measured["speedup_vs_scalar_warm"] > 0.0
    _record("technology", measured)
